//! Minimal aligned-column table printing for the harness binaries.

/// A simple text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds like the paper's plots (log-scale friendly).
pub fn format_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name  22"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(format_secs(0.0000005), "0us");
        assert_eq!(format_secs(0.0025), "2.5ms");
        assert_eq!(format_secs(5.678), "5.68s");
    }
}
