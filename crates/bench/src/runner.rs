//! The uniform sweep runner: CSCE plus every applicable baseline on one
//! task, with the paper's time-limit convention (a failed run is recorded
//! at the limit, §VII "Metric").

use csce_baselines::all_baselines;
use csce_core::{Engine, ExecStats, PlannerConfig, RunConfig};
use csce_graph::{Graph, Variant};
use std::time::Duration;

/// The harness-wide time limit per (algorithm, pattern) run. The paper
/// uses 10^4 s; scaled with our graphs so full sweeps finish.
pub const TIME_LIMIT: Duration = Duration::from_secs(10);

/// One algorithm's outcome on one task.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    pub name: &'static str,
    pub seconds: f64,
    pub count: u64,
    pub timed_out: bool,
    /// Full execution counters — present for CSCE runs (baselines report
    /// only the count). Dumped into `BENCH_*.json` run reports.
    pub stats: Option<ExecStats>,
}

/// A data graph together with its prebuilt CCSR engine (the offline stage
/// is shared across all patterns, as in the paper's workflow).
pub struct BenchContext {
    pub name: &'static str,
    pub graph: Graph,
    pub engine: Engine,
}

impl BenchContext {
    pub fn new(name: &'static str, graph: Graph) -> BenchContext {
        let engine = Engine::build(&graph);
        BenchContext { name, graph, engine }
    }
}

/// Run CSCE and every baseline that supports the task; failed runs are
/// clamped to the time limit per the paper's convention.
pub fn run_all(
    ctx: &BenchContext,
    pattern: &Graph,
    variant: Variant,
    time_limit: Duration,
) -> Vec<AlgoResult> {
    let mut out = Vec::new();
    out.push(run_csce(ctx, pattern, variant, time_limit));
    for baseline in all_baselines() {
        if !baseline.supports(&ctx.graph, pattern, variant) {
            continue;
        }
        let r = baseline.count(&ctx.graph, pattern, variant, Some(time_limit));
        out.push(AlgoResult {
            name: baseline.name(),
            seconds: if r.timed_out { time_limit.as_secs_f64() } else { r.elapsed.as_secs_f64() },
            count: r.count,
            timed_out: r.timed_out,
            stats: None,
        });
    }
    out
}

/// Run CSCE alone.
pub fn run_csce(
    ctx: &BenchContext,
    pattern: &Graph,
    variant: Variant,
    time_limit: Duration,
) -> AlgoResult {
    let run = RunConfig { time_limit: Some(time_limit), ..RunConfig::default() };
    let out = ctx.engine.run(pattern, variant, PlannerConfig::csce(), run);
    AlgoResult {
        name: "CSCE",
        seconds: if out.stats.timed_out {
            time_limit.as_secs_f64()
        } else {
            out.total_time().as_secs_f64()
        },
        count: out.count,
        timed_out: out.stats.timed_out,
        stats: Some(out.stats),
    }
}

/// Geometric mean, the usual summary for ratio-style speedups.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{GraphBuilder, NO_LABEL};

    fn tiny_ctx() -> BenchContext {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(5);
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        BenchContext::new("tiny", b.build())
    }

    fn wedge() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn all_applicable_algorithms_agree() {
        let ctx = tiny_ctx();
        let p = wedge();
        for variant in Variant::ALL {
            let results = run_all(&ctx, &p, variant, Duration::from_secs(5));
            assert!(results.len() >= 2, "{variant}: CSCE plus baselines");
            let expected = results[0].count;
            for r in &results {
                assert!(!r.timed_out, "{} timed out", r.name);
                assert_eq!(r.count, expected, "{} disagrees under {variant}", r.name);
            }
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
