//! Machine-readable bench output: `BENCH_<name>.json` run reports.
//!
//! Every harness binary collects its raw per-run results into a
//! [`BenchReport`] alongside the human-readable tables it prints, then
//! writes them to `<dir>/BENCH_<name>.json` (directory from the
//! `CSCE_BENCH_DIR` env var, default `results/`). Schema:
//!
//! ```json
//! {
//!   "bench": "fig6",
//!   "runs": [
//!     {"task": "HPRD/8-sparse/p0", "algo": "CSCE", "seconds": 0.8,
//!      "count": 1234, "timed_out": false,
//!      "counters": {"exec.nodes": 42, ...},
//!      "gauges": {"exec.sce_hit_rate": 0.5, ...},
//!      "series": {"exec.depth_candidates": [3, 9], ...}}
//!   ]
//! }
//! ```
//!
//! `counters`/`gauges`/`series` carry the full [`ExecStats`] dump and are
//! present only for runs that produce one (CSCE; baselines report the
//! scalar fields only).

use crate::runner::AlgoResult;
use csce_core::ExecStats;
use csce_obs::{JsonValue, MetricsRegistry};
use std::path::PathBuf;

struct RunRow {
    task: String,
    algo: String,
    seconds: f64,
    count: u64,
    timed_out: bool,
    metrics: Option<MetricsRegistry>,
}

/// Accumulates one binary's raw results for JSON export.
pub struct BenchReport {
    name: String,
    runs: Vec<RunRow>,
}

impl BenchReport {
    /// Start a report for the exhibit `name` (e.g. `"fig6"`); the file
    /// will be `BENCH_<name>.json`.
    pub fn new(name: &str) -> BenchReport {
        BenchReport { name: name.to_string(), runs: Vec::new() }
    }

    /// Record one algorithm's outcome on `task`.
    pub fn record(&mut self, task: &str, r: &AlgoResult) {
        self.push(task, r.name, r.seconds, r.count, r.timed_out, r.stats.as_ref());
    }

    /// Record a whole `run_all` sweep on `task`.
    pub fn record_all(&mut self, task: &str, results: &[AlgoResult]) {
        for r in results {
            self.record(task, r);
        }
    }

    /// Record a measurement that is not an [`AlgoResult`] (plan-only
    /// timings, build times, memory sweeps, ...).
    pub fn record_custom(&mut self, task: &str, algo: &str, seconds: f64, count: u64) {
        self.push(task, algo, seconds, count, false, None);
    }

    /// Record a fraction/ratio exhibit (SCE occurrence, hit rates) as a
    /// row whose payload lives in the `gauges` object.
    pub fn record_gauge(&mut self, task: &str, algo: &str, key: &str, value: f64) {
        let mut m = MetricsRegistry::new();
        m.set_gauge(key, value);
        self.runs.push(RunRow {
            task: task.to_string(),
            algo: algo.to_string(),
            seconds: 0.0,
            count: 0,
            timed_out: false,
            metrics: Some(m),
        });
    }

    fn push(
        &mut self,
        task: &str,
        algo: &str,
        seconds: f64,
        count: u64,
        timed_out: bool,
        stats: Option<&ExecStats>,
    ) {
        let metrics = stats.map(|s| {
            let mut m = MetricsRegistry::new();
            s.export(&mut m);
            m
        });
        self.runs.push(RunRow {
            task: task.to_string(),
            algo: algo.to_string(),
            seconds,
            count,
            timed_out,
            metrics,
        });
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The report as a JSON document tree.
    pub fn to_json(&self) -> JsonValue {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("task".to_string(), JsonValue::Str(r.task.clone())),
                    ("algo".to_string(), JsonValue::Str(r.algo.clone())),
                    ("seconds".to_string(), JsonValue::Float(r.seconds)),
                    ("count".to_string(), JsonValue::UInt(r.count)),
                    ("timed_out".to_string(), JsonValue::Bool(r.timed_out)),
                ];
                if let Some(m) = &r.metrics {
                    fields.push((
                        "counters".to_string(),
                        JsonValue::Object(
                            m.counters()
                                .map(|(k, v)| (k.to_string(), JsonValue::UInt(v)))
                                .collect(),
                        ),
                    ));
                    fields.push((
                        "gauges".to_string(),
                        JsonValue::Object(
                            m.gauges().map(|(k, v)| (k.to_string(), JsonValue::Float(v))).collect(),
                        ),
                    ));
                    fields.push((
                        "series".to_string(),
                        JsonValue::Object(
                            m.all_series()
                                .map(|(k, vs)| {
                                    (
                                        k.to_string(),
                                        JsonValue::Array(
                                            vs.iter().map(|&v| JsonValue::UInt(v)).collect(),
                                        ),
                                    )
                                })
                                .collect(),
                        ),
                    ));
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            ("bench".to_string(), JsonValue::Str(self.name.clone())),
            ("runs".to_string(), JsonValue::Array(runs)),
        ])
    }

    /// Write `BENCH_<name>.json` under `CSCE_BENCH_DIR` (default
    /// `results/`), creating the directory. Returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("CSCE_BENCH_DIR").unwrap_or_else(|_| "results".to_string());
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Write the report, logging the outcome to stderr instead of failing
    /// the binary — the tables on stdout are the primary artifact.
    pub fn finish(&self) {
        match self.write() {
            Ok(path) => eprintln!("[bench] wrote {} runs to {}", self.len(), path.display()),
            Err(e) => eprintln!("[bench] could not write BENCH_{}.json: {e}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("unit");
        let stats = ExecStats { embeddings: 7, nodes: 9, ..Default::default() };
        report.record(
            "tiny/wedge",
            &AlgoResult {
                name: "CSCE",
                seconds: 0.25,
                count: 7,
                timed_out: false,
                stats: Some(stats),
            },
        );
        report.record_custom("tiny/wedge", "plan-only", 0.001, 0);
        let text = report.to_json().to_pretty();
        let parsed = csce_obs::json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("bench").and_then(JsonValue::as_str), Some("unit"));
        let runs = parsed.get("runs").and_then(JsonValue::as_array).expect("runs");
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0]
                .get("counters")
                .and_then(|c| c.get("exec.embeddings"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
        assert!(runs[1].get("counters").is_none(), "custom rows carry no counter dump");
    }
}
