//! A counting global allocator for peak-memory measurements.
//!
//! The paper reports peak RAM per run (Table in §VII "Metric"); measuring
//! OS RSS is noisy and platform-specific, so the harness binaries install
//! this wrapper around the system allocator and read the in-process peak,
//! which preserves the ordering information the figures need.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Install with `#[global_allocator] static A: TrackingAllocator = TrackingAllocator;`.
pub struct TrackingAllocator;

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl TrackingAllocator {
    /// Bytes currently allocated.
    pub fn current_bytes() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark since process start (or the last reset).
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current level, so a measurement window can
    /// observe only its own allocations.
    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Format a byte count like the paper's GB-scale tables.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512.00 B");
        assert_eq!(format_bytes(2048), "2.00 KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn counters_move() {
        // The test binary does not install the allocator; exercise the
        // static API shape only.
        let p = TrackingAllocator::peak_bytes();
        TrackingAllocator::reset_peak();
        assert!(TrackingAllocator::peak_bytes() <= p.max(TrackingAllocator::current_bytes()));
    }
}
