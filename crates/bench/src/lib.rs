//! # csce-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§VII). Each `src/bin/figN.rs` / `tableN.rs` binary
//! prints the rows or series of one exhibit; `benches/` holds Criterion
//! micro-benchmarks of the hot paths and the design-choice ablations.
//!
//! This library provides the shared machinery: a peak-tracking global
//! allocator (the paper reports peak RAM), aligned table printing, a
//! uniform sweep runner over CSCE plus every applicable baseline, and the
//! [`BenchReport`] collector that mirrors every run into a
//! machine-readable `BENCH_<name>.json` file.

#![deny(unsafe_code)]

// The tracking allocator is the one place in the workspace that needs
// `unsafe`: wrapping [`std::alloc::System`] behind `GlobalAlloc`.
#[allow(unsafe_code)]
pub mod alloc;
pub mod report;
pub mod runner;
pub mod table;

pub use alloc::TrackingAllocator;
pub use report::BenchReport;
pub use runner::{geometric_mean, run_all, run_csce, AlgoResult, BenchContext, TIME_LIMIT};
pub use table::Table;
