//! Scheduler benchmark: dynamic chunk-claiming vs the static round-robin
//! root partitioning it replaced, at a fixed thread count on a skewed
//! (preferential-attachment) data graph. Hub roots carry subtrees orders
//! of magnitude larger than leaf roots, so a static split strands the
//! unlucky workers; dynamic claiming rebalances at chunk granularity and
//! must match or beat round-robin throughput.

use csce_bench::{BenchReport, Table};
use csce_ccsr::{build_ccsr, read_csr};
use csce_core::{count_parallel, Catalog, Executor, Plan, Planner, PlannerConfig, RunConfig};
use csce_graph::generate::barabasi_albert;
use csce_graph::{Graph, GraphBuilder, Variant, NO_LABEL};
use std::time::Instant;

fn path_pattern(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 - 1 {
        b.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    b.build()
}

/// The pre-refactor static strategy: worker `t` of `threads` owns every
/// `threads`-th root candidate, fixed up front.
fn count_round_robin(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &Graph,
    plan: &Plan,
    threads: usize,
) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let catalog = Catalog::new(pattern, star);
                    let mut exec = Executor::new(&catalog, plan, RunConfig::default())
                        .with_root_partition(threads, t);
                    exec.count()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench worker")).sum()
    })
}

fn best_of<F: FnMut() -> u64>(repeats: usize, mut run: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut count = 0;
    for _ in 0..repeats {
        let t0 = Instant::now();
        count = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, count)
}

fn main() {
    let threads: usize =
        std::env::var("CSCE_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    let g = barabasi_albert(2000, 4, 0, 42);
    let gc = build_ccsr(&g).unwrap();
    println!(
        "Scheduler — dynamic chunk claiming vs static round-robin \
         ({} threads, best of {repeats}, BA n={} m={})\n",
        threads,
        g.n(),
        g.m()
    );
    let mut report = BenchReport::new("scheduler");
    let mut t = Table::new(&["task", "round-robin", "dynamic", "speedup", "embeddings"]);
    for (size, variant) in
        [(4usize, Variant::EdgeInduced), (4, Variant::Homomorphic), (4, Variant::VertexInduced)]
    {
        let p = path_pattern(size);
        let star = read_csr(&gc, &p, variant);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        drop(catalog);
        let task = format!("ba2000/path{size}/{variant}");

        let (static_secs, static_count) =
            best_of(repeats, || count_round_robin(&star, &p, &plan, threads));
        let (dyn_secs, dyn_count) = best_of(repeats, || {
            count_parallel(&star, &p, &plan, RunConfig::default(), threads, None)
                .expect("no worker panicked")
                .count
        });
        assert_eq!(static_count, dyn_count, "{task}: strategies must agree exactly");

        report.record_custom(&task, "round-robin", static_secs, static_count);
        report.record_custom(&task, "dynamic-chunks", dyn_secs, dyn_count);
        report.record_gauge(&task, "dynamic-chunks", "sched.speedup", static_secs / dyn_secs);
        t.row(vec![
            task,
            format!("{:.2}ms", static_secs * 1e3),
            format!("{:.2}ms", dyn_secs * 1e3),
            format!("{:.2}x", static_secs / dyn_secs),
            dyn_count.to_string(),
        ]);
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape: identical counts; dynamic claiming at or above\n\
         round-robin throughput, pulling ahead as root subtree skew grows."
    );
}
