//! Fig. 12: SCE occurrence — the percentage of pattern vertices whose
//! candidates are sequentially equivalent to an earlier vertex's, per
//! pattern size, in the edge-induced and homomorphic variants, plus the
//! cluster-driven share (the paper's sub-bars) and the vertex-induced
//! case where *all* SCE is cluster-driven (Finding 12).

use csce_bench::{BenchReport, Table};
use csce_core::{Engine, PlannerConfig};
use csce_datasets::presets;
use csce_graph::generate::randomize_vertex_labels;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};

fn main() {
    let ds = presets::patent();
    println!("Fig. 12 — SCE occurrence on {} ({})\n", ds.name, ds.stats());
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    let sizes = [8usize, 16, 32, 50, 100, 150, 200];

    let mut t = Table::new(&["labels", "size", "E sce%", "E cluster-share%", "H sce%", "V sce%"]);
    let mut report = BenchReport::new("fig12");
    // With 20 labels every label pair co-occurs in the data, so no
    // independence is cluster-driven; the 200-label series shows the
    // cluster contribution that rarer label pairs unlock.
    for labels in [20u32, 200] {
        let g = if labels == 20 {
            ds.graph.clone()
        } else {
            randomize_vertex_labels(&ds.graph, labels, 0xF12)
        };
        let engine = Engine::build(&g);
        let mut sampler = PatternSampler::new(&g, 0xF12);
        for size in sizes {
            let patterns: Vec<_> = sampler
                .sample_many(repeats, size, Density::Sparse)
                .into_iter()
                .map(|s| s.pattern)
                .collect();
            if patterns.is_empty() {
                continue;
            }
            let mut row = vec![labels.to_string(), size.to_string()];
            for variant in [Variant::EdgeInduced, Variant::Homomorphic, Variant::VertexInduced] {
                let (mut sce, mut cluster) = (0.0f64, 0.0f64);
                for p in &patterns {
                    let plan = engine.plan(p, variant, PlannerConfig::csce());
                    sce += plan.sce.sce_fraction();
                    cluster += plan.sce.cluster_pair_fraction();
                }
                let n = patterns.len() as f64;
                let task = format!("labels{labels}/size{size}/{variant}");
                report.record_gauge(&task, "CSCE", "plan.sce_fraction", sce / n);
                row.push(format!("{:.0}%", 100.0 * sce / n));
                if variant == Variant::EdgeInduced {
                    report.record_gauge(&task, "CSCE", "plan.cluster_pair_fraction", cluster / n);
                    row.push(format!("{:.0}%", 100.0 * cluster / n));
                }
            }
            t.row(row);
        }
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): ~51% SCE in edge-induced, ~58% in homomorphic;\n\
         the cluster share shrinks as patterns grow; vertex-induced SCE is rarer\n\
         and entirely cluster-driven."
    );
}
