//! Fig. 8: edge-induced throughput (embeddings per second of total time)
//! on the RoadCA-like graph, per pattern size, for every algorithm.
//! Reproduces Finding 8: throughput decreases with pattern size and CSCE
//! stays on top.

use csce_bench::{run_all, BenchContext, BenchReport, Table};
use csce_datasets::{presets, sample_suite};
use csce_graph::{Density, Variant};
use std::time::Duration;

fn main() {
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(10),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = presets::roadca();
    println!("Fig. 8 — edge-induced throughput on {} ({})\n", ds.name, ds.stats());
    let ctx = BenchContext::new(ds.name, ds.graph);
    let suites = sample_suite(&ctx.graph, &[8, 16, 24, 32], &[Density::Sparse], repeats, 0xF18);

    let mut report = BenchReport::new("fig8");
    let mut algo_names: Vec<&'static str> = Vec::new();
    let mut rows = Vec::new();
    for suite in &suites {
        if suite.patterns.is_empty() {
            continue;
        }
        let mut acc: Vec<(&'static str, u64, f64)> = Vec::new();
        for (pi, p) in suite.patterns.iter().enumerate() {
            for r in run_all(&ctx, p, Variant::EdgeInduced, limit) {
                report.record(&format!("{}/{}/p{pi}", ctx.name, suite.name), &r);
                match acc.iter_mut().find(|(n, _, _)| *n == r.name) {
                    Some((_, c, s)) => {
                        *c += r.count;
                        *s += r.seconds;
                    }
                    None => acc.push((r.name, r.count, r.seconds)),
                }
            }
        }
        if algo_names.is_empty() {
            algo_names = acc.iter().map(|(n, _, _)| *n).collect();
        }
        let mut row = vec![suite.size.to_string()];
        for &name in &algo_names {
            match acc.iter().find(|(n, _, _)| *n == name) {
                Some((_, count, secs)) if *secs > 0.0 => {
                    row.push(format!("{:.0}", *count as f64 / secs));
                }
                _ => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    let mut header = vec!["size"];
    header.extend(algo_names.iter().copied());
    let mut t = Table::new(&header);
    for row in rows {
        t.row(row);
    }
    t.print();
    report.finish();
    println!("\nExpected shape (paper): throughput falls as size grows; CSCE highest.");
}
