//! Table IV: dataset statistics of the nine (synthetic stand-in) data
//! graphs — direction, vertex count, edge count, label count, average
//! degree, max in/out degree.

use csce_bench::Table;
use csce_datasets::all_presets;

fn main() {
    let mut t = Table::new(&[
        "Data Graph",
        "Dir",
        "Vertices",
        "Edges",
        "Labels",
        "AvgDeg",
        "MaxIn",
        "MaxOut",
    ]);
    for ds in all_presets() {
        let s = ds.stats();
        t.row(vec![
            ds.name.to_string(),
            s.direction_tag().to_string(),
            s.vertex_count.to_string(),
            s.edge_count.to_string(),
            s.label_count.to_string(),
            format!("{:.1}", s.average_degree),
            s.max_in_degree.to_string(),
            s.max_out_degree.to_string(),
        ]);
    }
    println!("Table IV — dataset statistics (synthetic stand-ins, ~1/100 scale)\n");
    t.print();
}
