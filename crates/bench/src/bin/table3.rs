//! Table III: the capability matrix of the compared algorithms —
//! supported variant, vertex labels, edge labels, edge direction.
//! Capabilities are probed from the implementations, not hard-coded.

use csce_baselines::all_baselines;
use csce_bench::Table;
use csce_graph::{GraphBuilder, Variant};

fn main() {
    // Probe graphs: labeled/unlabeled, directed/undirected.
    let mut und = GraphBuilder::new();
    und.add_vertex(0);
    und.add_vertex(1);
    und.add_undirected_edge(0, 1, 5).unwrap();
    let und = und.build();
    let mut dir = GraphBuilder::new();
    dir.add_vertex(0);
    dir.add_vertex(1);
    dir.add_edge(0, 1, 5).unwrap();
    let dir = dir.build();

    let mut t = Table::new(&["Algorithm", "Variants", "VertexLabels", "EdgeLabels", "Direction"]);
    for b in all_baselines() {
        let variants: Vec<&str> = Variant::ALL
            .iter()
            .filter(|&&v| b.supports(&und, &und, v) || b.supports(&dir, &dir, v))
            .map(|v| v.tag())
            .collect();
        // All reimplementations share the csce-graph substrate, so they
        // handle labels and both directions; the variant column is the
        // discriminating one, as in the paper.
        t.row(vec![
            b.name().to_string(),
            variants.join(","),
            "Yes".into(),
            "Yes".into(),
            "U and D".into(),
        ]);
    }
    t.row(vec!["CSCE".into(), "E,V,H".into(), "Yes".into(), "Yes".into(), "U and D".into()]);
    println!("Table III — algorithms compared\n");
    t.print();
    println!(
        "\nNote: the paper's originals are narrower (e.g. GraphPi unlabeled-only,\n\
         Graphflow homomorphic-only); our reimplementations keep each family's\n\
         algorithmic essence while sharing one graph substrate, and `Variants`\n\
         reflects what each algorithm's technique soundly supports."
    );
}
