//! Fig. 11: CCSR overhead — ReadCSR (cluster selection + decompression)
//! time and decoded working-set size, varying the number of data-graph
//! labels (20 / 200 / 2000 on the Patent-like graph) and the pattern
//! size. Only clusters a pattern uses are read, so both metrics track the
//! pattern, not the graph (Finding 11).

#[global_allocator]
static ALLOC: csce_bench::TrackingAllocator = csce_bench::TrackingAllocator;

use csce_bench::alloc::format_bytes;
use csce_bench::{BenchReport, Table};
use csce_ccsr::{build_ccsr, read_csr};
use csce_datasets::presets;
use csce_graph::generate::randomize_vertex_labels;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};
use std::time::Instant;

fn main() {
    let base = presets::patent();
    let sizes = [3usize, 4, 8, 32, 128, 500, 2000];
    println!("Fig. 11 — CCSR read time and decoded bytes (Patent-like, edge-induced)\n");
    let mut report = BenchReport::new("fig11");
    let mut t = Table::new(&["labels", "pattern", "read time", "clusters", "decoded bytes"]);
    for labels in [20u32, 200, 2000] {
        let g = randomize_vertex_labels(&base.graph, labels, 0xF11);
        let gc = build_ccsr(&g).unwrap();
        let mut sampler = PatternSampler::new(&g, 0xF11);
        for &size in &sizes {
            let Some(sp) = sampler.sample(size, Density::Sparse) else {
                continue;
            };
            let t0 = Instant::now();
            let star = read_csr(&gc, &sp.pattern, Variant::EdgeInduced);
            let elapsed = t0.elapsed();
            report.record_custom(
                &format!("labels{labels}/size{size}"),
                "read-csr",
                elapsed.as_secs_f64(),
                star.heap_bytes() as u64,
            );
            t.row(vec![
                labels.to_string(),
                size.to_string(),
                format!("{:.2}ms", elapsed.as_secs_f64() * 1e3),
                star.cluster_count().to_string(),
                format_bytes(star.heap_bytes()),
            ]);
        }
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): more labels -> smaller clusters -> reads grow\n\
         with pattern size but stay well within budget."
    );
}
