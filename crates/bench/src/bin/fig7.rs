//! Fig. 7: edge-induced vs vertex-induced on the RoadCA-like graph —
//! (a) number of embeddings, (b) total time, (c) throughput, per pattern
//! size. Reproduces Finding 6: neither variant is uniformly easier; the
//! edge-induced variant has higher throughput but can have far more
//! embeddings.

use csce_bench::{run_csce, BenchContext, BenchReport, Table};
use csce_datasets::{presets, sample_suite};
use csce_graph::{Density, Variant};
use std::time::Duration;

fn main() {
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(10),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = presets::roadca();
    println!("Fig. 7 — edge- vs vertex-induced on {} ({})\n", ds.name, ds.stats());
    let ctx = BenchContext::new(ds.name, ds.graph);
    let sizes = [4usize, 8, 16, 32];
    let suites = sample_suite(&ctx.graph, &sizes, &[Density::Sparse], repeats, 0xF17);
    let mut report = BenchReport::new("fig7");

    let mut t = Table::new(&[
        "size",
        "E embeddings",
        "V embeddings",
        "E time",
        "V time",
        "E throughput/s",
        "V throughput/s",
    ]);
    for suite in &suites {
        if suite.patterns.is_empty() {
            continue;
        }
        let mut cells: Vec<(u64, f64)> = Vec::new(); // (count, secs) per variant
        for variant in [Variant::EdgeInduced, Variant::VertexInduced] {
            let (mut count, mut secs) = (0u64, 0f64);
            for (pi, p) in suite.patterns.iter().enumerate() {
                let r = run_csce(&ctx, p, variant, limit);
                report.record(&format!("{}/{variant}/{}/p{pi}", ctx.name, suite.name), &r);
                count += r.count;
                secs += r.seconds;
            }
            cells.push((count / suite.patterns.len() as u64, secs / suite.patterns.len() as f64));
        }
        let throughput = |c: &(u64, f64)| {
            if c.1 > 0.0 {
                format!("{:.0}", c.0 as f64 / c.1)
            } else {
                "inf".into()
            }
        };
        t.row(vec![
            suite.size.to_string(),
            cells[0].0.to_string(),
            cells[1].0.to_string(),
            format!("{:.3}s", cells[0].1),
            format!("{:.3}s", cells[1].1),
            throughput(&cells[0]),
            throughput(&cells[1]),
        ]);
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): edge-induced counts dominate on larger patterns,\n\
         so the vertex-induced variant can be *faster* in total time while the\n\
         edge-induced variant keeps the higher throughput (Finding 6)."
    );
}
