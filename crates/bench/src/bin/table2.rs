//! Table II: the paper's survey of maximum pattern sizes tested by
//! recent subgraph-matching systems. Static literature data, reproduced
//! verbatim for completeness (the split motivates the paper's focus on
//! 8+-vertex patterns).

use csce_bench::Table;

fn main() {
    println!("Table II — max pattern sizes tested in existing works (paper survey)\n");
    let mut t = Table::new(&["Group", "Systems (max tested pattern size)"]);
    t.row(vec![
        "8 or more".into(),
        "CFQL(32), CECI(50), Circinus(16), DAF(200), GSI(15), G-Morph(9), GuP(32), \
         RapidMatch(32), VC(128), VEQ(200)"
            .into(),
    ]);
    t.row(vec![
        "7 or fewer".into(),
        "AutoMine, BENU, CliqueJoin++, cuTS, Dryadic, EdgeFrame, FlexMiner, Fractal, \
         GF, GraphPi, GraphWCOJ, GraphZero, HUGE, LIGHT, Pangolin, Peregrine, RADS, \
         SandSlash, STMatch, SumPA, Timely"
            .into(),
    ]);
    t.print();
    println!(
        "\n21 systems stop at 7-vertex patterns; only 10 reach 8+ — the gap CSCE\n\
         targets. This repository's CSCE handles patterns up to 2000 vertices\n\
         (see fig10)."
    );
}
