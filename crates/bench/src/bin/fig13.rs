//! Fig. 13: query-plan quality — the same executor run under different
//! plans on the Patent-like graph: plain RI rules, RI + CCSR cluster
//! tie-breaks, and full CSCE (clusters + LDSF over the dependency DAG),
//! against the RapidMatch-family baseline (FSP-BT) as the external
//! reference. Reproduces Finding 13: clusters and SCE both improve the
//! plan.

use csce_baselines::fsp::FailingSetBacktracking;
use csce_baselines::Baseline;
use csce_bench::{BenchContext, BenchReport, Table};
use csce_core::{PlannerConfig, RunConfig};
use csce_datasets::{presets, sample_suite};
use csce_graph::{Density, Variant};
use std::time::Duration;

fn main() {
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(10),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = presets::patent();
    println!("Fig. 13 — plan quality on {} ({}), edge-induced\n", ds.name, ds.stats());
    let ctx = BenchContext::new(ds.name, ds.graph);
    let suites =
        sample_suite(&ctx.graph, &[8, 16, 32], &[Density::Dense, Density::Sparse], repeats, 0xF13);

    let plans: [(&str, PlannerConfig); 3] = [
        ("RI", PlannerConfig::ri_only()),
        ("RI+Cluster", PlannerConfig::ri_cluster()),
        ("CSCE", PlannerConfig::csce()),
    ];
    let mut report = BenchReport::new("fig13");
    let mut t = Table::new(&["pattern", "RM(FSP)", "RI", "RI+Cluster", "CSCE"]);
    for suite in &suites {
        if suite.patterns.is_empty() {
            continue;
        }
        let mut cells = vec![suite.name.clone()];
        // External reference: the RapidMatch-family backtracker.
        let mut rm = 0.0f64;
        for (pi, p) in suite.patterns.iter().enumerate() {
            let r = FailingSetBacktracking.count(&ctx.graph, p, Variant::EdgeInduced, Some(limit));
            let secs = if r.timed_out { limit.as_secs_f64() } else { r.elapsed.as_secs_f64() };
            report.record_custom(&format!("{}/p{pi}", suite.name), "RM(FSP)", secs, r.count);
            rm += secs;
        }
        cells.push(format!("{:.3}s", rm / suite.patterns.len() as f64));
        for (plan_name, config) in &plans {
            let mut secs = 0.0f64;
            for (pi, p) in suite.patterns.iter().enumerate() {
                let run = RunConfig { time_limit: Some(limit), ..Default::default() };
                let out = ctx.engine.run(p, Variant::EdgeInduced, *config, run);
                let s = if out.stats.timed_out {
                    limit.as_secs_f64()
                } else {
                    out.total_time().as_secs_f64()
                };
                report.record_custom(&format!("{}/p{pi}", suite.name), plan_name, s, out.count);
                secs += s;
            }
            cells.push(format!("{:.3}s", secs / suite.patterns.len() as f64));
        }
        t.row(cells);
    }
    t.print();
    report.finish();
    println!("\nExpected shape (paper): CSCE <= RI+Cluster <= RI, and CSCE beats RM.");
}
