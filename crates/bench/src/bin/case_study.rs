//! §VII-G case study: department recovery on the EMAIL-EU-like network —
//! edge-based clustering F1 vs k-clique higher-order clustering F1, plus
//! the clique-discovery time under CSCE. The paper reports F1 0.398 →
//! 0.515 and 8-clique discovery accelerating from 11.57s to 0.39s.

use csce_bench::{BenchReport, Table};
use csce_datasets::email::{email_eu, run_case_study};

fn main() {
    let k: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (g, truth) = email_eu();
    println!(
        "Case study — EMAIL-EU-like network: {} members, {} edges, {} departments\n",
        g.n(),
        g.m(),
        truth.iter().copied().max().unwrap() + 1
    );
    let r = run_case_study(&g, &truth, k);
    let mut report = BenchReport::new("case_study");
    report.record_gauge("email-eu", "edge-based", "cluster.f1", r.f1_edge);
    report.record_gauge("email-eu", "higher-order", "cluster.f1", r.f1_motif);
    report.record_custom(
        &format!("email-eu/{}-clique", r.clique_size),
        "CSCE",
        r.clique_time.as_secs_f64(),
        r.cliques_found as u64,
    );
    let mut t = Table::new(&["method", "pairwise F1", "motif time", "instances"]);
    t.row(vec!["edge-based".into(), format!("{:.3}", r.f1_edge), "-".into(), "-".into()]);
    t.row(vec![
        format!("{}-clique higher-order", r.clique_size),
        format!("{:.3}", r.f1_motif),
        format!("{:.3}s", r.clique_time.as_secs_f64()),
        r.cliques_found.to_string(),
    ]);
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): higher-order F1 exceeds edge-based (0.398 -> 0.515)\n\
         and CSCE finds the cliques quickly (0.39s on the real network)."
    );
}
