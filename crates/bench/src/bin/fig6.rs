//! Fig. 6: total time (read + plan + execute) of every algorithm on every
//! data graph and pattern configuration, per matching variant.
//!
//! Environment knobs:
//! * `CSCE_TIME_LIMIT` — per-run limit in seconds (default 5; the paper
//!   uses 10^4 on full-size graphs);
//! * `CSCE_REPEATS` — patterns per configuration (default 3; paper: 10);
//! * argv — dataset names to include (default: all nine).

#[global_allocator]
static ALLOC: csce_bench::TrackingAllocator = csce_bench::TrackingAllocator;

use csce_bench::alloc::format_bytes;
use csce_bench::{run_all, BenchContext, BenchReport, Table, TrackingAllocator};
use csce_datasets::{all_presets, sample_suite};
use csce_graph::{Density, Variant};
use std::time::Duration;

struct Config {
    variants: &'static [Variant],
    sizes: &'static [usize],
    densities: &'static [Density],
}

fn config_for(name: &str) -> Config {
    use Density::*;
    use Variant::*;
    match name {
        // The paper's sub-figure selections, scaled. DIP uses dense
        // patterns (the MIPS complexes are communities, not trees; sparse
        // trees on a hub-heavy PPI graph explode to billions).
        "DIP" => Config {
            variants: &[EdgeInduced, VertexInduced],
            sizes: &[3, 4, 5, 8, 9],
            densities: &[Dense],
        },
        "Yeast" => Config {
            variants: &[EdgeInduced, VertexInduced],
            sizes: &[8, 16, 32],
            densities: &[Dense, Sparse],
        },
        "Human" => {
            Config { variants: &[EdgeInduced], sizes: &[4, 8, 16], densities: &[Dense, Sparse] }
        }
        "HPRD" => Config {
            variants: &[EdgeInduced, VertexInduced],
            sizes: &[8, 16, 32, 50],
            densities: &[Dense, Sparse],
        },
        "RoadCA" => Config {
            variants: &[EdgeInduced, VertexInduced],
            sizes: &[4, 8, 16, 32],
            densities: &[Sparse],
        },
        "Orkut" => Config { variants: &[EdgeInduced], sizes: &[4, 8], densities: &[Sparse] },
        "Patent" => {
            Config { variants: &[EdgeInduced], sizes: &[8, 16, 32], densities: &[Dense, Sparse] }
        }
        "Subcategory" => {
            Config { variants: &[Homomorphic, VertexInduced], sizes: &[4, 8], densities: &[Sparse] }
        }
        "LiveJournal" => {
            Config { variants: &[Homomorphic], sizes: &[4, 8, 10, 12], densities: &[Sparse] }
        }
        other => panic!("unknown dataset {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(5),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!(
        "Fig. 6 — total time per algorithm (limit {:?}/run, {} patterns/config, \
         averaged; `>limit` marks timeouts)\n",
        limit, repeats
    );

    let mut report = BenchReport::new("fig6");
    for ds in all_presets() {
        if !args.is_empty() && !args.iter().any(|a| a.eq_ignore_ascii_case(ds.name)) {
            continue;
        }
        let cfg = config_for(ds.name);
        println!("=== {} — {} ===", ds.name, ds.stats());
        let ctx = BenchContext::new(ds.name, ds.graph);
        for &variant in cfg.variants {
            let suites = sample_suite(&ctx.graph, cfg.sizes, cfg.densities, repeats, 0xF166);
            let mut algo_names: Vec<&'static str> = Vec::new();
            let mut rows: Vec<Vec<String>> = Vec::new();
            for suite in &suites {
                if suite.patterns.is_empty() {
                    continue;
                }
                // Average per algorithm over the suite's patterns.
                let mut totals: Vec<(&'static str, f64, bool)> = Vec::new();
                for (pi, p) in suite.patterns.iter().enumerate() {
                    for r in run_all(&ctx, p, variant, limit) {
                        report.record(&format!("{}/{variant}/{}/p{pi}", ctx.name, suite.name), &r);
                        match totals.iter_mut().find(|(n, _, _)| *n == r.name) {
                            Some((_, secs, to)) => {
                                *secs += r.seconds;
                                *to |= r.timed_out;
                            }
                            None => totals.push((r.name, r.seconds, r.timed_out)),
                        }
                    }
                }
                if algo_names.is_empty() {
                    algo_names = totals.iter().map(|(n, _, _)| *n).collect();
                }
                let mut row = vec![suite.name.clone()];
                for &name in &algo_names {
                    match totals.iter().find(|(n, _, _)| *n == name) {
                        Some((_, secs, timed_out)) => {
                            let avg = secs / suite.patterns.len() as f64;
                            row.push(if *timed_out {
                                format!(">{avg:.2}s*")
                            } else {
                                format!("{avg:.3}s")
                            });
                        }
                        None => row.push("-".into()),
                    }
                }
                rows.push(row);
            }
            if rows.is_empty() {
                continue;
            }
            let mut header: Vec<&str> = vec!["pattern"];
            header.extend(algo_names.iter().copied());
            let mut t = Table::new(&header);
            for row in rows {
                t.row(row);
            }
            println!("\n[{} — {variant}]", ctx.name);
            t.print();
        }
        println!("peak memory so far: {}\n", format_bytes(TrackingAllocator::peak_bytes()));
    }
    report.finish();
}
