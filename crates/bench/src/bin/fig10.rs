//! Fig. 10: plan-generation scalability — time and peak memory of the
//! full optimization pipeline (ReadCSR + GCF + DAG + LDSF + NEC) for
//! pattern sizes up to 2000 on the Patent-like graph with 2000 randomly
//! assigned vertex labels, per variant. Reproduces Finding 10 (plans for
//! 2000-vertex patterns in bounded time; homomorphism cheapest since it
//! needs no injectivity bookkeeping).

#[global_allocator]
static ALLOC: csce_bench::TrackingAllocator = csce_bench::TrackingAllocator;

use csce_bench::alloc::format_bytes;
use csce_bench::{BenchReport, Table, TrackingAllocator};
use csce_core::{Engine, PlannerConfig};
use csce_datasets::presets;
use csce_graph::generate::randomize_vertex_labels;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};
use std::time::Instant;

fn main() {
    let ds = presets::patent();
    let g = randomize_vertex_labels(&ds.graph, 2000, 0xF10);
    println!(
        "Fig. 10 — plan generation time / peak memory on Patent + 2000 labels ({})\n",
        csce_graph::GraphStats::of(&g)
    );
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 0xF10);
    let sizes = [8usize, 16, 32, 64, 128, 200, 500, 1000, 2000];

    let mut report = BenchReport::new("fig10");
    let mut t = Table::new(&["size", "E time", "V time", "H time", "peak mem"]);
    for size in sizes {
        let Some(sp) = sampler.sample(size, Density::Sparse) else {
            continue;
        };
        let mut cells = Vec::new();
        TrackingAllocator::reset_peak();
        for variant in [Variant::EdgeInduced, Variant::VertexInduced, Variant::Homomorphic] {
            let t0 = Instant::now();
            let plan = engine.plan(&sp.pattern, variant, PlannerConfig::csce());
            let elapsed = t0.elapsed();
            assert_eq!(plan.order.len(), size);
            report.record_custom(
                &format!("size{size}/{variant}"),
                "plan-only",
                elapsed.as_secs_f64(),
                0,
            );
            cells.push(format!("{:.3}s", elapsed.as_secs_f64()));
        }
        cells.insert(0, size.to_string());
        cells.push(format_bytes(TrackingAllocator::peak_bytes()));
        t.row(cells);
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): all variants plan 2000-vertex patterns within\n\
         the budget; homomorphic plans fastest (no injectivity machinery)."
    );
}
