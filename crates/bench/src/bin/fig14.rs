//! Fig. 14: less effective scenarios on the DIP-like graph —
//! (a) symmetry breaking's benefit on small patterns (sizes 3–9) and its
//! optimization-cost blowup on larger ones (Finding 2);
//! (b) CSCE throughput across pattern densities (denser patterns reduce
//! SCE but CSCE stays ahead of the baselines).

use csce_baselines::symmetry::SymmetryBreaking;
use csce_baselines::Baseline;
use csce_bench::{run_all, run_csce, BenchContext, BenchReport, Table};
use csce_datasets::{presets, sample_suite};
use csce_graph::{classify_density, Density, Variant};
use std::time::{Duration, Instant};

fn main() {
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(10),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = presets::dip();
    println!("Fig. 14 — DIP-like graph ({})\n", ds.stats());
    let ctx = BenchContext::new(ds.name, ds.graph);

    let mut report = BenchReport::new("fig14");
    // (a) symmetry breaking on small-to-large patterns: restriction
    // generation time vs total time vs CSCE.
    println!("(a) symmetry breaking vs CSCE, edge-induced, sparse patterns");
    let mut t = Table::new(&["size", "SB restr-gen", "SB total", "CSCE total", "|Aut|"]);
    for size in [3usize, 4, 5, 8, 9] {
        let suites = sample_suite(&ctx.graph, &[size], &[Density::Sparse], repeats, 0xF14);
        let suite = &suites[0];
        if suite.patterns.is_empty() {
            continue;
        }
        let (mut gen_s, mut sb_s, mut csce_s, mut aut_sum) = (0.0f64, 0.0f64, 0.0f64, 0u64);
        for (pi, p) in suite.patterns.iter().enumerate() {
            let t0 = Instant::now();
            let (_, aut) = SymmetryBreaking::restrictions_of(p);
            gen_s += t0.elapsed().as_secs_f64();
            aut_sum += aut;
            let r = SymmetryBreaking.count(&ctx.graph, p, Variant::EdgeInduced, Some(limit));
            let sb = if r.timed_out { limit.as_secs_f64() } else { r.elapsed.as_secs_f64() };
            report.record_custom(&format!("a/size{size}/p{pi}"), "SymmetryBreaking", sb, r.count);
            sb_s += sb;
            let c = run_csce(&ctx, p, Variant::EdgeInduced, limit);
            report.record(&format!("a/size{size}/p{pi}"), &c);
            csce_s += c.seconds;
        }
        let n = suite.patterns.len() as f64;
        t.row(vec![
            size.to_string(),
            format!("{:.4}s", gen_s / n),
            format!("{:.3}s", sb_s / n),
            format!("{:.3}s", csce_s / n),
            format!("{:.1}", aut_sum as f64 / n),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): SB helps only on small symmetric patterns and\n\
         its optimization does not scale to 8+ vertices (Finding 2).\n"
    );

    // Finding 2's blowup made explicit: restriction generation enumerates
    // the automorphism group, which is factorial on symmetric patterns.
    println!("(a') symmetry-breaking optimization cost on symmetric (star) patterns");
    let mut t = Table::new(&["star size", "|Aut|", "restriction-gen time"]);
    for n in [6usize, 8, 10, 11] {
        let mut b = csce_graph::GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for leaf in 1..n as u32 {
            b.add_undirected_edge(0, leaf, csce_graph::NO_LABEL).unwrap();
        }
        let star = b.build();
        let t0 = Instant::now();
        let (_, aut) = SymmetryBreaking::restrictions_of(&star);
        t.row(vec![n.to_string(), aut.to_string(), format!("{:.3}s", t0.elapsed().as_secs_f64())]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): factorial growth — why CSCE skips symmetry\n\
         breaking for large patterns (Finding 2).\n"
    );

    // (b) throughput vs pattern density.
    println!("(b) CSCE throughput by pattern density, edge-induced, size 8");
    let mut t = Table::new(&["pattern", "avg-degree", "CSCE tput/s", "best-baseline tput/s"]);
    for density in [Density::Sparse, Density::Dense] {
        let suites = sample_suite(&ctx.graph, &[8], &[density], repeats, 0xF14B);
        for suite in &suites {
            for (pi, p) in suite.patterns.iter().enumerate() {
                let results = run_all(&ctx, p, Variant::EdgeInduced, limit);
                report.record_all(&format!("b/{}/p{pi}", suite.name), &results);
                let tput = |r: &csce_bench::AlgoResult| {
                    if r.seconds > 0.0 {
                        r.count as f64 / r.seconds
                    } else {
                        0.0
                    }
                };
                let csce_tput = tput(&results[0]);
                let best_baseline = results[1..].iter().map(tput).fold(0.0f64, f64::max);
                t.row(vec![
                    format!("{}{}", classify_density(p).letter(), p.n()),
                    format!("{:.2}", p.average_degree()),
                    format!("{csce_tput:.0}"),
                    format!("{best_baseline:.0}"),
                ]);
            }
        }
    }
    t.print();
    report.finish();
    println!(
        "\nExpected shape (paper): throughput drops on denser patterns but CSCE\n\
         stays above the baselines."
    );
}
