//! Fig. 9: scalability with the number of embeddings — edge-induced SM
//! with patterns of sizes 8 and 9 sorted by result count. Reproduces
//! Finding 9 (time grows with embeddings) and GraphPi's flat-but-high
//! curve (its optimization cost does not depend on the result count —
//! Finding 2). Two panels: the paper's DIP (which at laptop scale clamps
//! everywhere, so timed-out cells report the partial count reached within
//! the budget) and RoadCA (whose sparse-pattern runs complete, showing
//! the time-vs-embeddings growth directly).

use csce_bench::{run_all, BenchContext, BenchReport, Table};
use csce_datasets::{presets, sample_suite, Dataset};
use csce_graph::{Density, Variant};
use std::time::Duration;

/// One algorithm's `(name, seconds, partial count, timed_out)` cell.
type Cell = (String, f64, u64, bool);

fn main() {
    let limit = Duration::from_secs(
        std::env::var("CSCE_TIME_LIMIT").ok().and_then(|s| s.parse().ok()).unwrap_or(10),
    );
    let repeats: usize =
        std::env::var("CSCE_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let mut report = BenchReport::new("fig9");
    for (ds, density) in [(presets::dip(), Density::Dense), (presets::roadca(), Density::Sparse)] {
        println!("Fig. 9 — total time vs number of embeddings on {} ({})\n", ds.name, ds.stats());
        run_panel(ds, density, limit, repeats, &mut report);
    }
    report.finish();
    println!(
        "`*` = clamped at the time limit; the cell then shows the partial count\n\
         reached within the budget (higher = faster engine)."
    );
}

fn run_panel(
    ds: Dataset,
    density: Density,
    limit: Duration,
    repeats: usize,
    report: &mut BenchReport,
) {
    let ctx = BenchContext::new(ds.name, ds.graph);
    // DIP uses dense patterns (MIPS-complex-like; sparse trees on a
    // hub-heavy PPI graph explode); the RoadCA panel uses sparse patterns
    // whose runs complete with counts spanning orders of magnitude.
    for size in [8usize, 9] {
        let suites = sample_suite(&ctx.graph, &[size], &[density], repeats, 0xF19);
        let suite = &suites[0];
        if suite.patterns.is_empty() {
            continue;
        }
        // Run everything, then sort rows by CSCE's embedding count
        // (ascending), as the paper arranges its x-axis.
        let mut results: Vec<(u64, Vec<Cell>)> = Vec::new();
        let mut algo_names: Vec<&'static str> = Vec::new();
        for (pi, p) in suite.patterns.iter().enumerate() {
            let rs = run_all(&ctx, p, Variant::EdgeInduced, limit);
            report.record_all(&format!("{}/size{size}/p{pi}", ctx.name), &rs);
            if algo_names.is_empty() {
                algo_names = rs.iter().map(|r| r.name).collect();
            }
            let count = rs[0].count; // CSCE's (possibly partial) count
            results.push((
                count,
                rs.into_iter()
                    .map(|r| (r.name.to_string(), r.seconds, r.count, r.timed_out))
                    .collect(),
            ));
        }
        results.sort_by_key(|(c, _)| *c);
        let mut header = vec!["#embeddings"];
        header.extend(algo_names.iter().copied());
        let mut t = Table::new(&header);
        for (count, cells) in results {
            let mut row = vec![count.to_string()];
            for &name in &algo_names {
                match cells.iter().find(|(n, _, _, _)| n == name) {
                    // Timed-out runs report the partial count reached at
                    // the limit, so relative engine speed stays visible
                    // even when every run clamps.
                    Some((_, _, partial, true)) => {
                        row.push(format!("{:.0}M*", *partial as f64 / 1e6))
                    }
                    Some((_, secs, _, false)) => row.push(format!("{secs:.3}s")),
                    None => row.push("-".into()),
                }
            }
            t.row(row);
        }
        println!("[{} patterns of size {size}]", ctx.name);
        t.print();
        println!();
    }
}
