//! Criterion ablations of the design choices DESIGN.md calls out:
//! SCE candidate caching on/off, factorized counting on/off, CCSR cluster
//! tie-breaking on/off, LDSF on/off, and NEC sharing on/off — each
//! measured on the same workload so speedup attribution is direct.

use criterion::{criterion_group, criterion_main, Criterion};
use csce_core::{Engine, PlannerConfig, RunConfig};
use csce_graph::generate::chung_lu;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};

fn run(engine: &Engine, p: &csce_graph::Graph, planner: PlannerConfig, run: RunConfig) -> u64 {
    engine.run(p, Variant::EdgeInduced, planner, run).count
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let g = chung_lu(3_000, 13_000, 2.5, 30, 0, false, 9);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 33);
    let Some(sp) = sampler.sample(12, Density::Sparse) else { return };
    let p = &sp.pattern;

    group.bench_function("full_csce", |b| {
        b.iter(|| run(&engine, p, PlannerConfig::csce(), RunConfig::default()))
    });
    group.bench_function("no_sce_cache", |b| {
        b.iter(|| {
            run(
                &engine,
                p,
                PlannerConfig::csce(),
                RunConfig { use_sce_cache: false, ..Default::default() },
            )
        })
    });
    group.bench_function("no_factorization", |b| {
        b.iter(|| {
            run(
                &engine,
                p,
                PlannerConfig::csce(),
                RunConfig { factorize: false, ..Default::default() },
            )
        })
    });
    group.bench_function("no_cluster_tiebreak_no_ldsf (plain RI plan)", |b| {
        b.iter(|| run(&engine, p, PlannerConfig::ri_only(), RunConfig::default()))
    });
    group.bench_function("cluster_tiebreak_only (no LDSF)", |b| {
        b.iter(|| run(&engine, p, PlannerConfig::ri_cluster(), RunConfig::default()))
    });
    group.bench_function("no_nec", |b| {
        b.iter(|| {
            run(
                &engine,
                p,
                PlannerConfig { nec: false, ..PlannerConfig::csce() },
                RunConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
