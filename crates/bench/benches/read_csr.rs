//! Criterion micro-bench: Algorithm 1 (`ReadCSR`) — cluster selection +
//! decompression per pattern and variant, the online read stage whose
//! overhead Fig. 11 studies.

use criterion::{criterion_group, criterion_main, Criterion};
use csce_ccsr::{build_ccsr, read_csr};
use csce_graph::generate::chung_lu;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_csr");
    for labels in [20u32, 200] {
        let g = chung_lu(10_000, 44_000, 2.6, labels, 0, false, 7);
        let gc = build_ccsr(&g).unwrap();
        let mut sampler = PatternSampler::new(&g, 11);
        for size in [8usize, 32] {
            let Some(sp) = sampler.sample(size, Density::Sparse) else { continue };
            for variant in [Variant::EdgeInduced, Variant::VertexInduced] {
                group.bench_function(format!("labels{labels}_size{size}_{}", variant.tag()), |b| {
                    b.iter(|| read_csr(std::hint::black_box(&gc), &sp.pattern, variant))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_read);
criterion_main!(benches);
