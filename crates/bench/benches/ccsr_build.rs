//! Criterion micro-bench: offline CCSR construction (clustering +
//! compression) and persistence, across graph shapes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csce_ccsr::{build_ccsr, persist};
use csce_graph::generate::{chung_lu, road_grid};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccsr_build");
    let power_law = chung_lu(5_000, 22_000, 2.5, 20, 0, false, 1);
    group.bench_function("power_law_22k_edges_20_labels", |b| {
        b.iter(|| build_ccsr(std::hint::black_box(&power_law)))
    });
    let unlabeled = road_grid(80, 80, 0.7, 2);
    group.bench_function("road_9k_edges_unlabeled", |b| {
        b.iter(|| build_ccsr(std::hint::black_box(&unlabeled)))
    });
    let many_labels = chung_lu(5_000, 22_000, 2.5, 500, 0, false, 3);
    group.bench_function("power_law_22k_edges_500_labels", |b| {
        b.iter(|| build_ccsr(std::hint::black_box(&many_labels)))
    });
    group.finish();
}

fn bench_persist(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccsr_persist");
    let g = chung_lu(5_000, 22_000, 2.5, 20, 0, false, 1);
    let gc = build_ccsr(&g).unwrap();
    group.bench_function("encode", |b| b.iter(|| persist::to_bytes(std::hint::black_box(&gc))));
    let bytes = persist::to_bytes(&gc).unwrap();
    group.bench_function("decode", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| persist::from_bytes(&bytes).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_persist);
criterion_main!(benches);
