//! Criterion micro-bench: the sorted-set kernels every candidate
//! computation runs on — merge vs galloping intersection, subtraction,
//! and CSR row lookup vs adjacency-list binary search (the §IV
//! data-structure comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use csce_ccsr::Csr;
use csce_graph::util::{intersect_sorted, subtract_sorted};

fn make_sorted(n: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..n as u32).map(|i| i * stride + offset).collect()
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    let a = make_sorted(1_000, 7, 0);
    let b = make_sorted(1_000, 11, 3);
    group.bench_function("balanced_1k_x_1k", |bench| {
        let mut out = Vec::new();
        bench
            .iter(|| intersect_sorted(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
    });
    let small = make_sorted(32, 997, 5);
    let large = make_sorted(100_000, 1, 0);
    group.bench_function("galloping_32_x_100k", |bench| {
        let mut out = Vec::new();
        bench.iter(|| {
            intersect_sorted(std::hint::black_box(&small), std::hint::black_box(&large), &mut out)
        })
    });
    group.bench_function("subtract_1k_minus_1k", |bench| {
        bench.iter(|| {
            let mut x = a.clone();
            subtract_sorted(&mut x, std::hint::black_box(&b));
            x
        })
    });
    group.finish();
}

fn bench_row_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_lookup");
    // One CSR over 100k vertices with ~500k arcs.
    let pairs: Vec<(u32, u32)> =
        (0..500_000u32).map(|i| (i % 100_000, i.wrapping_mul(2654435761) % 100_000)).collect();
    let csr = Csr::from_pairs(100_000, pairs).unwrap();
    group.bench_function("csr_row_access_constant_time", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in (0..100_000u32).step_by(97) {
                acc += csr.row(std::hint::black_box(v)).len();
            }
            acc
        })
    });
    group.bench_function("csr_contains_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for v in (0..100_000u32).step_by(97) {
                if csr.contains(v, std::hint::black_box(v / 2)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_row_lookup);
criterion_main!(benches);
