//! Criterion micro-bench: end-to-end matching (read + plan + count) per
//! variant on a labeled power-law graph — the workload behind Fig. 6.

use criterion::{criterion_group, criterion_main, Criterion};
use csce_core::{Engine, PlannerConfig, RunConfig};
use csce_graph::generate::chung_lu;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    let g = chung_lu(3_000, 13_000, 2.5, 30, 0, false, 9);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 21);
    for (size, density) in [(8usize, Density::Sparse), (8, Density::Dense), (16, Density::Sparse)] {
        let Some(sp) = sampler.sample(size, density) else { continue };
        for variant in Variant::ALL {
            group.bench_function(format!("{}{}_{}", density.letter(), size, variant.tag()), |b| {
                b.iter(|| {
                    engine.run(
                        std::hint::black_box(&sp.pattern),
                        variant,
                        PlannerConfig::csce(),
                        RunConfig::default(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
