//! Criterion micro-bench: plan generation (GCF + DAG + descendant sizes +
//! LDSF + NEC) per pattern size and variant — the Fig. 10 hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use csce_ccsr::{build_ccsr, read_csr};
use csce_core::{Catalog, Planner, PlannerConfig};
use csce_graph::generate::chung_lu;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Variant};

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.sample_size(20);
    let g = chung_lu(10_000, 44_000, 2.6, 50, 0, false, 5);
    let gc = build_ccsr(&g).unwrap();
    let mut sampler = PatternSampler::new(&g, 13);
    for size in [8usize, 64, 256] {
        let Some(sp) = sampler.sample(size, Density::Sparse) else { continue };
        for variant in Variant::ALL {
            let star = read_csr(&gc, &sp.pattern, variant);
            let catalog = Catalog::new(&sp.pattern, &star);
            group.bench_function(format!("size{size}_{}", variant.tag()), |b| {
                b.iter(|| Planner::new(PlannerConfig::csce()).plan(&catalog, variant))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
