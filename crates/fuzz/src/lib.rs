//! `csce-fuzz`: seeded differential testing for the CSCE engine.
//!
//! The harness generates random `(data graph, pattern)` cases
//! ([`case::generate`]), sweeps every match variant through the full
//! engine configuration matrix, the baselines and the brute-force oracle
//! ([`referee::sweep`]), stops at the first divergence, minimizes it
//! ([`shrink::shrink_case`]) and packages the result as a replayable
//! `.repro` file ([`repro::Repro`]) whose graphs are re-validated by the
//! `csce-analyze` checkers before being reported. The `csce fuzz` CLI
//! subcommand is a thin wrapper over [`run_fuzz`].

pub mod case;
pub mod referee;
pub mod repro;
pub mod shrink;

use csce_analyze::{plan_check, Validate, ValidationReport};
use csce_core::Engine;
use referee::{sweep, EngineUnderTest, Referee, SweepOpts, SweepStats};
use repro::Repro;
use std::time::Duration;

/// Parameters of one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of cases to generate and sweep.
    pub runs: u64,
    /// Master seed; the whole run is a pure function of this.
    pub seed: u64,
    /// Thread counts of the engine matrix.
    pub thread_counts: Vec<usize>,
    /// Per-baseline probe budget.
    pub baseline_time_limit: Option<Duration>,
    /// Probe the baselines (disable for engine-only self-consistency
    /// sweeps).
    pub check_baselines: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            runs: 200,
            seed: 42,
            thread_counts: vec![1, 4],
            baseline_time_limit: Some(Duration::from_secs(2)),
            check_baselines: true,
        }
    }
}

/// A caught, shrunk and validated divergence.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Flavor description of the originating case.
    pub descr: String,
    /// The minimized repro, ready to write to disk.
    pub repro: Repro,
    /// `csce-analyze` validation of the shrunk graphs (and plan, for
    /// engine referees) — a repro over corrupt structures would point at
    /// the shrinker, not the engine.
    pub validation: ValidationReport,
}

/// What a fuzzing run did and found.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    pub cases_run: u64,
    pub stats: SweepStats,
    /// The first divergence, if any.
    pub failure: Option<FuzzFailure>,
}

/// Run the harness: generate cases, sweep referees, stop on the first
/// divergence, shrink and validate it. `log` receives one progress line
/// per phase change (suitable for stderr).
pub fn run_fuzz(
    config: &FuzzConfig,
    engine: &dyn EngineUnderTest,
    log: &mut dyn FnMut(&str),
) -> FuzzOutcome {
    let opts = SweepOpts {
        thread_counts: config.thread_counts.clone(),
        baseline_time_limit: config.baseline_time_limit,
        check_baselines: config.check_baselines,
    };
    let mut stats = SweepStats::default();
    for index in 0..config.runs {
        let case = case::generate(config.seed, index);
        if index > 0 && index % 50 == 0 {
            log(&format!("case {index}/{}", config.runs));
        }
        let Some(div) = sweep(&case.data, &case.pattern, engine, &opts, &mut stats) else {
            continue;
        };
        log(&format!(
            "divergence at case {index} [{}]: variant {:?}, {} reported {} (oracle: {})",
            case.descr,
            div.variant,
            div.referee.label(),
            div.observed,
            div.expected
        ));
        log("shrinking...");
        let (sg, sp) = shrink::shrink_case(
            &case.data,
            &case.pattern,
            div.variant,
            &div.referee,
            engine,
            config.baseline_time_limit,
        );
        let (expected, observed) =
            referee::probe(&sg, &sp, div.variant, &div.referee, engine, config.baseline_time_limit);
        log(&format!(
            "shrunk to data n={} m={}, pattern n={} m={}",
            sg.n(),
            sg.m(),
            sp.n(),
            sp.m()
        ));
        let mut validation = sg.validate();
        validation.merge(sp.validate());
        if let Referee::Engine(cfg) = &div.referee {
            let plan = Engine::build(&sg).plan(&sp, div.variant, cfg.planner.planner_config());
            validation.merge(plan_check::validate_plan(&sp, &plan));
        }
        let repro = Repro {
            seed: config.seed,
            case: index,
            variant: div.variant,
            referee: div.referee,
            expected,
            observed,
            data: sg,
            pattern: sp,
        };
        return FuzzOutcome {
            cases_run: index + 1,
            stats,
            failure: Some(FuzzFailure { descr: case.descr, repro, validation }),
        };
    }
    FuzzOutcome { cases_run: config.runs, stats, failure: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee::{InjectedBugEngine, RealEngine};

    #[test]
    fn clean_run_has_no_failure() {
        let config = FuzzConfig { runs: 10, seed: 1, ..FuzzConfig::default() };
        let outcome = run_fuzz(&config, &RealEngine, &mut |_| {});
        assert!(outcome.failure.is_none(), "unexpected failure: {:?}", outcome.failure);
        assert_eq!(outcome.cases_run, 10);
        assert!(outcome.stats.engine_runs >= 10 * 3);
    }

    #[test]
    fn injected_bug_is_caught_shrunk_and_validated() {
        let config =
            FuzzConfig { runs: 64, seed: 42, check_baselines: false, ..FuzzConfig::default() };
        let outcome = run_fuzz(&config, &InjectedBugEngine, &mut |_| {});
        let failure = outcome.failure.expect("sabotaged engine must be caught");
        assert!(failure.repro.data.n() <= 8, "repro too large: {}", failure.repro.data.n());
        assert!(
            referee::diverges(failure.repro.expected, &failure.repro.observed),
            "recorded repro must diverge"
        );
        assert!(failure.validation.is_ok(), "shrunk repro failed validation");
        let text = failure.repro.to_text().expect("serialize");
        let back = Repro::parse(&text).expect("round trip");
        let report = repro::replay(&back, &InjectedBugEngine);
        assert!(report.reproduces, "replay must reproduce against the buggy engine");
        let fixed = repro::replay(&back, &RealEngine);
        assert!(!fixed.reproduces, "real engine must pass the repro");
    }
}
