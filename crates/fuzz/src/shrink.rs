//! Greedy repro minimization.
//!
//! Given a diverging `(data, pattern, variant, referee)` the shrinker
//! repeatedly tries structure-removing edits — drop a data vertex, drop a
//! data edge, drop a pattern vertex, drop a pattern edge — and keeps any
//! edit after which the same referee still disagrees with the oracle.
//! Edits run to a fixpoint under a bounded probe budget, so shrinking
//! always terminates even on adversarial cases.

use crate::referee::{diverges, probe, EngineUnderTest, Referee};
use csce_graph::{Graph, GraphBuilder, Variant, VertexId};
use std::time::Duration;

/// Hard cap on oracle+referee probes during one shrink, so a slow case
/// cannot stall the harness.
const PROBE_BUDGET: u32 = 20_000;

/// Convert an index into a [`VertexId`] without a lossy cast; graphs in
/// this harness are far below `u32::MAX` vertices.
fn vid(i: usize) -> VertexId {
    VertexId::try_from(i).unwrap_or(VertexId::MAX)
}

/// Rebuild `g` without vertex `drop`, remapping ids downward. Returns
/// `None` when the result would be empty.
fn without_vertex(g: &Graph, drop: VertexId) -> Option<Graph> {
    if g.n() <= 1 {
        return None;
    }
    let mut b = GraphBuilder::with_capacity(g.n() - 1, g.m());
    for v in 0..g.n() {
        let v = vid(v);
        if v != drop {
            b.add_vertex(g.label(v));
        }
    }
    let remap = |v: VertexId| if v > drop { v - 1 } else { v };
    for e in g.edges() {
        if e.src == drop || e.dst == drop {
            continue;
        }
        let (s, d) = (remap(e.src), remap(e.dst));
        let r = if e.directed {
            b.add_edge(s, d, e.label)
        } else {
            b.add_undirected_edge(s, d, e.label)
        };
        if r.is_err() {
            return None;
        }
    }
    Some(b.build())
}

/// Rebuild `g` without the edge at index `drop` of its canonical edge
/// list.
fn without_edge(g: &Graph, drop: usize) -> Option<Graph> {
    let mut b = GraphBuilder::with_capacity(g.n(), g.m().saturating_sub(1));
    for v in 0..g.n() {
        b.add_vertex(g.label(vid(v)));
    }
    for (i, e) in g.edges().iter().enumerate() {
        if i == drop {
            continue;
        }
        let r = if e.directed {
            b.add_edge(e.src, e.dst, e.label)
        } else {
            b.add_undirected_edge(e.src, e.dst, e.label)
        };
        if r.is_err() {
            return None;
        }
    }
    Some(b.build())
}

/// Patterns must stay connected with at least two vertices for the
/// planner; data graphs only need to be non-empty.
fn pattern_ok(p: &Graph) -> bool {
    p.n() >= 2 && p.is_connected()
}

struct Shrinker<'a> {
    variant: Variant,
    referee: &'a Referee,
    engine: &'a dyn EngineUnderTest,
    baseline_time_limit: Option<Duration>,
    probes: u32,
}

impl Shrinker<'_> {
    /// Whether the candidate `(data, pattern)` still reproduces the
    /// divergence, charged against the probe budget.
    fn still_fails(&mut self, g: &Graph, p: &Graph) -> bool {
        if self.probes >= PROBE_BUDGET {
            return false;
        }
        self.probes += 1;
        let (expected, observed) =
            probe(g, p, self.variant, self.referee, self.engine, self.baseline_time_limit);
        diverges(expected, &observed)
    }

    /// One pass of every edit family; returns the reduced pair and
    /// whether any edit stuck.
    fn pass(&mut self, mut g: Graph, mut p: Graph) -> (Graph, Graph, bool) {
        let mut changed = false;
        // Data vertices, highest id first so remapping never revisits a
        // surviving vertex within the scan.
        let mut v = g.n();
        while v > 0 {
            v -= 1;
            if let Some(cand) = without_vertex(&g, vid(v)) {
                if self.still_fails(&cand, &p) {
                    g = cand;
                    changed = true;
                }
            }
        }
        let mut i = g.m();
        while i > 0 {
            i -= 1;
            if let Some(cand) = without_edge(&g, i) {
                if self.still_fails(&cand, &p) {
                    g = cand;
                    changed = true;
                }
            }
        }
        let mut v = p.n();
        while v > 0 {
            v -= 1;
            if let Some(cand) = without_vertex(&p, vid(v)) {
                if pattern_ok(&cand) && self.still_fails(&g, &cand) {
                    p = cand;
                    changed = true;
                }
            }
        }
        let mut i = p.m();
        while i > 0 {
            i -= 1;
            if let Some(cand) = without_edge(&p, i) {
                if pattern_ok(&cand) && self.still_fails(&g, &cand) {
                    p = cand;
                    changed = true;
                }
            }
        }
        (g, p, changed)
    }
}

/// Greedily minimize a diverging case. The returned pair still diverges
/// for the same `(variant, referee)` (the shrinker only keeps edits that
/// preserve the failure), and is a local minimum under single-element
/// removal unless the probe budget ran out first.
pub fn shrink_case(
    data: &Graph,
    pattern: &Graph,
    variant: Variant,
    referee: &Referee,
    engine: &dyn EngineUnderTest,
    baseline_time_limit: Option<Duration>,
) -> (Graph, Graph) {
    let mut shrinker = Shrinker { variant, referee, engine, baseline_time_limit, probes: 0 };
    let mut g = data.clone();
    let mut p = pattern.clone();
    loop {
        let (ng, np, changed) = shrinker.pass(g, p);
        g = ng;
        p = np;
        if !changed || shrinker.probes >= PROBE_BUDGET {
            return (g, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case;
    use crate::referee::{sweep, InjectedBugEngine, SweepOpts, SweepStats};

    #[test]
    fn vertex_removal_remaps_edges() {
        let case = case::generate(3, 0);
        let g = &case.data;
        let smaller = without_vertex(g, 0).expect("non-trivial graph");
        assert_eq!(smaller.n(), g.n() - 1);
        for e in smaller.edges() {
            assert!((e.src as usize) < smaller.n() && (e.dst as usize) < smaller.n());
        }
    }

    #[test]
    fn edge_removal_keeps_vertices() {
        let case = case::generate(3, 1);
        let g = &case.data;
        let smaller = without_edge(g, 0).expect("at least one edge");
        assert_eq!(smaller.n(), g.n());
        assert_eq!(smaller.m(), g.m() - 1);
    }

    #[test]
    fn injected_bug_shrinks_small() {
        // Find a diverging case for the sabotaged engine, then shrink it.
        let mut found = None;
        let mut stats = SweepStats::default();
        let opts = SweepOpts { check_baselines: false, ..SweepOpts::default() };
        for index in 0..32 {
            let case = case::generate(42, index);
            if let Some(div) =
                sweep(&case.data, &case.pattern, &InjectedBugEngine, &opts, &mut stats)
            {
                found = Some((case, div));
                break;
            }
        }
        let (case, div) = found.expect("injected bug must surface within 32 cases");
        let (g, p) = shrink_case(
            &case.data,
            &case.pattern,
            div.variant,
            &div.referee,
            &InjectedBugEngine,
            None,
        );
        assert!(g.n() <= 8, "shrunk data graph too large: {} vertices", g.n());
        assert!(p.n() >= 2 && p.is_connected());
        let (expected, observed) =
            probe(&g, &p, div.variant, &div.referee, &InjectedBugEngine, None);
        assert!(diverges(expected, &observed), "shrunk case no longer reproduces");
    }
}
