//! The differential referee sweep.
//!
//! For each case the referees are ranked by trust: the brute-force oracle
//! is ground truth; the engine — swept across every planner preset, SCE /
//! factorization toggle and thread count — must match it exactly; each
//! baseline that declares support for the task must match it too (unless
//! its time limit fires, which only skips that probe). The first
//! disagreement is returned as a [`Divergence`] for shrinking.

use csce_baselines::all_baselines;
use csce_core::{Engine, PlannerConfig, RunConfig};
use csce_graph::{oracle_count, Graph, Variant};
use csce_obs::Recorder;
use std::time::Duration;

/// Planner preset of one engine probe (the NEC toggle rides on top of the
/// full preset, so the sweep exercises plans with and without class
/// sharing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannerName {
    /// Full CSCE optimization.
    Csce,
    /// Full CSCE with NEC cache sharing disabled.
    CsceNoNec,
    /// Plain RI heuristics.
    RiOnly,
    /// RI with cluster tie-breaks, no LDSF.
    RiCluster,
}

impl PlannerName {
    /// Every preset, in sweep order.
    pub const ALL: [PlannerName; 4] =
        [PlannerName::Csce, PlannerName::CsceNoNec, PlannerName::RiOnly, PlannerName::RiCluster];

    /// Stable token used in reports and `.repro` files.
    pub fn as_str(self) -> &'static str {
        match self {
            PlannerName::Csce => "csce",
            PlannerName::CsceNoNec => "csce-no-nec",
            PlannerName::RiOnly => "ri",
            PlannerName::RiCluster => "ri+c",
        }
    }

    /// Parse the [`PlannerName::as_str`] token.
    pub fn parse(s: &str) -> Result<PlannerName, String> {
        match s {
            "csce" => Ok(PlannerName::Csce),
            "csce-no-nec" => Ok(PlannerName::CsceNoNec),
            "ri" => Ok(PlannerName::RiOnly),
            "ri+c" => Ok(PlannerName::RiCluster),
            other => Err(format!("unknown planner {other:?}")),
        }
    }

    /// The concrete planner switches of this preset.
    pub fn planner_config(self) -> PlannerConfig {
        match self {
            PlannerName::Csce => PlannerConfig::csce(),
            PlannerName::CsceNoNec => PlannerConfig { nec: false, ..PlannerConfig::csce() },
            PlannerName::RiOnly => PlannerConfig::ri_only(),
            PlannerName::RiCluster => PlannerConfig::ri_cluster(),
        }
    }
}

/// One point of the engine configuration matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    pub planner: PlannerName,
    pub use_sce_cache: bool,
    pub factorize: bool,
    pub threads: usize,
}

impl EngineConfig {
    /// The full sweep: every planner preset × cache toggle × factorization
    /// toggle × thread count.
    pub fn matrix(thread_counts: &[usize]) -> Vec<EngineConfig> {
        let mut out = Vec::new();
        for &threads in thread_counts {
            for planner in PlannerName::ALL {
                for use_sce_cache in [true, false] {
                    for factorize in [true, false] {
                        out.push(EngineConfig { planner, use_sce_cache, factorize, threads });
                    }
                }
            }
        }
        out
    }

    /// The runtime switches of this probe.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            use_sce_cache: self.use_sce_cache,
            factorize: self.factorize,
            ..RunConfig::default()
        }
    }

    /// Report / `.repro` label, e.g.
    /// `engine[planner=csce cache=false factorize=true threads=4]`.
    pub fn label(&self) -> String {
        format!(
            "engine[planner={} cache={} factorize={} threads={}]",
            self.planner.as_str(),
            self.use_sce_cache,
            self.factorize,
            self.threads
        )
    }
}

/// The system whose counts are being checked against the oracle. The
/// production implementation is [`RealEngine`]; tests substitute
/// [`InjectedBugEngine`] to prove the harness catches and shrinks a
/// deliberately wrong engine.
pub trait EngineUnderTest {
    /// Count embeddings of `p` in `g` under `variant` with `config`.
    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        config: &EngineConfig,
    ) -> Result<u64, String>;
}

/// The actual CSCE engine.
pub struct RealEngine;

impl EngineUnderTest for RealEngine {
    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        config: &EngineConfig,
    ) -> Result<u64, String> {
        let engine = Engine::build(g);
        engine
            .run_observed(
                p,
                variant,
                config.planner.planner_config(),
                config.run_config(),
                &Recorder::disabled(),
                config.threads,
                None,
            )
            .map(|out| out.count)
            .map_err(|e| e.to_string())
    }
}

/// A deliberately broken engine: over-counts by one whenever the real
/// edge-induced factorized count is positive. Exists so the harness (and
/// its acceptance test) can demonstrate end-to-end that an engine bug is
/// caught, shrunk and written out as a replayable repro.
pub struct InjectedBugEngine;

impl EngineUnderTest for InjectedBugEngine {
    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        config: &EngineConfig,
    ) -> Result<u64, String> {
        let count = RealEngine.count(g, p, variant, config)?;
        if variant == Variant::EdgeInduced && config.factorize && count > 0 {
            Ok(count + 1)
        } else {
            Ok(count)
        }
    }
}

/// What a referee reported for one probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observed {
    /// A completed count.
    Count(u64),
    /// The probe failed outright (e.g. a worker panic surfaced as
    /// [`csce_core::ExecError`]) — treated as a divergence.
    Error(String),
}

impl std::fmt::Display for Observed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Observed::Count(c) => write!(f, "{c}"),
            Observed::Error(e) => write!(f, "error: {e}"),
        }
    }
}

/// Which referee disagreed with the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Referee {
    /// The engine under one configuration.
    Engine(EngineConfig),
    /// A baseline, by its registry name.
    Baseline(String),
}

impl Referee {
    /// Report label.
    pub fn label(&self) -> String {
        match self {
            Referee::Engine(cfg) => cfg.label(),
            Referee::Baseline(name) => format!("baseline:{name}"),
        }
    }
}

/// A disagreement between the oracle and one referee.
#[derive(Clone, Debug)]
pub struct Divergence {
    pub variant: Variant,
    pub referee: Referee,
    /// The oracle's ground-truth count.
    pub expected: u64,
    /// What the referee reported instead.
    pub observed: Observed,
}

/// Knobs of one sweep.
#[derive(Clone, Debug)]
pub struct SweepOpts {
    /// Thread counts of the engine matrix (the serial `1` plus the
    /// parallel probes).
    pub thread_counts: Vec<usize>,
    /// Per-baseline probe budget; a fired limit skips the probe rather
    /// than reporting its partial count.
    pub baseline_time_limit: Option<Duration>,
    /// Probe the baselines at all.
    pub check_baselines: bool,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            thread_counts: vec![1, 4],
            baseline_time_limit: Some(Duration::from_secs(2)),
            check_baselines: true,
        }
    }
}

/// Work counters of a sweep, accumulated across cases for the final
/// report.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    pub engine_runs: u64,
    pub baseline_runs: u64,
    pub baseline_timeouts: u64,
}

/// Run every referee against the oracle for one case; the first
/// disagreement wins.
pub fn sweep(
    g: &Graph,
    p: &Graph,
    engine: &dyn EngineUnderTest,
    opts: &SweepOpts,
    stats: &mut SweepStats,
) -> Option<Divergence> {
    let matrix = EngineConfig::matrix(&opts.thread_counts);
    for variant in Variant::ALL {
        let expected = oracle_count(g, p, variant);
        for config in &matrix {
            stats.engine_runs += 1;
            let observed = match engine.count(g, p, variant, config) {
                Ok(count) if count == expected => continue,
                Ok(count) => Observed::Count(count),
                Err(e) => Observed::Error(e),
            };
            return Some(Divergence {
                variant,
                referee: Referee::Engine(*config),
                expected,
                observed,
            });
        }
        if opts.check_baselines {
            for baseline in all_baselines() {
                if !baseline.supports(g, p, variant) {
                    continue;
                }
                stats.baseline_runs += 1;
                let result = baseline.count(g, p, variant, opts.baseline_time_limit);
                if result.timed_out {
                    stats.baseline_timeouts += 1;
                    continue;
                }
                if result.count != expected {
                    return Some(Divergence {
                        variant,
                        referee: Referee::Baseline(baseline.name().to_string()),
                        expected,
                        observed: Observed::Count(result.count),
                    });
                }
            }
        }
    }
    None
}

/// Re-run exactly one referee for the shrinker / replayer: the oracle's
/// fresh ground truth plus the referee's report on `(g, p)`.
pub fn probe(
    g: &Graph,
    p: &Graph,
    variant: Variant,
    referee: &Referee,
    engine: &dyn EngineUnderTest,
    baseline_time_limit: Option<Duration>,
) -> (u64, Observed) {
    let expected = oracle_count(g, p, variant);
    let observed = match referee {
        Referee::Engine(config) => match engine.count(g, p, variant, config) {
            Ok(count) => Observed::Count(count),
            Err(e) => Observed::Error(e),
        },
        Referee::Baseline(name) => {
            match all_baselines().into_iter().find(|b| b.name() == name.as_str()) {
                Some(baseline) if baseline.supports(g, p, variant) => {
                    let result = baseline.count(g, p, variant, baseline_time_limit);
                    if result.timed_out {
                        // An inconclusive probe must not count as "still
                        // diverging", so report agreement.
                        Observed::Count(expected)
                    } else {
                        Observed::Count(result.count)
                    }
                }
                // Shrinking may leave the task outside the baseline's
                // capability matrix; that is agreement, not divergence.
                Some(_) => Observed::Count(expected),
                None => Observed::Error(format!("unknown baseline {name:?}")),
            }
        }
    };
    (expected, observed)
}

/// Whether a probe outcome is a divergence.
pub fn diverges(expected: u64, observed: &Observed) -> bool {
    match observed {
        Observed::Count(c) => *c != expected,
        Observed::Error(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case;

    #[test]
    fn matrix_covers_all_toggles() {
        let matrix = EngineConfig::matrix(&[1, 4]);
        assert_eq!(matrix.len(), 4 * 2 * 2 * 2);
        assert!(matrix.iter().any(|c| c.threads == 4 && !c.use_sce_cache && !c.factorize));
        assert!(matrix.iter().any(|c| c.planner == PlannerName::CsceNoNec));
    }

    #[test]
    fn planner_tokens_round_trip() {
        for name in PlannerName::ALL {
            assert_eq!(PlannerName::parse(name.as_str()), Ok(name));
        }
        assert!(PlannerName::parse("nope").is_err());
    }

    #[test]
    fn clean_case_produces_no_divergence() {
        let case = case::generate(11, 3);
        let mut stats = SweepStats::default();
        let div = sweep(&case.data, &case.pattern, &RealEngine, &SweepOpts::default(), &mut stats);
        assert!(div.is_none(), "unexpected divergence: {div:?}");
        assert!(stats.engine_runs > 0);
    }

    #[test]
    fn injected_bug_is_detected() {
        let case = case::generate(11, 3);
        let mut stats = SweepStats::default();
        let div =
            sweep(&case.data, &case.pattern, &InjectedBugEngine, &SweepOpts::default(), &mut stats)
                .expect("sabotaged engine must diverge");
        assert_eq!(div.variant, Variant::EdgeInduced);
        assert!(matches!(div.referee, Referee::Engine(_)));
        assert!(diverges(div.expected, &div.observed));
    }
}
