//! The `.repro` file format and replayer.
//!
//! A repro is a self-contained, human-readable record of one shrunk
//! divergence: the provenance (seed and case index), the exact probe that
//! disagreed (variant, referee, every engine toggle), what the oracle and
//! the referee reported, and the minimized data graph and pattern embedded
//! in the standard CSCE text format. `csce fuzz --replay FILE` parses one
//! of these, re-runs the single probe and reports whether the divergence
//! still reproduces.
//!
//! Format (version 1):
//!
//! ```text
//! csce-fuzz repro v1
//! seed 42
//! case 17
//! variant e
//! referee engine
//! planner csce
//! cache true
//! factorize true
//! threads 4
//! expected 12
//! got 13
//! begin data
//! t 5 6
//! ...
//! end data
//! begin pattern
//! ...
//! end pattern
//! ```
//!
//! A baseline referee replaces the `planner`/`cache`/`factorize`/`threads`
//! block with `referee baseline <NAME>`, and an errored probe replaces
//! `got <count>` with `error <message>`.

use crate::referee::{
    diverges, probe, EngineConfig, EngineUnderTest, Observed, PlannerName, Referee,
};
use csce_analyze::{Validate, ValidationReport};
use csce_graph::io::{read_csce, write_csce};
use csce_graph::{Graph, Variant};
use std::io::BufReader;
use std::path::Path;

/// A parsed (or freshly minted) repro file.
#[derive(Clone, Debug)]
pub struct Repro {
    /// Master seed of the originating fuzz run.
    pub seed: u64,
    /// Case index within that run.
    pub case: u64,
    pub variant: Variant,
    pub referee: Referee,
    /// Oracle count at mint time.
    pub expected: u64,
    /// Referee report at mint time.
    pub observed: Observed,
    pub data: Graph,
    pub pattern: Graph,
}

fn variant_token(v: Variant) -> &'static str {
    match v {
        Variant::EdgeInduced => "e",
        Variant::VertexInduced => "v",
        Variant::Homomorphic => "h",
    }
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    match s {
        "e" => Ok(Variant::EdgeInduced),
        "v" => Ok(Variant::VertexInduced),
        "h" => Ok(Variant::Homomorphic),
        other => Err(format!("unknown variant {other:?}")),
    }
}

fn graph_block(g: &Graph) -> Result<String, String> {
    let mut buf = Vec::new();
    write_csce(g, &mut buf).map_err(|e| e.to_string())?;
    String::from_utf8(buf).map_err(|e| e.to_string())
}

impl Repro {
    /// Serialize to the v1 text format.
    pub fn to_text(&self) -> Result<String, String> {
        let mut out = String::new();
        out.push_str("csce-fuzz repro v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("case {}\n", self.case));
        out.push_str(&format!("variant {}\n", variant_token(self.variant)));
        match &self.referee {
            Referee::Engine(cfg) => {
                out.push_str("referee engine\n");
                out.push_str(&format!("planner {}\n", cfg.planner.as_str()));
                out.push_str(&format!("cache {}\n", cfg.use_sce_cache));
                out.push_str(&format!("factorize {}\n", cfg.factorize));
                out.push_str(&format!("threads {}\n", cfg.threads));
            }
            Referee::Baseline(name) => {
                out.push_str(&format!("referee baseline {name}\n"));
            }
        }
        out.push_str(&format!("expected {}\n", self.expected));
        match &self.observed {
            Observed::Count(c) => out.push_str(&format!("got {c}\n")),
            Observed::Error(e) => {
                out.push_str(&format!("error {}\n", e.replace('\n', " ")));
            }
        }
        out.push_str("begin data\n");
        out.push_str(&graph_block(&self.data)?);
        out.push_str("end data\n");
        out.push_str("begin pattern\n");
        out.push_str(&graph_block(&self.pattern)?);
        out.push_str("end pattern\n");
        Ok(out)
    }

    /// Parse the v1 text format.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut lines = text.lines();
        if lines.next() != Some("csce-fuzz repro v1") {
            return Err("not a csce-fuzz repro (missing `csce-fuzz repro v1` header)".to_string());
        }
        let mut seed = None;
        let mut case = None;
        let mut variant = None;
        let mut referee_kind: Option<String> = None;
        let mut planner = None;
        let mut cache = None;
        let mut factorize = None;
        let mut threads = None;
        let mut expected = None;
        let mut observed = None;
        let mut data = None;
        let mut pattern = None;
        while let Some(line) = lines.next() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = match line.split_once(' ') {
                Some((k, r)) => (k, r),
                None => (line, ""),
            };
            match key {
                "seed" => seed = Some(parse_num::<u64>("seed", rest)?),
                "case" => case = Some(parse_num::<u64>("case", rest)?),
                "variant" => variant = Some(parse_variant(rest)?),
                "referee" => referee_kind = Some(rest.to_string()),
                "planner" => planner = Some(PlannerName::parse(rest)?),
                "cache" => cache = Some(parse_bool("cache", rest)?),
                "factorize" => factorize = Some(parse_bool("factorize", rest)?),
                "threads" => threads = Some(parse_num::<usize>("threads", rest)?),
                "expected" => expected = Some(parse_num::<u64>("expected", rest)?),
                "got" => observed = Some(Observed::Count(parse_num::<u64>("got", rest)?)),
                "error" => observed = Some(Observed::Error(rest.to_string())),
                "begin" => {
                    let block = read_block(&mut lines, rest)?;
                    match rest {
                        "data" => data = Some(block),
                        "pattern" => pattern = Some(block),
                        other => return Err(format!("unknown block {other:?}")),
                    }
                }
                other => return Err(format!("unknown repro key {other:?}")),
            }
        }
        let referee = match referee_kind.as_deref() {
            Some("engine") => Referee::Engine(EngineConfig {
                planner: planner.ok_or("engine referee missing `planner`")?,
                use_sce_cache: cache.ok_or("engine referee missing `cache`")?,
                factorize: factorize.ok_or("engine referee missing `factorize`")?,
                threads: threads.ok_or("engine referee missing `threads`")?,
            }),
            Some(rest) => match rest.strip_prefix("baseline ") {
                Some(name) if !name.is_empty() => Referee::Baseline(name.to_string()),
                _ => return Err(format!("unknown referee {rest:?}")),
            },
            None => return Err("missing `referee` line".to_string()),
        };
        Ok(Repro {
            seed: seed.ok_or("missing `seed` line")?,
            case: case.ok_or("missing `case` line")?,
            variant: variant.ok_or("missing `variant` line")?,
            referee,
            expected: expected.ok_or("missing `expected` line")?,
            observed: observed.ok_or("missing `got`/`error` line")?,
            data: data.ok_or("missing data graph block")?,
            pattern: pattern.ok_or("missing pattern block")?,
        })
    }

    /// Read and parse a repro file from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Repro, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Repro::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Serialize and write to disk.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let text = self.to_text()?;
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, s: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("invalid `{key}` value {s:?}"))
}

fn parse_bool(key: &str, s: &str) -> Result<bool, String> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("invalid `{key}` value {other:?}")),
    }
}

fn read_block<'a>(lines: &mut impl Iterator<Item = &'a str>, name: &str) -> Result<Graph, String> {
    let end = format!("end {name}");
    let mut body = String::new();
    for line in lines {
        if line.trim_end() == end {
            let reader = BufReader::new(body.as_bytes());
            return read_csce(reader).map_err(|e| format!("in {name} block: {e}"));
        }
        body.push_str(line);
        body.push('\n');
    }
    Err(format!("unterminated {name} block (missing `{end}`)"))
}

/// Outcome of replaying a repro's single probe against the current build.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Fresh oracle count.
    pub expected_now: u64,
    /// Fresh referee report.
    pub observed_now: Observed,
    /// Whether the divergence still reproduces.
    pub reproduces: bool,
    /// Structural validation of the embedded graphs.
    pub validation: ValidationReport,
}

/// Re-run the repro's probe and re-validate its graphs.
pub fn replay(repro: &Repro, engine: &dyn EngineUnderTest) -> ReplayReport {
    let mut validation = repro.data.validate();
    validation.merge(repro.pattern.validate());
    let (expected_now, observed_now) =
        probe(&repro.data, &repro.pattern, repro.variant, &repro.referee, engine, None);
    let reproduces = diverges(expected_now, &observed_now);
    ReplayReport { expected_now, observed_now, reproduces, validation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case;
    use crate::referee::{InjectedBugEngine, RealEngine};

    fn sample_repro() -> Repro {
        let case = case::generate(5, 2);
        Repro {
            seed: 5,
            case: 2,
            variant: Variant::EdgeInduced,
            referee: Referee::Engine(EngineConfig {
                planner: PlannerName::Csce,
                use_sce_cache: true,
                factorize: true,
                threads: 4,
            }),
            expected: 12,
            observed: Observed::Count(13),
            data: case.data,
            pattern: case.pattern,
        }
    }

    #[test]
    fn text_round_trip() {
        let repro = sample_repro();
        let text = repro.to_text().expect("serialize");
        let back = Repro::parse(&text).expect("parse");
        assert_eq!(back.seed, repro.seed);
        assert_eq!(back.case, repro.case);
        assert_eq!(back.variant, repro.variant);
        assert_eq!(back.referee, repro.referee);
        assert_eq!(back.expected, repro.expected);
        assert_eq!(back.observed, repro.observed);
        assert_eq!(back.data.edges(), repro.data.edges());
        assert_eq!(back.pattern.edges(), repro.pattern.edges());
    }

    #[test]
    fn baseline_referee_round_trips() {
        let mut repro = sample_repro();
        repro.referee = Referee::Baseline("VF".to_string());
        repro.observed = Observed::Error("worker hung".to_string());
        let text = repro.to_text().expect("serialize");
        let back = Repro::parse(&text).expect("parse");
        assert_eq!(back.referee, repro.referee);
        assert_eq!(back.observed, repro.observed);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Repro::parse("").is_err());
        assert!(Repro::parse("csce-fuzz repro v1\nseed x\n").is_err());
        assert!(Repro::parse("csce-fuzz repro v1\nseed 1\nbegin data\nt 1 0\nv 0 -\n").is_err());
        let repro = sample_repro();
        let text = repro.to_text().expect("serialize");
        let truncated = &text[..text.len() / 2];
        assert!(Repro::parse(truncated).is_err());
    }

    #[test]
    fn replay_flags_a_live_bug_and_clears_a_fixed_one() {
        // Mint a repro against the sabotaged engine; it must reproduce
        // there and vanish on the real engine ("the bug got fixed").
        let case = case::generate(42, 0);
        let expected = csce_graph::oracle_count(&case.data, &case.pattern, Variant::EdgeInduced);
        let repro = Repro {
            seed: 42,
            case: 0,
            variant: Variant::EdgeInduced,
            referee: Referee::Engine(EngineConfig {
                planner: PlannerName::Csce,
                use_sce_cache: true,
                factorize: true,
                threads: 1,
            }),
            expected,
            observed: Observed::Count(expected + 1),
            data: case.data,
            pattern: case.pattern,
        };
        if expected > 0 {
            let live = replay(&repro, &InjectedBugEngine);
            assert!(live.reproduces, "sabotaged engine must still diverge");
        }
        let fixed = replay(&repro, &RealEngine);
        assert!(!fixed.reproduces, "real engine must agree with the oracle");
        assert!(fixed.validation.is_ok());
    }
}
