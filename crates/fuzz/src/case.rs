//! Seeded random test-case generation.
//!
//! Each case is a `(data graph, pattern)` pair derived deterministically
//! from `(master seed, case index)`: the data graph comes from the
//! workspace generators (Erdős–Rényi in every label/direction flavor,
//! Barabási–Albert for a heavy-tailed undirected flavor), the pattern is
//! lifted from the data graph with [`PatternSampler`] so at least one
//! embedding exists. Generation never fails: when a flavor refuses to
//! yield a pattern (e.g. a dense pattern from a tree-like region), the
//! case falls through to the next derived flavor, and ultimately to a
//! tiny deterministic path-plus-edge case.

use csce_graph::generate::{barabasi_albert, erdos_renyi};
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Graph, GraphBuilder, NO_LABEL};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// One generated differential-test case.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Index within the run (the second half of the derivation key).
    pub index: u64,
    /// The data graph.
    pub data: Graph,
    /// The sampled pattern (connected, ≥ 2 vertices).
    pub pattern: Graph,
    /// Human-readable flavor description for reports.
    pub descr: String,
}

/// SplitMix64 finalizer: decorrelates `(seed, index)` pairs so consecutive
/// case indexes explore unrelated flavors.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically generate case `index` of the run keyed by
/// `master_seed`. Same inputs, same case — byte for byte.
pub fn generate(master_seed: u64, index: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(mix(master_seed, index));
    for _attempt in 0..64u32 {
        let directed = rng.gen_bool(0.4);
        let vertex_labels = [0u32, 2, 3, 4][rng.gen_range(0..4usize)];
        let edge_labels = [0u32, 2, 3][rng.gen_range(0..3usize)];
        let n: usize = rng.gen_range(8..=16);
        let m: usize = rng.gen_range(n..=2 * n);
        let gen_seed = rng.next_u64();
        let (data, flavor) = if !directed && rng.gen_bool(0.25) {
            (barabasi_albert(n, 2, vertex_labels, gen_seed), "ba")
        } else {
            (erdos_renyi(n, m, vertex_labels, edge_labels, directed, gen_seed), "er")
        };
        let size: usize = rng.gen_range(3..=5);
        let density = if rng.gen_bool(0.5) { Density::Sparse } else { Density::Dense };
        let mut sampler = PatternSampler::new(&data, rng.next_u64());
        let Some(sp) = sampler.sample(size, density) else { continue };
        let descr = format!(
            "{flavor}(n={n} m={} vl={vertex_labels} el={edge_labels} dir={directed}) \
             pattern(n={size} {density:?})",
            data.m()
        );
        return FuzzCase { index, data, pattern: sp.pattern, descr };
    }
    // Deterministic last resort: a labeled path with a single-edge pattern.
    fallback_case(index)
}

/// The guaranteed-to-exist case used when every sampled flavor fails.
fn fallback_case(index: u64) -> FuzzCase {
    let mut b = GraphBuilder::with_capacity(4, 3);
    for label in [0u32, 1, 0, 1] {
        b.add_vertex(label);
    }
    for (s, d) in [(0u32, 1u32), (1, 2), (2, 3)] {
        let _ = b.add_undirected_edge(s, d, NO_LABEL);
    }
    let data = b.build();
    let mut pb = GraphBuilder::with_capacity(2, 1);
    pb.add_vertex(0);
    pb.add_vertex(1);
    let _ = pb.add_undirected_edge(0, 1, NO_LABEL);
    FuzzCase { index, data, pattern: pb.build(), descr: "fallback path".to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for index in 0..20 {
            let a = generate(42, index);
            let b = generate(42, index);
            assert_eq!(a.data.edges(), b.data.edges(), "case {index}");
            assert_eq!(a.data.labels(), b.data.labels(), "case {index}");
            assert_eq!(a.pattern.edges(), b.pattern.edges(), "case {index}");
            assert_eq!(a.descr, b.descr, "case {index}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = generate(1, 0);
        let b = generate(2, 0);
        assert!(a.data.edges() != b.data.edges() || a.pattern.edges() != b.pattern.edges());
    }

    #[test]
    fn cases_are_wellformed() {
        let mut flavors = std::collections::HashSet::new();
        for index in 0..40 {
            let case = generate(7, index);
            assert!(case.pattern.n() >= 2);
            assert!(case.pattern.is_connected(), "case {index}: {}", case.descr);
            assert!(case.data.n() >= case.pattern.n());
            flavors.insert((case.data.has_directed_edges(), case.data.is_heterogeneous()));
        }
        assert!(flavors.len() >= 3, "flavor sweep too narrow: {flavors:?}");
    }

    #[test]
    fn fallback_is_matchable() {
        let case = fallback_case(9);
        assert_eq!(case.index, 9);
        assert!(csce_graph::oracle_count(&case.data, &case.pattern, Default::default()) > 0);
    }
}
