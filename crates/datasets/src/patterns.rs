//! Query workloads: pattern suites per data graph, named like the
//! paper's (`D8` = dense 8-vertex, `S32` = sparse 32-vertex), sampled
//! from the data graph so every pattern has at least one embedding
//! (§VII "Patterns" follows RapidMatch / VEQ / GuP in doing exactly
//! this). Each configuration averages over several sampled patterns —
//! the paper uses 10 per configuration.

use csce_graph::pattern::dedup_patterns;
use csce_graph::sample::PatternSampler;
use csce_graph::{Density, Graph};

/// A named set of same-configuration patterns.
pub struct Workload {
    /// `D<size>` or `S<size>`.
    pub name: String,
    pub size: usize,
    pub density: Density,
    pub patterns: Vec<Graph>,
}

/// Sample `per_config` patterns for each `(size, density)` configuration.
/// Configurations the data graph cannot yield (e.g. dense patterns from a
/// road network) come back with however many were found — possibly none —
/// mirroring the paper's "patterns of certain sizes do not appear".
pub fn sample_suite(
    g: &Graph,
    sizes: &[usize],
    densities: &[Density],
    per_config: usize,
    seed: u64,
) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut sampler = PatternSampler::new(g, seed);
    for &size in sizes {
        for &density in densities {
            // Over-sample, then keep distinct patterns (1-WL dedup) so a
            // workload is not several copies of one popular shape.
            let sampled: Vec<Graph> = sampler
                .sample_many(per_config * 2, size, density)
                .into_iter()
                .map(|s| s.pattern)
                .collect();
            let mut patterns = dedup_patterns(sampled, 3);
            patterns.truncate(per_config);
            out.push(Workload {
                name: format!("{}{}", density.letter(), size),
                size,
                density,
                patterns,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use csce_graph::classify_density;

    #[test]
    fn suite_names_and_contents() {
        let ds = presets::dip();
        let suite = sample_suite(&ds.graph, &[8, 9], &[Density::Sparse], 3, 7);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name, "S8");
        assert_eq!(suite[1].name, "S9");
        for w in &suite {
            assert!(!w.patterns.is_empty(), "{} yielded patterns", w.name);
            for p in &w.patterns {
                assert_eq!(p.n(), w.size);
                assert_eq!(classify_density(p), w.density);
                assert!(p.is_connected());
            }
        }
    }

    #[test]
    fn dense_patterns_from_dense_graphs() {
        let ds = presets::human();
        let suite = sample_suite(&ds.graph, &[8], &[Density::Dense, Density::Sparse], 2, 3);
        assert_eq!(suite[0].name, "D8");
        assert!(!suite[0].patterns.is_empty());
        assert!(!suite[1].patterns.is_empty());
    }

    #[test]
    fn road_networks_do_not_yield_dense_patterns() {
        let ds = presets::roadca();
        let suite = sample_suite(&ds.graph, &[16], &[Density::Dense], 1, 3);
        // Overwhelmingly unlikely: a 16-vertex region of a degree-<=4
        // lattice with average degree > 2 requires most lattice cells;
        // accept either empty or tiny.
        assert!(suite[0].patterns.len() <= 1);
    }

    #[test]
    fn deterministic_suites() {
        let ds = presets::yeast();
        let a = sample_suite(&ds.graph, &[8], &[Density::Sparse], 2, 9);
        let b = sample_suite(&ds.graph, &[8], &[Density::Sparse], 2, 9);
        assert_eq!(a[0].patterns.len(), b[0].patterns.len());
        for (pa, pb) in a[0].patterns.iter().zip(&b[0].patterns) {
            assert_eq!(pa.edges(), pb.edges());
        }
    }
}
