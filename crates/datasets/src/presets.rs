//! The nine Table IV data graphs, scaled to laptop size.
//!
//! Each preset documents the substitution: the paper's statistics → the
//! generator and parameters we use → which shape properties carry the
//! relevant behaviour. Vertex/edge counts are roughly 1/100–1/1000 of the
//! originals; label counts, direction and average degree match the paper.

use csce_graph::generate::{chung_lu, road_grid};
use csce_graph::{Graph, GraphStats};

/// A named synthetic data graph.
pub struct Dataset {
    /// The Table IV name this stands in for.
    pub name: &'static str,
    pub graph: Graph,
    /// What the substitution preserves.
    pub note: &'static str,
}

impl Dataset {
    /// The Table IV statistics row of the stand-in.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }
}

/// DIP protein–protein interaction network: undirected, unlabeled,
/// moderate power-law degrees (paper: 4,935 / 21,975, avg 8.9).
pub fn dip() -> Dataset {
    Dataset {
        name: "DIP",
        graph: chung_lu(1200, 5340, 2.5, 0, 0, false, 0xD1F),
        note: "undirected unlabeled PPI: power-law hubs, avg degree ~8.9",
    }
}

/// Yeast PPI (VEQ): undirected, 71 vertex labels (paper: 3,101 / 12,519).
pub fn yeast() -> Dataset {
    Dataset {
        name: "Yeast",
        graph: chung_lu(800, 3230, 2.4, 71, 0, false, 0xEA57),
        note: "undirected, 71 labels, avg degree ~8.1",
    }
}

/// Human PPI (RapidMatch): dense, 44 labels (paper: 4,674 / 86,282,
/// avg 36.9).
pub fn human() -> Dataset {
    Dataset {
        name: "Human",
        graph: chung_lu(1100, 20300, 2.8, 44, 0, false, 0x4CA),
        note: "dense PPI: avg degree ~37, 44 labels",
    }
}

/// HPRD (VEQ): many labels (paper: 9,303 / 34,998, 304 labels).
pub fn hprd() -> Dataset {
    Dataset {
        name: "HPRD",
        graph: chung_lu(2300, 8650, 2.5, 304, 0, false, 0x49D),
        note: "undirected, 304 labels (high label selectivity), avg ~7.5",
    }
}

/// RoadCA road network: undirected, unlabeled, near-constant low degree
/// (paper: 1.97M / 2.77M, avg 2.8, max degree 12).
pub fn roadca() -> Dataset {
    Dataset {
        name: "RoadCA",
        graph: road_grid(160, 160, 0.7, 0x40AD),
        note: "lattice with 70% kept edges: avg degree ~2.8, max 4",
    }
}

/// Orkut social network (GraphPi): undirected, 50 labels, very dense
/// hubs (paper: 3.07M / 117M, avg 76.3).
pub fn orkut() -> Dataset {
    Dataset {
        name: "Orkut",
        graph: chung_lu(4000, 152_000, 2.2, 50, 0, false, 0x0421),
        note: "heavy-tailed social graph: avg degree ~76, strong hubs",
    }
}

/// Patent citation graph (RapidMatch): undirected in Table IV, 20 labels
/// (paper: 3.77M / 33M, avg 8.8). Also the base graph for Figs. 10–13.
pub fn patent() -> Dataset {
    Dataset {
        name: "Patent",
        graph: chung_lu(20_000, 88_000, 2.6, 20, 0, false, 0x9A7E),
        note: "citation-shaped power law, 20 labels, avg ~8.8",
    }
}

/// Subcategory (Graphflow): directed, 36 labels (paper: 2.75M / 13.9M,
/// avg 10.2).
pub fn subcategory() -> Dataset {
    Dataset {
        name: "Subcategory",
        graph: chung_lu(12_000, 61_000, 2.4, 36, 0, true, 0x5ABC),
        note: "directed, 36 labels, avg ~10.2",
    }
}

/// LiveJournal (Graphflow): directed, unlabeled (paper: 4.0M / 34.7M,
/// avg 17.3, skewed out-degrees).
pub fn livejournal() -> Dataset {
    Dataset {
        name: "LiveJournal",
        graph: chung_lu(10_000, 86_500, 2.3, 0, 0, true, 0x11FE),
        note: "directed unlabeled power law, avg ~17.3",
    }
}

/// All nine presets in Table IV order.
pub fn all_presets() -> Vec<Dataset> {
    vec![dip(), yeast(), human(), hprd(), roadca(), orkut(), patent(), subcategory(), livejournal()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_match_table4() {
        for ds in all_presets() {
            let expected_directed = matches!(ds.name, "Subcategory" | "LiveJournal");
            assert_eq!(ds.stats().directed, expected_directed, "{}", ds.name);
        }
    }

    #[test]
    fn label_counts_match_table4() {
        let expected = [
            ("DIP", 0usize),
            ("Yeast", 71),
            ("Human", 44),
            ("HPRD", 304),
            ("RoadCA", 0),
            ("Orkut", 50),
            ("Patent", 20),
            ("Subcategory", 36),
            ("LiveJournal", 0),
        ];
        for (ds, (name, labels)) in all_presets().iter().zip(expected) {
            assert_eq!(ds.name, name);
            let got = ds.stats().label_count;
            // Random assignment may miss a few labels on small graphs.
            assert!(
                got <= labels && got + labels / 10 + 1 >= labels,
                "{name}: got {got}, want ~{labels}"
            );
        }
    }

    #[test]
    fn average_degrees_track_the_paper() {
        let expected = [
            ("DIP", 8.9),
            ("Yeast", 8.1),
            ("Human", 36.9),
            ("HPRD", 7.5),
            ("RoadCA", 2.8),
            ("Orkut", 76.3),
            ("Patent", 8.8),
            ("Subcategory", 10.2),
            ("LiveJournal", 17.3),
        ];
        for (ds, (name, avg)) in all_presets().iter().zip(expected) {
            let got = ds.stats().average_degree;
            assert!((got - avg).abs() / avg < 0.25, "{name}: avg degree {got:.1}, paper {avg:.1}");
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(dip().graph.edges(), dip().graph.edges());
        assert_eq!(patent().graph.labels(), patent().graph.labels());
    }

    #[test]
    fn social_graphs_have_hubs_roads_do_not() {
        let ork = orkut().graph;
        let max = (0..ork.n() as u32).map(|v| ork.degree(v)).max().unwrap();
        assert!((max as f64) > 5.0 * ork.average_degree(), "orkut hub");
        let road = roadca().graph;
        let max = (0..road.n() as u32).map(|v| road.degree(v)).max().unwrap();
        assert!(max <= 4, "road max degree");
    }
}
