//! The EMAIL-EU case study (§VII-G): department recovery from email
//! communication via higher-order clustering.
//!
//! The real EMAIL-EU network (1,005 members, 42 departments) is stood in
//! for by a planted-partition graph of the same size whose intra/inter
//! department densities give comparable clustering difficulty. The case
//! study compares edge-based clustering F1 against k-clique higher-order
//! clustering F1 (the paper: 0.398 → 0.515 using 8-cliques) and reports
//! the clique-finding time.

use crate::clustering::{edge_weights, label_propagation, motif_adjacency, pairwise_f1};
use csce_core::Engine;
use csce_graph::generate::planted_partition;
use csce_graph::Graph;
use std::time::{Duration, Instant};

/// The EMAIL-EU-like graph and its ground-truth departments.
pub fn email_eu() -> (Graph, Vec<usize>) {
    // 1005 members, 42 departments; dense enough inside departments for
    // 8-cliques to exist (real EMAIL-EU's average degree is ~51).
    planted_partition(1005, 42, 18.0, 7.0, 0xE0A11)
}

/// Outcome of the case study.
#[derive(Clone, Debug)]
pub struct CaseStudyResult {
    pub f1_edge: f64,
    pub f1_motif: f64,
    pub clique_time: Duration,
    pub cliques_found: usize,
    pub clique_size: usize,
}

/// Run the full case study at a given clique size (the paper uses 8).
pub fn run_case_study(g: &Graph, truth: &[usize], k: usize) -> CaseStudyResult {
    let engine = Engine::build(g);
    let edge_clusters = label_propagation(g.n(), &edge_weights(g), 50);
    let f1_edge = pairwise_f1(&edge_clusters, truth);
    let t0 = Instant::now();
    let motif = motif_adjacency(&engine, k);
    let clique_time = t0.elapsed();
    let cliques: u64 = motif.values().map(|&w| w as u64).sum::<u64>() / pairs_per_clique(k);
    let motif_clusters = label_propagation(g.n(), &motif, 50);
    let f1_motif = pairwise_f1(&motif_clusters, truth);
    CaseStudyResult {
        f1_edge,
        f1_motif,
        clique_time,
        cliques_found: cliques as usize,
        clique_size: k,
    }
}

fn pairs_per_clique(k: usize) -> u64 {
    (k * (k - 1) / 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_graph_shape() {
        let (g, truth) = email_eu();
        assert_eq!(g.n(), 1005);
        assert_eq!(truth.len(), 1005);
        assert_eq!(truth.iter().copied().max().unwrap(), 41);
        let avg = g.average_degree();
        assert!(avg > 15.0 && avg < 40.0, "avg degree {avg:.1}");
    }

    #[test]
    fn case_study_with_small_cliques_improves_f1() {
        // k = 4 keeps the test fast; the bench harness runs k = 8.
        let (g, truth) = email_eu();
        let r = run_case_study(&g, &truth, 4);
        assert!(r.cliques_found > 0, "4-cliques exist in departments");
        assert!(r.f1_motif >= r.f1_edge, "motif F1 {:.3} vs edge F1 {:.3}", r.f1_motif, r.f1_edge);
    }
}
