//! # csce-datasets
//!
//! Deterministic synthetic stand-ins for the nine public data graphs of
//! the paper's Table IV, plus the EMAIL-EU case study (§VII-G).
//!
//! The real graphs (up to 117M edges) cannot be redistributed or
//! downloaded here, so each preset reproduces the *shape* that drives the
//! paper's findings — edge direction, vertex-label count, average degree,
//! and degree-distribution family (power law for the social/citation
//! graphs, a low-degree lattice for RoadCA, a dense PPI-like core for
//! Human) — at a scale where every experiment finishes on one machine.
//! All presets are seeded and fully deterministic.

#![forbid(unsafe_code)]

pub mod clustering;
pub mod email;
pub mod motifs;
pub mod patterns;
pub mod presets;

pub use clustering::{
    conductance, higher_order_graph, label_propagation, motif_adjacency, pairwise_f1, sweep_cut,
};
pub use email::{email_eu, CaseStudyResult};
pub use patterns::{sample_suite, Workload};
pub use presets::{all_presets, Dataset};
