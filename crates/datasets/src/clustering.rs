//! Higher-order graph clustering for the EMAIL-EU case study (§VII-G).
//!
//! The pipeline follows Yin et al.'s local higher-order clustering idea
//! in simplified global form: build a *motif adjacency* where each vertex
//! pair is weighted by the number of k-clique instances containing both
//! (found with the CSCE engine, one instance per subgraph via ordering
//! restrictions), then cluster by weighted label propagation and score
//! against ground truth with pairwise F1. The edge-based baseline is the
//! same propagation over raw edges.

use csce_core::{Catalog, Engine, Executor, Planner, PlannerConfig, RunConfig};
use csce_graph::{FxHashMap, Graph, GraphBuilder, Variant, VertexId, NO_LABEL};

/// Pairwise co-occurrence weights of k-clique instances: for every clique
/// found, each unordered vertex pair inside it gains weight 1.
pub fn motif_adjacency(engine: &Engine, k: usize) -> FxHashMap<(VertexId, VertexId), u32> {
    assert!(k >= 2);
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(k);
    for i in 0..k as VertexId {
        for j in i + 1..k as VertexId {
            pb.add_undirected_edge(i, j, NO_LABEL).unwrap();
        }
    }
    higher_order_graph(engine, &pb.build(), Variant::EdgeInduced)
}

/// The paper's introductory `G_P` construction generalized to *any*
/// pattern: each vertex pair is weighted by the number of distinct
/// subgraph instances of `P` containing both (§I, higher-order graph
/// analysis). One instance per subgraph via the pattern's automorphism
/// restrictions — not one per mapping.
pub fn higher_order_graph(
    engine: &Engine,
    pattern: &Graph,
    variant: Variant,
) -> FxHashMap<(VertexId, VertexId), u32> {
    assert!(variant.injective(), "G_P weights count subgraph instances");
    let (restrictions, _aut) = csce_graph::automorphism::stabilizer_restrictions(pattern);
    let star = csce_ccsr::read_csr(engine.ccsr(), pattern, variant);
    let catalog = Catalog::new(pattern, &star);
    let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
    let mut exec =
        Executor::new(&catalog, &plan, RunConfig::default()).with_restrictions(&restrictions);
    let mut weights: FxHashMap<(VertexId, VertexId), u32> = FxHashMap::default();
    exec.enumerate(&mut |f| {
        for i in 0..f.len() {
            for j in i + 1..f.len() {
                let key = (f[i].min(f[j]), f[i].max(f[j]));
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        true
    });
    weights
}

/// Weighted label propagation: every vertex starts in its own cluster and
/// repeatedly adopts the cluster with the largest incident weight.
/// Deterministic (fixed vertex order; weight ties go to the larger
/// cluster id, and a vertex keeps its current cluster when it ties with
/// the best); stops at convergence or `max_rounds`.
pub fn label_propagation(
    n: usize,
    weights: &FxHashMap<(VertexId, VertexId), u32>,
    max_rounds: usize,
) -> Vec<u32> {
    let mut adj: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];
    for (&(a, b), &w) in weights {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    let mut cluster: Vec<u32> = (0..n as u32).collect();
    for _ in 0..max_rounds {
        let mut changed = false;
        let mut tally: FxHashMap<u32, u64> = FxHashMap::default();
        for v in 0..n {
            tally.clear();
            for &(w, weight) in &adj[v] {
                *tally.entry(cluster[w as usize]).or_insert(0) += weight as u64;
            }
            if let Some((&best, _)) =
                tally.iter().max_by(|(ca, wa), (cb, wb)| wa.cmp(wb).then(ca.cmp(cb)))
            {
                if best != cluster[v] && tally.get(&cluster[v]).copied().unwrap_or(0) < tally[&best]
                {
                    cluster[v] = best;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    cluster
}

/// Edge weights of a plain graph (weight 1 per edge) — the edge-based
/// clustering baseline's input.
pub fn edge_weights(g: &Graph) -> FxHashMap<(VertexId, VertexId), u32> {
    let mut w = FxHashMap::default();
    for e in g.edges() {
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        *w.entry(key).or_insert(0) += 1;
    }
    w
}

/// Weighted conductance of a vertex set `S`: `cut(S) / min(vol(S),
/// vol(V\S))` over the (motif) adjacency weights — the objective of Yin
/// et al.'s local higher-order clustering, which the paper's case study
/// builds on.
pub fn conductance(
    n: usize,
    weights: &FxHashMap<(VertexId, VertexId), u32>,
    set: &[VertexId],
) -> f64 {
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v as usize] = true;
    }
    let (mut cut, mut vol_s, mut vol_rest) = (0u64, 0u64, 0u64);
    for (&(a, b), &w) in weights {
        let w = w as u64;
        match (in_set[a as usize], in_set[b as usize]) {
            (true, true) => vol_s += 2 * w,
            (false, false) => vol_rest += 2 * w,
            _ => {
                cut += w;
                vol_s += w;
                vol_rest += w;
            }
        }
    }
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        1.0
    } else {
        cut as f64 / denom as f64
    }
}

/// Local clustering by approximate personalized PageRank + sweep cut over
/// the weighted (motif) adjacency — the MAPPR recipe: push-based APPR
/// from the seed, order vertices by `ppr / weighted degree`, return the
/// prefix with minimum conductance.
pub fn sweep_cut(
    n: usize,
    weights: &FxHashMap<(VertexId, VertexId), u32>,
    seed: VertexId,
    alpha: f64,
    epsilon: f64,
) -> Vec<VertexId> {
    let mut adj: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];
    let mut wdeg: Vec<u64> = vec![0; n];
    for (&(a, b), &w) in weights {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
        wdeg[a as usize] += w as u64;
        wdeg[b as usize] += w as u64;
    }
    if wdeg[seed as usize] == 0 {
        return vec![seed];
    }
    // Push-based APPR (Andersen–Chung–Lang) on the weighted graph.
    let mut ppr = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    residual[seed as usize] = 1.0;
    let mut queue = vec![seed];
    while let Some(v) = queue.pop() {
        let r = residual[v as usize];
        let d = wdeg[v as usize] as f64;
        if d == 0.0 || r < epsilon * d {
            continue;
        }
        ppr[v as usize] += alpha * r;
        residual[v as usize] = 0.0;
        let push = (1.0 - alpha) * r;
        for &(w, weight) in &adj[v as usize] {
            let dw = wdeg[w as usize] as f64;
            let before = residual[w as usize];
            residual[w as usize] += push * (weight as f64) / d;
            if dw > 0.0 && before < epsilon * dw && residual[w as usize] >= epsilon * dw {
                queue.push(w);
            }
        }
    }
    // Sweep: order by ppr / weighted degree, take the minimum-conductance
    // prefix.
    let mut ranked: Vec<VertexId> = (0..n as VertexId).filter(|&v| ppr[v as usize] > 0.0).collect();
    ranked.sort_by(|&a, &b| {
        let ka = ppr[a as usize] / wdeg[a as usize].max(1) as f64;
        let kb = ppr[b as usize] / wdeg[b as usize].max(1) as f64;
        kb.partial_cmp(&ka).unwrap().then(a.cmp(&b))
    });
    if ranked.is_empty() {
        return vec![seed];
    }
    let mut best_len = 1usize;
    let mut best_phi = f64::INFINITY;
    for len in 1..=ranked.len() {
        let phi = conductance(n, weights, &ranked[..len]);
        if phi < best_phi {
            best_phi = phi;
            best_len = len;
        }
    }
    ranked.truncate(best_len);
    ranked.sort_unstable();
    ranked
}

/// Pairwise F1 of a clustering against ground truth: precision and recall
/// over the "same cluster" relation on vertex pairs.
pub fn pairwise_f1(predicted: &[u32], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    let n = predicted.len();
    let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
    for a in 0..n {
        for b in a + 1..n {
            let same_pred = predicted[a] == predicted[b];
            let same_true = truth[a] == truth[b];
            match (same_pred, same_true) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fneg += 1,
                (false, false) => {}
            }
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fneg) as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::generate::planted_partition;

    #[test]
    fn motif_adjacency_counts_triangles_once() {
        // K4: each pair is in exactly 2 triangles.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = b.build();
        let engine = Engine::build(&g);
        let w = motif_adjacency(&engine, 3);
        assert_eq!(w.len(), 6);
        assert!(w.values().all(|&x| x == 2));
    }

    #[test]
    fn higher_order_graph_with_path_motif() {
        // P3 instances in a triangle: 3 distinct wedges (one per center);
        // every pair belongs to all 3 of them... each wedge contains all
        // 3 vertices? No: a wedge on a triangle uses all 3 vertices, so
        // each of the 3 wedges adds weight to each of the 3 pairs -> 3.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        for (x, y) in [(0, 1), (1, 2), (2, 0)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let g = b.build();
        let engine = Engine::build(&g);
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let wedge = pb.build();
        let w = higher_order_graph(&engine, &wedge, Variant::EdgeInduced);
        assert_eq!(w.len(), 3);
        assert!(w.values().all(|&x| x == 3), "{w:?}");
        // Consistency: total pair-weight = instances * pairs-per-instance.
        let instances = engine.count_subgraphs(&wedge, Variant::EdgeInduced);
        let total: u64 = w.values().map(|&x| x as u64).sum();
        assert_eq!(total, instances * 3);
    }

    #[test]
    fn label_propagation_recovers_two_cliques() {
        // Two K4s joined by one bridge edge.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_undirected_edge(base + i, base + j, NO_LABEL).unwrap();
                }
            }
        }
        b.add_undirected_edge(3, 4, NO_LABEL).unwrap();
        let g = b.build();
        let clusters = label_propagation(8, &edge_weights(&g), 20);
        for i in 1..4 {
            assert_eq!(clusters[0], clusters[i]);
        }
        for i in 5..8 {
            assert_eq!(clusters[4], clusters[i]);
        }
        assert_ne!(clusters[0], clusters[4]);
    }

    #[test]
    fn f1_bounds() {
        let truth = vec![0usize, 0, 1, 1];
        assert!((pairwise_f1(&[5, 5, 9, 9], &truth) - 1.0).abs() < 1e-12);
        assert_eq!(pairwise_f1(&[1, 2, 3, 4], &truth), 0.0);
        let partial = pairwise_f1(&[5, 5, 9, 4], &truth);
        assert!(partial > 0.0 && partial < 1.0);
    }

    #[test]
    fn conductance_of_known_cuts() {
        // Two triangles joined by one edge.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(6);
        for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let g = b.build();
        let w = edge_weights(&g);
        // One triangle: cut 1, vol 7 -> phi = 1/7.
        let phi = conductance(6, &w, &[0, 1, 2]);
        assert!((phi - 1.0 / 7.0).abs() < 1e-9, "{phi}");
        // Whole graph: denom 0 -> 1.0 by convention.
        assert_eq!(conductance(6, &w, &[0, 1, 2, 3, 4, 5]), 1.0);
        // A single bridge endpoint is a bad cluster.
        assert!(conductance(6, &w, &[2]) > phi);
    }

    #[test]
    fn sweep_cut_recovers_seed_community() {
        // Two K5s joined by a single bridge.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(10);
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b.add_undirected_edge(base + i, base + j, NO_LABEL).unwrap();
                }
            }
        }
        b.add_undirected_edge(4, 5, NO_LABEL).unwrap();
        let g = b.build();
        let w = edge_weights(&g);
        let cluster = sweep_cut(10, &w, 0, 0.15, 1e-6);
        assert_eq!(cluster, vec![0, 1, 2, 3, 4], "seed community recovered");
        let cluster2 = sweep_cut(10, &w, 7, 0.15, 1e-6);
        assert_eq!(cluster2, vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn sweep_cut_on_motif_weights() {
        // Motif (triangle) adjacency of two bridged K4s: the bridge edge
        // carries no triangles, so the motif cut is perfectly clean.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_undirected_edge(base + i, base + j, NO_LABEL).unwrap();
                }
            }
        }
        b.add_undirected_edge(3, 4, NO_LABEL).unwrap();
        let g = b.build();
        let engine = Engine::build(&g);
        let motif = motif_adjacency(&engine, 3);
        let cluster = sweep_cut(8, &motif, 1, 0.15, 1e-7);
        assert_eq!(cluster, vec![0, 1, 2, 3]);
        assert_eq!(conductance(8, &motif, &cluster), 0.0, "no triangle crosses the bridge");
    }

    #[test]
    fn isolated_seed_returns_itself() {
        let w: FxHashMap<(VertexId, VertexId), u32> = FxHashMap::default();
        assert_eq!(sweep_cut(3, &w, 2, 0.15, 1e-6), vec![2]);
    }

    #[test]
    fn motif_clustering_beats_edges_on_planted_graph() {
        // Small planted partition with dense-enough groups for triangles.
        let (g, truth) = planted_partition(120, 4, 12.0, 4.0, 11);
        let engine = Engine::build(&g);
        let edge_clusters = label_propagation(g.n(), &edge_weights(&g), 30);
        let motif = motif_adjacency(&engine, 3);
        let motif_clusters = label_propagation(g.n(), &motif, 30);
        let f1_edge = pairwise_f1(&edge_clusters, &truth);
        let f1_motif = pairwise_f1(&motif_clusters, &truth);
        // The paper's qualitative claim: higher-order clustering improves
        // F1 (0.398 -> 0.515 on the real data).
        assert!(
            f1_motif >= f1_edge,
            "motif F1 {f1_motif:.3} should not trail edge F1 {f1_edge:.3}"
        );
        assert!(f1_motif > 0.2, "planted structure should be recoverable");
    }
}
