//! A catalog of standard unlabeled motifs — the named building blocks of
//! higher-order analysis (Benson et al.) and of this repository's tests,
//! examples and benches.

use csce_graph::{Graph, GraphBuilder, VertexId, NO_LABEL};

/// Add undirected motif edges. Motif endpoints are constructed in range,
/// so a rejected edge indicates a bug in the motif itself: debug-asserted,
/// skipped in release rather than panicking.
fn add_undirected(b: &mut GraphBuilder, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
    for (x, y) in edges {
        let added = b.add_undirected_edge(x, y, NO_LABEL);
        debug_assert!(added.is_ok(), "motif edge ({x}, {y}) out of range");
    }
}

/// Directed counterpart of [`add_undirected`].
fn add_directed(b: &mut GraphBuilder, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
    for (x, y) in edges {
        let added = b.add_edge(x, y, NO_LABEL);
        debug_assert!(added.is_ok(), "motif arc ({x}, {y}) out of range");
    }
}

/// `K_k`: complete graph on `k` vertices.
pub fn clique(k: usize) -> Graph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(k);
    let k = u32::try_from(k).unwrap_or(u32::MAX);
    add_undirected(&mut b, (0..k).flat_map(|i| (i + 1..k).map(move |j| (i, j))));
    b.build()
}

/// `P_k`: path on `k` vertices (`k - 1` edges).
pub fn path(k: usize) -> Graph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(k);
    let k = u32::try_from(k).unwrap_or(u32::MAX);
    add_undirected(&mut b, (0..k - 1).map(|i| (i, i + 1)));
    b.build()
}

/// `C_k`: cycle on `k` vertices.
pub fn cycle(k: usize) -> Graph {
    assert!(k >= 3);
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(k);
    let k = u32::try_from(k).unwrap_or(u32::MAX);
    add_undirected(&mut b, (0..k).map(|i| (i, (i + 1) % k)));
    b.build()
}

/// `S_l`: star with `l` leaves (vertex 0 is the center).
pub fn star(leaves: usize) -> Graph {
    assert!(leaves >= 1);
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(leaves + 1);
    let leaves = u32::try_from(leaves).unwrap_or(u32::MAX);
    add_undirected(&mut b, (1..=leaves).map(|leaf| (0, leaf)));
    b.build()
}

/// Diamond: `K_4` minus one edge.
pub fn diamond() -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(4);
    add_undirected(&mut b, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    b.build()
}

/// Paw: a triangle with a pendant edge.
pub fn paw() -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(4);
    add_undirected(&mut b, [(0, 1), (1, 2), (2, 0), (2, 3)]);
    b.build()
}

/// House: a 4-cycle with a triangle roof.
pub fn house() -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(5);
    add_undirected(&mut b, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]);
    b.build()
}

/// The directed feed-forward loop (the canonical directed triad motif):
/// `0 → 1`, `0 → 2`, `1 → 2`.
pub fn feed_forward_loop() -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(3);
    add_directed(&mut b, [(0, 1), (0, 2), (1, 2)]);
    b.build()
}

/// Bidirectional two-hop chain (`M6`-style directed motif):
/// `0 ↔ 1 ↔ 2` as antiparallel arc pairs.
pub fn bidirectional_chain() -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(3);
    add_directed(&mut b, [(0, 1), (1, 0), (1, 2), (2, 1)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::automorphism::automorphism_count;

    #[test]
    fn shapes_and_sizes() {
        assert_eq!(clique(5).m(), 10);
        assert_eq!(path(6).m(), 5);
        assert_eq!(cycle(6).m(), 6);
        assert_eq!(star(7).n(), 8);
        assert_eq!(diamond().m(), 5);
        assert_eq!(paw().m(), 4);
        assert_eq!(house().m(), 6);
        assert_eq!(feed_forward_loop().m(), 3);
        assert_eq!(bidirectional_chain().m(), 4);
        for g in [clique(4), path(5), cycle(5), star(4), diamond(), paw(), house()] {
            assert!(g.is_connected());
            assert!(!g.has_directed_edges());
        }
    }

    #[test]
    fn automorphism_groups_are_the_known_ones() {
        assert_eq!(automorphism_count(&clique(4)), 24);
        assert_eq!(automorphism_count(&path(5)), 2);
        assert_eq!(automorphism_count(&cycle(6)), 12);
        assert_eq!(automorphism_count(&star(4)), 24);
        assert_eq!(automorphism_count(&diamond()), 4);
        assert_eq!(automorphism_count(&paw()), 2);
        assert_eq!(automorphism_count(&house()), 2);
        assert_eq!(automorphism_count(&feed_forward_loop()), 1);
        assert_eq!(automorphism_count(&bidirectional_chain()), 2);
    }
}
