//! The per-task catalog: a pattern-aware view over the decoded cluster set
//! `G_C^*`.
//!
//! The planner asks it for cluster sizes (the `|I_C(u_i, u_x)|` statistics
//! behind the GCF and LDSF tie-breaks) and the executor for neighbor rows
//! and seed candidates. All lookups resolve to array slices inside decoded
//! CSRs; nothing here allocates on the hot path except the lazily-built
//! seed lists.

use csce_ccsr::read::pattern_edge_key;
use csce_ccsr::{ClusterKey, DecodedCluster, GcStar};
use csce_graph::graph::Edge;
use csce_graph::util::intersect_sorted;
use csce_graph::{Graph, Label, VertexId};
use std::cell::RefCell;

/// Which endpoint of a pattern edge a pattern vertex is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    Src,
    Dst,
}

/// A pattern-specific, variant-agnostic view over `G_C^*`.
pub struct Catalog<'a> {
    pattern: &'a Graph,
    star: &'a GcStar<'a>,
    /// Per pattern-edge index: the decoded cluster, or `None` when no data
    /// edge matches the identifier (candidates through it are empty).
    edge_clusters: Vec<Option<&'a DecodedCluster>>,
    /// Incident pattern edges per vertex, with the vertex's side —
    /// precomputed so the plan heuristics' inner loops stay linear.
    incident: Vec<Vec<(usize, Side)>>,
    /// Lazily computed seed candidate lists, keyed by pattern vertex.
    seeds: RefCell<Vec<Option<Vec<VertexId>>>>,
}

impl<'a> Catalog<'a> {
    pub fn new(pattern: &'a Graph, star: &'a GcStar<'a>) -> Catalog<'a> {
        let edge_clusters: Vec<Option<&'a DecodedCluster>> =
            pattern.edges().iter().map(|e| star.cluster_for_edge(pattern, e)).collect();
        let mut incident: Vec<Vec<(usize, Side)>> = vec![Vec::new(); pattern.n()];
        for (i, e) in pattern.edges().iter().enumerate() {
            incident[e.src as usize].push((i, Side::Src));
            incident[e.dst as usize].push((i, Side::Dst));
        }
        Catalog {
            pattern,
            star,
            edge_clusters,
            incident,
            seeds: RefCell::new(vec![None; pattern.n()]),
        }
    }

    #[inline]
    pub fn pattern(&self) -> &'a Graph {
        self.pattern
    }

    #[inline]
    pub fn star(&self) -> &'a GcStar<'a> {
        self.star
    }

    /// Data-graph vertex count.
    #[inline]
    pub fn data_n(&self) -> usize {
        self.star.ccsr().n()
    }

    /// Label of a data vertex.
    #[inline]
    pub fn data_label(&self, v: VertexId) -> Label {
        self.star.ccsr().vertex_label(v)
    }

    /// Frequency of a vertex label in the data graph (plan tie-break #3).
    #[inline]
    pub fn label_frequency(&self, l: Label) -> u32 {
        self.star.ccsr().label_frequency().get(&l).copied().unwrap_or(0)
    }

    /// The decoded cluster serving pattern edge `eidx`, if non-empty.
    #[inline]
    pub fn edge_cluster(&self, eidx: usize) -> Option<&'a DecodedCluster> {
        self.edge_clusters[eidx]
    }

    /// `|I_C|` of the cluster serving pattern edge `eidx` (0 when empty) —
    /// the paper's candidate-count estimate for tie-breaking.
    #[inline]
    pub fn cluster_size(&self, eidx: usize) -> usize {
        self.edge_clusters[eidx].map_or(0, |c| c.size())
    }

    /// Which side of pattern edge `eidx` vertex `u` is. Panics if `u` is
    /// not an endpoint.
    pub fn side_of(&self, eidx: usize, u: VertexId) -> Side {
        let e = &self.pattern.edges()[eidx];
        if e.src == u {
            Side::Src
        } else {
            debug_assert_eq!(e.dst, u, "vertex is not an endpoint of edge {eidx}");
            Side::Dst
        }
    }

    /// Pattern edge indexes incident to `u`, with `u`'s side.
    pub fn incident_edges(&self, u: VertexId) -> impl Iterator<Item = (usize, Side)> + '_ {
        self.incident[u as usize].iter().copied()
    }

    /// The smallest cluster size among edges incident to `u` (first-vertex
    /// tie-break of the GCF heuristic). `usize::MAX` if `u` is isolated.
    pub fn min_incident_cluster_size(&self, u: VertexId) -> usize {
        self.incident_edges(u).map(|(i, _)| self.cluster_size(i)).min().unwrap_or(usize::MAX)
    }

    /// Candidates for the *other* endpoint of pattern edge `eidx` when the
    /// endpoint `from_side` is mapped to data vertex `v`: the sorted
    /// neighbor row of `v` in the edge's cluster.
    #[inline]
    pub fn extend_row(&self, eidx: usize, from_side: Side, v: VertexId) -> &'a [u32] {
        match self.edge_clusters[eidx] {
            None => &[],
            Some(c) => match (from_side, c.key.directed) {
                // From the source of a directed edge: follow outgoing arcs.
                (Side::Src, true) => c.out_neighbors(v),
                // From the destination: follow incoming arcs.
                (Side::Dst, true) => c.in_neighbors(v),
                // Undirected clusters answer both directions from one CSR.
                (_, false) => c.out_neighbors(v),
            },
        }
    }

    /// Seed candidates for `u` when it has no matched neighbors (the first
    /// vertex of a plan): the intersection over every incident pattern
    /// edge of the vertices occurring on `u`'s side of the edge's cluster
    /// — exactly a worst-case-optimal join of `u`'s relations on `u`.
    pub fn seeds(&self, u: VertexId) -> Vec<VertexId> {
        if let Some(cached) = &self.seeds.borrow()[u as usize] {
            return cached.clone();
        }
        let mut lists: Vec<Vec<VertexId>> = Vec::new();
        for (eidx, side) in self.incident_edges(u) {
            lists.push(self.side_vertices(eidx, side, self.pattern.label(u)));
        }
        let mut result = match lists.iter().min_by_key(|l| l.len()) {
            None => {
                // Isolated pattern vertex: all data vertices of the label.
                let label = self.pattern.label(u);
                (0..self.data_n() as VertexId).filter(|&v| self.data_label(v) == label).collect()
            }
            Some(smallest) => {
                let mut acc = smallest.clone();
                let mut tmp = Vec::new();
                for list in &lists {
                    if std::ptr::eq(list, smallest) {
                        continue;
                    }
                    intersect_sorted(&acc, list, &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        };
        result.shrink_to_fit();
        self.seeds.borrow_mut()[u as usize] = Some(result.clone());
        result
    }

    /// The vertices appearing on one side of a pattern edge's cluster,
    /// filtered to a vertex label (needed for undirected clusters whose
    /// two label sides share one CSR).
    fn side_vertices(&self, eidx: usize, side: Side, want_label: Label) -> Vec<VertexId> {
        let Some(c) = self.edge_clusters[eidx] else { return Vec::new() };
        let rows: Vec<VertexId> = if c.key.directed {
            match side {
                Side::Src => c.out.nonempty_rows().collect(),
                Side::Dst => {
                    c.inc.as_ref().expect("directed cluster has inc csr").nonempty_rows().collect()
                }
            }
        } else if c.key.symmetric_labels() {
            c.out.nonempty_rows().collect()
        } else {
            // Mixed-label undirected cluster: keep only rows of the wanted
            // label.
            c.out.nonempty_rows().filter(|&v| self.data_label(v) == want_label).collect()
        };
        rows
    }

    /// The negation clusters between two vertex labels (vertex-induced
    /// matching subtracts data neighbors found in these).
    pub fn negation_clusters(
        &self,
        a: Label,
        b: Label,
    ) -> impl Iterator<Item = &'a DecodedCluster> {
        self.star.negation_clusters(a, b)
    }

    /// Whether the data graph has any edge between two labels (Algorithm 2
    /// line 8).
    #[inline]
    pub fn labels_ever_adjacent(&self, a: Label, b: Label) -> bool {
        self.star.labels_ever_adjacent(a, b)
    }

    /// The cluster identifier of a pattern edge (exposed for diagnostics).
    pub fn key_of_edge(&self, e: &Edge) -> ClusterKey {
        pattern_edge_key(self.pattern, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{GraphBuilder, Variant, NO_LABEL};

    fn data() -> csce_graph::Graph {
        // Labels: 0 (A), 1 (B). Edges: A->B: 0->1, 0->3, 2->3; undirected
        // B-B: 1-3.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(0, 3, NO_LABEL).unwrap();
        b.add_edge(2, 3, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 3, NO_LABEL).unwrap();
        b.build()
    }

    fn pattern() -> csce_graph::Graph {
        // u0 (A) -> u1 (B) — u2 (B undirected): a directed edge plus an
        // undirected one.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn extend_rows_follow_direction() {
        let g = data();
        let p = pattern();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let cat = Catalog::new(&p, &star);
        // Edge 0 is u0->u1 (A->B cluster). From the source v0:
        assert_eq!(cat.extend_row(0, Side::Src, 0), &[1, 3]);
        // From the destination v3 backwards:
        assert_eq!(cat.extend_row(0, Side::Dst, 3), &[0, 2]);
        // Edge 1 is undirected B-B. Both directions served by one CSR:
        assert_eq!(cat.extend_row(1, Side::Src, 1), &[3]);
        assert_eq!(cat.extend_row(1, Side::Dst, 1), &[3]);
    }

    #[test]
    fn cluster_sizes_feed_tiebreaks() {
        let g = data();
        let p = pattern();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let cat = Catalog::new(&p, &star);
        assert_eq!(cat.cluster_size(0), 3); // three A->B arcs
        assert_eq!(cat.cluster_size(1), 2); // one undirected edge, two arcs
        assert_eq!(cat.min_incident_cluster_size(1), 2);
        assert_eq!(cat.min_incident_cluster_size(0), 3);
    }

    #[test]
    fn seeds_intersect_all_incident_relations() {
        let g = data();
        let p = pattern();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let cat = Catalog::new(&p, &star);
        // u1 (B) must appear as destination of an A->B arc and as an
        // endpoint of a B-B undirected edge: v1 and v3 both qualify.
        assert_eq!(cat.seeds(1), vec![1, 3]);
        // u0 (A) is only constrained by the A->B cluster sources.
        assert_eq!(cat.seeds(0), vec![0, 2]);
        // Cached second call returns the same.
        assert_eq!(cat.seeds(1), vec![1, 3]);
    }

    #[test]
    fn missing_cluster_yields_empty() {
        let g = data();
        let mut b = GraphBuilder::new();
        b.add_vertex(7); // label absent in data
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        let p = b.build();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let cat = Catalog::new(&p, &star);
        assert_eq!(cat.cluster_size(0), 0);
        assert!(cat.seeds(0).is_empty());
        assert!(cat.extend_row(0, Side::Src, 0).is_empty());
    }

    #[test]
    fn undirected_mixed_label_sides_filter_by_label() {
        // Data: undirected A-B edges 0(A)-1(B), 2(A)-1(B).
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(0);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(2, 1, NO_LABEL).unwrap();
        let g = b.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let p = pb.build();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let cat = Catalog::new(&p, &star);
        assert_eq!(cat.seeds(0), vec![0, 2], "A-side seeds");
        assert_eq!(cat.seeds(1), vec![1], "B-side seeds");
    }
}
