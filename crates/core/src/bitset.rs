//! A fixed-capacity bit set used for DAG reachability (ancestor /
//! descendant sets over pattern vertices, so capacities up to the paper's
//! 2000-vertex patterns are a few hundred bytes).

/// A fixed-size bit set over `len` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zeros set over `len` bits.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the two sets share any bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterate over set bit indexes, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(99);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(99));
        assert!(a.intersects(&b));
        assert_eq!(a.count(), 2);
    }
}
