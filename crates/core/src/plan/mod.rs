//! Plan generation: GCF initial order → dependency DAG → SCE analysis →
//! LDSF fine-tuning → NEC cache sharing → factorized execution tree.
//!
//! This is the orange stage of the paper's Fig. 2. The entry point is
//! [`Planner::plan`]; [`PlannerConfig`] exposes the ablation switches the
//! plan-quality experiment (Fig. 13) compares: plain RI, RI + cluster
//! tie-breaks, and full CSCE (clusters + SCE/LDSF).

pub mod dag;
pub mod descendant;
pub mod explain;
pub mod gcf;
pub mod ldsf;
pub mod nec;

use crate::bitset::BitSet;
use crate::catalog::Catalog;
use csce_graph::{FxHashMap, Variant, VertexId};
use dag::{build_dag, Dag};
use descendant::descendant_sizes;
use gcf::{gcf_order, GcfConfig};
use ldsf::ldsf_order;
use nec::nec_classes;

/// Switches for the optimization stages (Fig. 13's plan variants).
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// GCF stage configuration (cluster tie-breaking on/off).
    pub gcf: GcfConfig,
    /// Apply LDSF fine-tuning over the dependency DAG; `false` keeps the
    /// GCF order as `Φ*`.
    pub ldsf: bool,
    /// Identify NEC classes and share candidate caches within them.
    pub nec: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { gcf: GcfConfig::default(), ldsf: true, nec: true }
    }
}

impl PlannerConfig {
    /// Full CSCE optimization (the default).
    pub fn csce() -> Self {
        Self::default()
    }

    /// Plain RI heuristics, no data-graph awareness, no SCE fine-tuning.
    pub fn ri_only() -> Self {
        PlannerConfig { gcf: GcfConfig::ri_only(), ldsf: false, nec: false }
    }

    /// RI rules with CCSR cluster tie-breaking but no LDSF (Fig. 13's
    /// "RI+Cluster").
    pub fn ri_cluster() -> Self {
        PlannerConfig { gcf: GcfConfig::default(), ldsf: false, nec: false }
    }
}

/// The factorized execution tree compiled from `Φ*` and `H` for counting:
/// when the unmatched suffix decomposes into `H`-independent components
/// whose candidates cannot collide, each component is counted once and the
/// counts multiply (the executable form of SCE's conditional
/// independence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecNode {
    /// Match `u`, then continue with `next` for every candidate.
    Seq { u: VertexId, next: Box<ExecNode> },
    /// Count each independent component and multiply.
    Split { components: Vec<ExecNode> },
    /// A complete embedding.
    Done,
}

impl ExecNode {
    /// Number of `Split` nodes in the tree (used by tests and stats).
    pub fn split_count(&self) -> usize {
        match self {
            ExecNode::Done => 0,
            ExecNode::Seq { next, .. } => next.split_count(),
            ExecNode::Split { components } => {
                1 + components.iter().map(|c| c.split_count()).sum::<usize>()
            }
        }
    }
}

/// One induced-matching filter: when extending pattern vertex `u`, any
/// data arc between the candidate and `parent`'s mapping that is *not* in
/// `allowed` (the pattern's pair code seen from `parent`) disqualifies the
/// candidate. Unconnected pairs have an empty `allowed` — pure negation;
/// connected pairs reject extra arcs (e.g. an antiparallel data arc).
#[derive(Clone, Debug)]
pub struct InducedFilter {
    pub parent: VertexId,
    pub allowed: Vec<(csce_graph::graph::Orient, csce_graph::Label)>,
}

/// Static SCE occurrence statistics of a plan (Fig. 12's measurements).
#[derive(Clone, Debug, Default)]
pub struct SceAnalysis {
    /// Pattern vertices with at least one earlier `H`-independent vertex.
    pub sce_vertices: usize,
    /// Of those, vertices where some witnessing pair owes its independence
    /// to empty `(u_i, u_j)*`-clusters (the paper's "cluster" sub-bars).
    pub cluster_sce_vertices: usize,
    /// Total pattern vertices.
    pub total_vertices: usize,
    /// Ordered independent pairs `(earlier, later)` in `H`.
    pub sce_pairs: usize,
    /// Of those, pairs whose label-pair clusters are empty in the data
    /// graph (injectivity filtering is free for them).
    pub cluster_sce_pairs: usize,
}

impl SceAnalysis {
    /// Fraction of pattern vertices exhibiting SCE.
    pub fn sce_fraction(&self) -> f64 {
        if self.total_vertices == 0 {
            0.0
        } else {
            self.sce_vertices as f64 / self.total_vertices as f64
        }
    }

    /// Fraction of SCE vertices whose independence is cluster-driven.
    pub fn cluster_fraction(&self) -> f64 {
        if self.sce_vertices == 0 {
            0.0
        } else {
            self.cluster_sce_vertices as f64 / self.sce_vertices as f64
        }
    }

    /// Pair-level cluster share: of all independent (SCE) pairs, the
    /// fraction owing independence to empty clusters — the paper's
    /// sub-bar ratio.
    pub fn cluster_pair_fraction(&self) -> f64 {
        if self.sce_pairs == 0 {
            0.0
        } else {
            self.cluster_sce_pairs as f64 / self.sce_pairs as f64
        }
    }
}

/// A complete matching plan for one `(pattern, variant)` task.
#[derive(Clone, Debug)]
pub struct Plan {
    pub variant: Variant,
    /// The final matching order `Φ*` (pattern vertex ids).
    pub order: Vec<VertexId>,
    /// Position of each pattern vertex in `Φ*`.
    pub pos_of: Vec<u32>,
    /// The dependency DAG `H`.
    pub dag: Dag,
    /// NEC class of each pattern vertex.
    pub nec_class: Vec<u32>,
    /// Candidate-cache slot of each vertex; NEC-equivalent vertices with
    /// identical dependency parents share a slot so one computation serves
    /// the whole class.
    pub cache_slot: Vec<u32>,
    /// Number of distinct cache slots.
    pub slot_count: usize,
    /// Static SCE occurrence statistics.
    pub sce: SceAnalysis,
    /// Factorized execution tree for counting mode.
    pub root: ExecNode,
    /// Per-vertex induced-matching filters (vertex-induced only; empty
    /// lists otherwise).
    pub induced_filters: Vec<Vec<InducedFilter>>,
}

/// Plan generator.
pub struct Planner {
    pub config: PlannerConfig,
}

impl Planner {
    pub fn new(config: PlannerConfig) -> Planner {
        Planner { config }
    }

    /// Generate the plan for `catalog.pattern()` under `variant`.
    pub fn plan(&self, catalog: &Catalog<'_>, variant: Variant) -> Plan {
        self.plan_recorded(catalog, variant, &csce_obs::Recorder::disabled())
    }

    /// [`Planner::plan`] with each stage timed as a span on `recorder`
    /// (`gcf`, `dag`, `descendant`, `ldsf`, `nec`, `sce`, `tree` — the
    /// decomposition behind Fig. 10's plan-scalability numbers).
    pub fn plan_recorded(
        &self,
        catalog: &Catalog<'_>,
        variant: Variant,
        recorder: &csce_obs::Recorder,
    ) -> Plan {
        let p = catalog.pattern();
        assert!(p.n() >= 1, "pattern must have vertices");
        assert!(p.is_connected(), "pattern must be connected");

        // Stage 1: GCF initial order (with or without cluster tie-breaks).
        let phi = recorder.time("gcf", || gcf_order(catalog, self.config.gcf));
        // Stage 2: dependency DAG.
        let dag = recorder.time("dag", || build_dag(catalog, &phi, variant));
        // Stage 3: LDSF fine-tuning (a specific topological order of H).
        let order = if self.config.ldsf {
            let sizes = recorder.time("descendant", || descendant_sizes(&dag));
            recorder.time("ldsf", || ldsf_order(catalog, &dag, &sizes))
        } else {
            phi
        };
        let mut pos_of = vec![0u32; p.n()];
        for (k, &u) in order.iter().enumerate() {
            pos_of[u as usize] = k as u32;
        }

        // NEC classes and cache-slot assignment.
        let nec_class = if self.config.nec {
            recorder.time("nec", || nec_classes(p))
        } else {
            (0..p.n() as u32).collect()
        };
        let (cache_slot, slot_count) = assign_cache_slots(&dag, &nec_class, p.n());

        let sce = recorder.time("sce", || analyze_sce(catalog, &dag, &order));
        let root = recorder.time("tree", || build_exec_tree(catalog, &dag, &order, variant));
        let induced_filters = if variant == Variant::VertexInduced {
            (0..p.n() as VertexId)
                .map(|u| {
                    dag.parents(u)
                        .iter()
                        .map(|&parent| InducedFilter {
                            parent,
                            allowed: csce_graph::pattern::pair_code(p, parent, u),
                        })
                        .collect()
                })
                .collect()
        } else {
            vec![Vec::new(); p.n()]
        };

        // Boundary invariant (deep form in `csce-analyze`): the LDSF order
        // is a permutation of `V_P`, topological w.r.t. the DAG, and
        // `pos_of` is its inverse.
        debug_assert!(
            {
                let mut seen = vec![false; p.n()];
                order.iter().enumerate().all(|(k, &u)| {
                    let fresh = !std::mem::replace(&mut seen[u as usize], true);
                    fresh
                        && pos_of[u as usize] as usize == k
                        && dag.parents(u).iter().all(|&q| (pos_of[q as usize] as usize) < k)
                })
            },
            "plan order must be a topological permutation with inverse pos_of"
        );
        Plan {
            variant,
            order,
            pos_of,
            dag,
            nec_class,
            cache_slot,
            slot_count,
            sce,
            root,
            induced_filters,
        }
    }
}

/// NEC-equivalent vertices share a candidate-cache slot when their
/// dependency parents (edge and negation) are identical, because then
/// their signatures and candidate sets coincide.
fn assign_cache_slots(dag: &Dag, nec_class: &[u32], n: usize) -> (Vec<u32>, usize) {
    let mut groups: FxHashMap<(u32, Vec<VertexId>, Vec<VertexId>), u32> = FxHashMap::default();
    let mut slots = vec![0u32; n];
    let mut next = 0u32;
    for u in 0..n as VertexId {
        let key =
            (nec_class[u as usize], dag.parents(u).to_vec(), dag.negation_parents(u).to_vec());
        let slot = *groups.entry(key).or_insert_with(|| {
            let s = next;
            next += 1;
            s
        });
        slots[u as usize] = slot;
    }
    (slots, next as usize)
}

/// Fig. 12's static measurement: which vertices have an earlier
/// `H`-independent vertex, and whether empty clusters make the pair's
/// injectivity free.
fn analyze_sce(catalog: &Catalog<'_>, dag: &Dag, order: &[VertexId]) -> SceAnalysis {
    let anc = dag.ancestor_sets(order);
    let p = catalog.pattern();
    let mut sce_vertices = 0usize;
    let mut cluster_sce = 0usize;
    let mut sce_pairs = 0usize;
    let mut cluster_sce_pairs = 0usize;
    for (k, &u) in order.iter().enumerate() {
        let mut has_sce = false;
        let mut via_cluster = false;
        for &w in order.iter().take(k) {
            if Dag::independent(&anc, u, w) {
                has_sce = true;
                sce_pairs += 1;
                if !catalog.labels_ever_adjacent(p.label(u), p.label(w)) {
                    via_cluster = true;
                    cluster_sce_pairs += 1;
                }
            }
        }
        if has_sce {
            sce_vertices += 1;
            if via_cluster {
                cluster_sce += 1;
            }
        }
    }
    SceAnalysis {
        sce_vertices,
        cluster_sce_vertices: cluster_sce,
        total_vertices: order.len(),
        sce_pairs,
        cluster_sce_pairs,
    }
}

/// Compile `Φ*` into the factorized execution tree.
///
/// Component discovery costs O(|suffix| + |E_H|) per sequenced vertex, so
/// for very large patterns with dense dependency DAGs — where the suffix
/// essentially never decomposes — we fall back to a plain sequence rather
/// than pay a quadratic compile cost (the paper's 2000-vertex plans must
/// generate in seconds, Fig. 10).
fn build_exec_tree(
    catalog: &Catalog<'_>,
    dag: &Dag,
    order: &[VertexId],
    variant: Variant,
) -> ExecNode {
    if order.len() > 512 && dag.edge_count() > 4 * order.len() {
        let mut node = ExecNode::Done;
        for &u in order.iter().rev() {
            node = ExecNode::Seq { u, next: Box::new(node) };
        }
        return node;
    }
    build_tree_rec(catalog, dag, order, variant)
}

fn build_tree_rec(
    catalog: &Catalog<'_>,
    dag: &Dag,
    suffix: &[VertexId],
    variant: Variant,
) -> ExecNode {
    if suffix.is_empty() {
        return ExecNode::Done;
    }
    let components = h_components(dag, suffix);
    if components.len() > 1 && split_safe(catalog, &components, variant) {
        return ExecNode::Split {
            components: components.into_iter().map(|c| seq_of(catalog, dag, &c, variant)).collect(),
        };
    }
    seq_of(catalog, dag, suffix, variant)
}

/// Sequence the first vertex, then retry decomposition on the remainder.
fn seq_of(catalog: &Catalog<'_>, dag: &Dag, list: &[VertexId], variant: Variant) -> ExecNode {
    ExecNode::Seq { u: list[0], next: Box::new(build_tree_rec(catalog, dag, &list[1..], variant)) }
}

/// Connected components of `H` restricted to `suffix` (order preserved
/// within each component).
fn h_components(dag: &Dag, suffix: &[VertexId]) -> Vec<Vec<VertexId>> {
    let n = dag.n();
    let mut in_suffix = BitSet::new(n);
    for &u in suffix {
        in_suffix.insert(u as usize);
    }
    let mut comp_of: Vec<u32> = vec![u32::MAX; n];
    let mut next_comp = 0u32;
    for &u in suffix {
        if comp_of[u as usize] != u32::MAX {
            continue;
        }
        let comp = next_comp;
        next_comp += 1;
        let mut stack = vec![u];
        comp_of[u as usize] = comp;
        while let Some(v) = stack.pop() {
            for &w in dag.children(v).iter().chain(dag.parents(v)) {
                if in_suffix.contains(w as usize) && comp_of[w as usize] == u32::MAX {
                    comp_of[w as usize] = comp;
                    stack.push(w);
                }
            }
        }
    }
    let mut components: Vec<Vec<VertexId>> = vec![Vec::new(); next_comp as usize];
    for &u in suffix {
        components[comp_of[u as usize] as usize].push(u);
    }
    components
}

/// Whether counting the components independently and multiplying is sound:
/// homomorphic matching always (no injectivity); injective variants only
/// when no label is shared across components, so candidate sets cannot
/// collide. Cross-component induced constraints are already impossible —
/// any label-adjacent non-neighbor pair carries a negation dependency and
/// would have merged the components.
fn split_safe(catalog: &Catalog<'_>, components: &[Vec<VertexId>], variant: Variant) -> bool {
    if !variant.injective() {
        return true;
    }
    let p = catalog.pattern();
    let mut seen: FxHashMap<csce_graph::Label, usize> = FxHashMap::default();
    for (ci, comp) in components.iter().enumerate() {
        for &u in comp {
            match seen.entry(p.label(u)) {
                std::collections::hash_map::Entry::Occupied(e) if *e.get() != ci => return false,
                std::collections::hash_map::Entry::Occupied(_) => {}
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ci);
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{Graph, GraphBuilder, NO_LABEL};

    fn fig1_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn plan_for(p: &Graph, g: &Graph, variant: Variant, config: PlannerConfig) -> Plan {
        let gc = build_ccsr(g).unwrap();
        let star = read_csr(&gc, p, variant);
        let catalog = Catalog::new(p, &star);
        Planner::new(config).plan(&catalog, variant)
    }

    #[test]
    fn plan_is_topological_permutation() {
        let p = fig1_pattern();
        let plan = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        for u in 0..8u32 {
            for &child in plan.dag.children(u) {
                assert!(plan.pos_of[u as usize] < plan.pos_of[child as usize]);
            }
        }
    }

    #[test]
    fn sce_analysis_finds_independent_regions() {
        let p = fig1_pattern();
        let plan = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        // The paper's R1/R2 example: u3 and u4/u5-side candidates are
        // independent, so several vertices exhibit SCE.
        assert!(plan.sce.sce_vertices > 0);
        assert!(plan.sce.sce_fraction() > 0.3);
        assert_eq!(plan.sce.total_vertices, 8);
    }

    #[test]
    fn exec_tree_splits_star_leaves() {
        // Star with distinct-label leaves: after the center, every leaf is
        // its own H-component with disjoint labels -> full split.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_vertex(3);
        for leaf in 1..4 {
            b.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let p = b.build();
        let plan = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        assert_eq!(plan.root.split_count(), 1);
        match &plan.root {
            ExecNode::Seq { next, .. } => match next.as_ref() {
                ExecNode::Split { components } => assert_eq!(components.len(), 3),
                other => panic!("expected split after center, got {other:?}"),
            },
            other => panic!("expected Seq root, got {other:?}"),
        }
    }

    #[test]
    fn same_label_leaves_do_not_split_when_injective() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let p = b.build();
        let plan_e = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        assert_eq!(plan_e.root.split_count(), 0, "injective: shared label blocks split");
        let plan_h = plan_for(&p, &p, Variant::Homomorphic, PlannerConfig::csce());
        assert_eq!(plan_h.root.split_count(), 1, "homomorphic: split is safe");
    }

    #[test]
    fn nec_leaves_share_cache_slots() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let p = b.build();
        let plan = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        assert_eq!(plan.cache_slot[1], plan.cache_slot[2]);
        assert_ne!(plan.cache_slot[0], plan.cache_slot[1]);
        assert_eq!(plan.slot_count, 2);
        let no_nec = plan_for(
            &p,
            &p,
            Variant::EdgeInduced,
            PlannerConfig { nec: false, ..PlannerConfig::csce() },
        );
        assert_eq!(no_nec.slot_count, 3);
    }

    #[test]
    fn config_presets_differ() {
        let p = fig1_pattern();
        let full = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::csce());
        let ri = plan_for(&p, &p, Variant::EdgeInduced, PlannerConfig::ri_only());
        // Both are valid permutations; they need not agree.
        assert_eq!(full.order.len(), ri.order.len());
        assert!(ri.slot_count == 8, "no NEC sharing in RI preset");
    }

    #[test]
    fn vertex_induced_plan_has_negation_parents() {
        let p = fig1_pattern();
        // Use a data graph where C-C edges exist so u3-u4 gets a negation
        // dependency: P itself has no C-C edge, so build a richer G.
        let mut gb = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0, 2] {
            gb.add_vertex(l);
        }
        for (s, d) in
            [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7), (2, 8), (3, 8)]
        {
            gb.add_edge(s, d, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let plan = plan_for(&p, &g, Variant::VertexInduced, PlannerConfig::csce());
        let has_negation = (0..8u32).any(|u| !plan.dag.negation_parents(u).is_empty());
        assert!(has_negation);
    }
}
