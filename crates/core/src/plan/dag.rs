//! The candidate-dependency DAG `H` — Algorithm 2 (`BuildDAG`).
//!
//! Given a matching order `Φ`, the candidates of a later pattern vertex
//! depend on the mapping of an earlier one in two ways:
//!
//! * **edge dependencies** — the pair is adjacent in `P`: the later
//!   vertex's candidates are neighbor rows of the earlier one's mapping;
//! * **negation dependencies** (vertex-induced only) — the pair is *not*
//!   adjacent in `P` but the data graph contains edges between their
//!   labels (`∃ α ∈ (Φ[i], Φ[j])*-clusters, |α| > 0`), so induced
//!   matching must subtract the earlier mapping's data neighbors.
//!
//! Two pattern vertices with *no path* between them in `H` have
//! sequentially equivalent candidates (Definition 1) — the engine reuses
//! those candidate sets instead of recomputing them.
//!
//! One deliberate deviation from the paper's pseudo-code: Algorithm 2
//! line 7 only adds a negation dependency `(Φ[i], Φ[j])` when some
//! `Φ[k], k < i` is already a `P`-neighbor of `Φ[j]`. We relax `k < i` to
//! `k < j` (the later vertex has *some* earlier neighbor, which under a
//! connected GCF order always holds), because the injectivity-style
//! re-filtering the paper applies on reuse does not cover cross-mapping
//! negation: a candidate set computed under one mapping of `Φ[i]` is not
//! valid for another whenever data edges exist between the two labels.
//! The relaxation only adds dependency edges, so it is conservative —
//! everything SCE reuses under our `H` is reused soundly.

use crate::bitset::BitSet;
use crate::catalog::Catalog;
use csce_graph::{Variant, VertexId};

/// The dependency DAG over pattern vertices (indexed by vertex id, not by
/// plan position, so it survives LDSF reordering).
#[derive(Clone, Debug)]
pub struct Dag {
    n: usize,
    /// Children (outgoing dependency targets) per vertex, deduplicated.
    out: Vec<Vec<VertexId>>,
    /// Parents (incoming dependency sources) per vertex, deduplicated.
    inp: Vec<Vec<VertexId>>,
    /// Edge dependencies with the pattern-edge index that realizes each:
    /// `edge_parents[u]` lists `(earlier vertex, pattern edge idx)`.
    edge_parents: Vec<Vec<(VertexId, usize)>>,
    /// Negation dependencies: earlier non-neighbors whose labels are ever
    /// adjacent in the data graph (vertex-induced only; empty otherwise).
    negation_parents: Vec<Vec<VertexId>>,
}

/// Algorithm 2: build the dependency DAG for `Φ` under a variant.
pub fn build_dag(catalog: &Catalog<'_>, phi: &[VertexId], variant: Variant) -> Dag {
    let p = catalog.pattern();
    let n = p.n();
    debug_assert_eq!(phi.len(), n, "Φ must order every pattern vertex");
    let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut inp: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut edge_parents: Vec<Vec<(VertexId, usize)>> = vec![Vec::new(); n];
    let mut negation_parents: Vec<Vec<VertexId>> = vec![Vec::new(); n];

    // Pattern-edge index lookup per unordered pair, so the Φ² sweep does
    // not rescan the edge list (keeps 2000-vertex plan generation fast).
    let mut pair_edges: csce_graph::FxHashMap<(VertexId, VertexId), Vec<usize>> =
        csce_graph::FxHashMap::default();
    for (eidx, e) in p.edges().iter().enumerate() {
        pair_edges.entry((e.src.min(e.dst), e.src.max(e.dst))).or_default().push(eidx);
    }
    for j in 1..n {
        let uj = phi[j];
        let mut has_earlier_neighbor = false;
        for &ui in phi.iter().take(j) {
            if p.connected(ui, uj) {
                has_earlier_neighbor = true;
                out[ui as usize].push(uj);
                inp[uj as usize].push(ui);
                for &eidx in &pair_edges[&(ui.min(uj), ui.max(uj))] {
                    edge_parents[uj as usize].push((ui, eidx));
                }
            }
        }
        if variant == Variant::VertexInduced && has_earlier_neighbor {
            for &ui in phi.iter().take(j) {
                if p.connected(ui, uj) {
                    continue;
                }
                if catalog.labels_ever_adjacent(p.label(ui), p.label(uj)) {
                    out[ui as usize].push(uj);
                    inp[uj as usize].push(ui);
                    negation_parents[uj as usize].push(ui);
                }
            }
        }
    }
    for list in out.iter_mut().chain(inp.iter_mut()) {
        list.sort_unstable();
        list.dedup();
    }
    Dag { n, out, inp, edge_parents, negation_parents }
}

impl Dag {
    /// Construct a bare dependency graph from explicit arcs, without any
    /// pattern or catalog. Intended for validation tooling and tests that
    /// need to exercise structurally *invalid* inputs (e.g. a cyclic `H`)
    /// that [`build_dag`] can never produce; carries no edge or negation
    /// dependency detail.
    pub fn from_arcs(n: usize, arcs: &[(VertexId, VertexId)]) -> Dag {
        let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut inp: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(a, b) in arcs {
            out[a as usize].push(b);
            inp[b as usize].push(a);
        }
        for list in out.iter_mut().chain(inp.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        Dag {
            n,
            out,
            inp,
            edge_parents: vec![Vec::new(); n],
            negation_parents: vec![Vec::new(); n],
        }
    }

    /// Number of pattern vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Children of `u` (vertices whose candidates depend on `u`).
    #[inline]
    pub fn children(&self, u: VertexId) -> &[VertexId] {
        &self.out[u as usize]
    }

    /// Parents of `u` (vertices `u`'s candidates depend on).
    #[inline]
    pub fn parents(&self, u: VertexId) -> &[VertexId] {
        &self.inp[u as usize]
    }

    /// `(parent, pattern edge idx)` pairs realizing `u`'s edge
    /// dependencies; a parent appears once per connecting pattern edge.
    #[inline]
    pub fn edge_parents(&self, u: VertexId) -> &[(VertexId, usize)] {
        &self.edge_parents[u as usize]
    }

    /// Negation-dependency parents of `u` (vertex-induced only).
    #[inline]
    pub fn negation_parents(&self, u: VertexId) -> &[VertexId] {
        &self.negation_parents[u as usize]
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|l| l.len()).sum()
    }

    /// Ancestor bit sets: `anc[u]` contains every vertex with a path to
    /// `u`. O(V·E/64) via one pass in topological (plan) order.
    pub fn ancestor_sets(&self, phi: &[VertexId]) -> Vec<BitSet> {
        let mut anc = vec![BitSet::new(self.n); self.n];
        for &u in phi {
            // Parents are all earlier in Φ, so their sets are complete.
            let mut set = BitSet::new(self.n);
            for &parent in self.parents(u) {
                set.insert(parent as usize);
                set.union_with(&anc[parent as usize]);
            }
            anc[u as usize] = set;
        }
        anc
    }

    /// Whether `a` and `b` are independent — no path in either direction —
    /// given precomputed ancestor sets. Independent vertices have
    /// sequentially equivalent candidates (Definition 1).
    pub fn independent(anc: &[BitSet], a: VertexId, b: VertexId) -> bool {
        a != b && !anc[a as usize].contains(b as usize) && !anc[b as usize].contains(a as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{Graph, GraphBuilder, NO_LABEL};

    /// The paper's Fig. 1 pattern P (see csce-graph's graph.rs tests):
    /// directed edges u1→u2, u1→u3, u1→u6, u7→u1, u2→u4, u5→u2, u6→u5,
    /// u6→u8 with labels A,B,C,C,B,A,D,A.
    fn fig1_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    /// A small data graph with every label pair adjacent except D-D, D-B,
    /// D-C (D only connects A, as in the paper's example).
    fn fig1_like_data() -> Graph {
        let mut b = GraphBuilder::new();
        // Two vertices per label A,B,C plus one D.
        for &l in &[0u32, 0, 1, 1, 2, 2, 3] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 2), (0, 4), (1, 3), (2, 4), (2, 3), (4, 5), (0, 1), (6, 0), (6, 1)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn dag_for(variant: Variant) -> (Dag, Vec<VertexId>) {
        let p = fig1_pattern();
        let g = fig1_like_data();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, variant);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = (0..8).collect(); // Φ1 = u1..u8
        let dag = build_dag(&catalog, &phi, variant);
        (dag, phi)
    }

    #[test]
    fn edge_induced_dag_mirrors_pattern_edges() {
        let (dag, _) = dag_for(Variant::EdgeInduced);
        // Fig. 5 (a): H has exactly the 8 pattern edges, oriented by Φ1.
        assert_eq!(dag.edge_count(), 8);
        assert_eq!(dag.parents(1), &[0]); // u2 depends on u1
        assert_eq!(dag.parents(4), &[1]); // u5 depends on u2 (u5→u2 edge)
        assert_eq!(dag.parents(6), &[0]); // u7 depends on u1
        assert!(dag.negation_parents(3).is_empty());
    }

    #[test]
    fn fig5a_independence_of_u3_and_u4() {
        let (dag, phi) = dag_for(Variant::EdgeInduced);
        let anc = dag.ancestor_sets(&phi);
        // The paper: candidates of u3 (id 2) and u4 (id 3) are independent.
        assert!(Dag::independent(&anc, 2, 3));
        // But u2 (id 1) depends on u1 (id 0).
        assert!(!Dag::independent(&anc, 0, 1));
        // Transitive: u4 (id 3) depends on u1 through u2.
        assert!(!Dag::independent(&anc, 0, 3));
    }

    #[test]
    fn vertex_induced_adds_negation_dependencies() {
        let (dag_e, _) = dag_for(Variant::EdgeInduced);
        let (dag_v, _) = dag_for(Variant::VertexInduced);
        assert!(dag_v.edge_count() > dag_e.edge_count());
        // u3 (id 2, label C) is not adjacent to u4 (id 3, label C) in P,
        // and the data graph has C-C edges (4->5), so vertex-induced adds
        // the dependency.
        assert!(dag_v.negation_parents(3).contains(&2));
        // u7 (id 6, label D): D only connects A in the data, so no
        // negation dependency from u2 (label B, id 1) to u7.
        assert!(!dag_v.negation_parents(6).contains(&1));
        // ...but from u6 (label A, id 5) there is one (D-A edges exist).
        assert!(dag_v.negation_parents(6).contains(&5));
    }

    #[test]
    fn edge_parents_carry_pattern_edge_indexes() {
        let (dag, _) = dag_for(Variant::EdgeInduced);
        let p = fig1_pattern();
        for u in 0..8u32 {
            for &(parent, eidx) in dag.edge_parents(u) {
                let e = &p.edges()[eidx];
                assert!(
                    (e.src, e.dst) == (parent, u) || (e.src, e.dst) == (u, parent),
                    "edge index consistent with the dependency pair"
                );
            }
        }
        // u2 (id 1) has two edge parents once u1 and u5 are both earlier:
        // from u1 (edge u1→u2). u5 (id 4) comes after u2 in Φ1, so only 1.
        assert_eq!(dag.edge_parents(1).len(), 1);
    }

    #[test]
    fn homomorphic_matches_edge_induced_dag() {
        let (dag_e, _) = dag_for(Variant::EdgeInduced);
        let (dag_h, _) = dag_for(Variant::Homomorphic);
        assert_eq!(dag_e.edge_count(), dag_h.edge_count());
    }

    #[test]
    fn ancestor_sets_are_transitive() {
        let (dag, phi) = dag_for(Variant::EdgeInduced);
        let anc = dag.ancestor_sets(&phi);
        // u8 (id 7) <- u6 (id 5) <- u5 (id 4) <- u2 (id 1) <- u1 (id 0).
        assert!(anc[7].contains(5));
        assert!(anc[7].contains(0));
        assert!(anc[7].contains(1), "u2 reaches u8 via u5 and u6");
        assert!(!anc[7].contains(2), "u3 is not an ancestor of u8");
        assert!(!anc[7].contains(6), "u7 is not an ancestor of u8");
    }
}
