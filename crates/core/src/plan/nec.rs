//! Neighborhood Equivalence Classes (NEC) over pattern vertices.
//!
//! TurboISO's NEC concept, which CSCE applies at the end of optimization
//! (§III): two pattern vertices with the same label and identical
//! neighborhoods (up to each other) always have identical candidate sets,
//! so the executor computes the set once per class and shares it. The
//! classic example is a star's leaves; the known limitation — a cycle's
//! vertices are pairwise inequivalent — is what SCE goes beyond.

use csce_graph::graph::{Graph, Orient};
use csce_graph::pattern::pair_code;
use csce_graph::{Label, VertexId};

/// A neighborhood entry used for equivalence comparison.
type NbrSig = (VertexId, Orient, Label);

/// Compute the NEC class of every pattern vertex. Classes are numbered
/// densely from 0; `class[u] == class[w]` iff `u` and `w` are
/// neighborhood-equivalent.
pub fn nec_classes(p: &Graph) -> Vec<u32> {
    let n = p.n();
    let sigs: Vec<Vec<NbrSig>> = (0..n as VertexId)
        .map(|u| p.adj(u).iter().map(|a| (a.nbr, a.orient, a.elabel)).collect())
        .collect();
    let mut class: Vec<u32> = vec![u32::MAX; n];
    let mut reps: Vec<VertexId> = Vec::new();
    for u in 0..n as VertexId {
        let mut assigned = None;
        for (cid, &rep) in reps.iter().enumerate() {
            if equivalent(p, &sigs, rep, u) {
                assigned = Some(cid as u32);
                break;
            }
        }
        match assigned {
            Some(cid) => class[u as usize] = cid,
            None => {
                class[u as usize] = reps.len() as u32;
                reps.push(u);
            }
        }
    }
    class
}

/// Whether `u` and `w` are neighborhood-equivalent.
fn equivalent(p: &Graph, sigs: &[Vec<NbrSig>], u: VertexId, w: VertexId) -> bool {
    if u == w {
        return true;
    }
    if p.label(u) != p.label(w) {
        return false;
    }
    // Their mutual connection must look the same from both sides (e.g. an
    // undirected edge or antiparallel arcs); a single directed edge makes
    // them distinguishable.
    if pair_code(p, u, w) != pair_code(p, w, u) {
        return false;
    }
    // Neighborhoods excluding each other must match exactly.
    let strip = |list: &[NbrSig], other: VertexId| -> Vec<NbrSig> {
        list.iter().copied().filter(|&(nbr, _, _)| nbr != other).collect()
    };
    if strip(&sigs[u as usize], w) != strip(&sigs[w as usize], u) {
        return false;
    }
    // Cycle guard: two *non-adjacent* vertices with two or more common
    // neighbors sit on opposite corners of a 4-cycle (e.g. C4 itself,
    // K(2,n)). Equal neighborhoods make their *initial* candidate sets
    // equal, but unlike a star's leaves they are not interchangeable
    // under every downstream constraint (an induced check between them
    // distinguishes concrete candidate pairs), so grouping them as
    // equivalent leaves is the misgrouping documented in the paper's NEC
    // discussion. Fall back to singleton classes for such pairs; adjacent
    // equivalent vertices (clique NEC) are unaffected.
    if pair_code(p, u, w).is_empty() && common_neighbors(&sigs[u as usize], &sigs[w as usize]) >= 2
    {
        return false;
    }
    true
}

/// Number of distinct vertices adjacent (in any orientation) to both
/// endpoints of a candidate pair.
fn common_neighbors(a: &[NbrSig], b: &[NbrSig]) -> usize {
    let ids = |sig: &[NbrSig]| -> Vec<VertexId> {
        let mut v: Vec<VertexId> = sig.iter().map(|&(nbr, _, _)| nbr).collect();
        v.dedup();
        v
    };
    let (ia, ib) = (ids(a), ids(b));
    ia.iter().filter(|x| ib.contains(x)).count()
}

/// Group vertices by class id: `members[c]` lists the vertices of class `c`.
pub fn class_members(class: &[u32]) -> Vec<Vec<VertexId>> {
    let count = class.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut members = vec![Vec::new(); count];
    for (u, &c) in class.iter().enumerate() {
        members[c as usize].push(u as VertexId);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{GraphBuilder, NO_LABEL};

    #[test]
    fn star_leaves_share_a_class() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        for _ in 0..3 {
            b.add_vertex(1);
        }
        for leaf in 1..4 {
            b.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let class = nec_classes(&b.build());
        assert_eq!(class[1], class[2]);
        assert_eq!(class[2], class[3]);
        assert_ne!(class[0], class[1]);
        assert_eq!(class_members(&class).len(), 2);
    }

    #[test]
    fn triangle_vertices_are_equivalent() {
        // Adjacent equivalent vertices (clique NEC): all three triangle
        // vertices with equal labels.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        for (x, y) in [(0, 1), (1, 2), (0, 2)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let class = nec_classes(&b.build());
        assert_eq!(class, vec![0, 0, 0]);
    }

    #[test]
    fn cycle_limitation_from_the_paper() {
        // TurboISO's NEC cannot merge a 4-cycle's vertices: adjacent
        // corners have different neighborhoods, and opposite corners —
        // despite sharing both neighbors — are not interchangeable leaves
        // (the induced check between them tells candidate pairs apart), so
        // the cycle guard forces singletons instead of misgrouping them.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let class = nec_classes(&b.build());
        assert_eq!(class, vec![0, 1, 2, 3], "every cycle vertex is a singleton class");
    }

    #[test]
    fn labeled_cycle_corners_stay_singleton() {
        // The labeled variant of the misgrouping: opposite corners of a
        // labeled C4 have equal labels and identical neighborhoods, yet
        // must not share a class (see `labeled_cycle_factorization_parity`
        // in `tests/engine_vs_oracle.rs` for the count-level regression).
        let mut b = GraphBuilder::new();
        for label in [0u32, 1, 0, 1] {
            b.add_vertex(label);
        }
        for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let class = nec_classes(&b.build());
        assert_eq!(class, vec![0, 1, 2, 3]);
    }

    #[test]
    fn complete_bipartite_sides_stay_singleton() {
        // K(2,3): every same-side pair is non-adjacent with >= 2 common
        // neighbors, so the cycle guard applies to both sides.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(5);
        for x in 0..2 {
            for y in 2..5 {
                b.add_undirected_edge(x, y, NO_LABEL).unwrap();
            }
        }
        let class = nec_classes(&b.build());
        assert_eq!(class, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shared_single_neighbor_still_merges() {
        // The guard needs >= 2 common neighbors: plain star leaves (one
        // shared hub) keep merging.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let class = nec_classes(&b.build());
        assert_eq!(class[1], class[2]);
    }

    #[test]
    fn labels_and_direction_split_classes() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap(); // out-leaf
        b.add_edge(0, 2, NO_LABEL).unwrap(); // out-leaf
        b.add_edge(3, 0, NO_LABEL).unwrap(); // in-leaf
        let class = nec_classes(&b.build());
        assert_eq!(class[1], class[2], "same-direction leaves merge");
        assert_ne!(class[1], class[3], "direction splits");
    }

    #[test]
    fn edge_labels_split_classes() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_undirected_edge(0, 1, 5).unwrap();
        b.add_undirected_edge(0, 2, 6).unwrap();
        let class = nec_classes(&b.build());
        assert_ne!(class[1], class[2]);
    }
}
