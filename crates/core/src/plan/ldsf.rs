//! `GeneratePlan` — Algorithm 4: the Largest-Descendant-Size-First (LDSF)
//! topological order.
//!
//! Different matching orders can induce the same dependency DAG `H`, and
//! any topological order of `H` is a valid matching order with identical
//! dependencies. Among the ready vertices (all `H`-parents placed), LDSF
//! picks the one with the largest descendant size — maximizing how many
//! later mappings can be reused — and breaks ties by the smallest
//! connecting-cluster size, then the lowest data-graph label frequency,
//! then the vertex id (for determinism). Unlike Kahn's algorithm, which
//! returns an arbitrary topological order, this returns the specific one
//! the heuristics prefer.

use crate::catalog::Catalog;
use crate::plan::dag::Dag;
use csce_graph::VertexId;

/// Algorithm 4: produce the final matching order `Φ*`.
pub fn ldsf_order(catalog: &Catalog<'_>, dag: &Dag, descendant_size: &[usize]) -> Vec<VertexId> {
    let n = dag.n();
    let mut remaining_parents: Vec<usize> =
        (0..n).map(|u| dag.parents(u as VertexId).len()).collect();
    let mut ready: Vec<VertexId> =
        (0..n as VertexId).filter(|&u| remaining_parents[u as usize] == 0).collect();
    let mut placed = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    while !ready.is_empty() {
        // Rank the frontier: largest descendant size; ties → smallest
        // cluster among edges to already-placed neighbors; ties → lowest
        // label frequency; ties → id. The frontier is small, a linear
        // scan beats maintaining a priority queue under changing keys.
        let mut best_idx = 0usize;
        for i in 1..ready.len() {
            if prefer(catalog, descendant_size, &placed, ready[i], ready[best_idx]) {
                best_idx = i;
            }
        }
        let u = ready.swap_remove(best_idx);
        placed[u as usize] = true;
        order.push(u);
        for &child in dag.children(u) {
            remaining_parents[child as usize] -= 1;
            if remaining_parents[child as usize] == 0 {
                ready.push(child);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "H is acyclic, all vertices get placed");
    order
}

/// Whether candidate `a` should be picked over `b`.
fn prefer(
    catalog: &Catalog<'_>,
    descendant_size: &[usize],
    placed: &[bool],
    a: VertexId,
    b: VertexId,
) -> bool {
    let (da, db) = (descendant_size[a as usize], descendant_size[b as usize]);
    if da != db {
        return da > db;
    }
    let (ca, cb) =
        (min_cluster_to_placed(catalog, placed, a), min_cluster_to_placed(catalog, placed, b));
    if ca != cb {
        return ca < cb;
    }
    let (fa, fb) = (
        catalog.label_frequency(catalog.pattern().label(a)),
        catalog.label_frequency(catalog.pattern().label(b)),
    );
    if fa != fb {
        return fa < fb;
    }
    a < b
}

/// The smallest `|I_C|` among clusters of pattern edges between `x` and an
/// already-placed vertex (`usize::MAX` when there is none, e.g. for the
/// first vertex).
fn min_cluster_to_placed(catalog: &Catalog<'_>, placed: &[bool], x: VertexId) -> usize {
    let mut best = usize::MAX;
    for (eidx, _) in catalog.incident_edges(x) {
        let e = &catalog.pattern().edges()[eidx];
        let other = if e.src == x { e.dst } else { e.src };
        if placed[other as usize] {
            best = best.min(catalog.cluster_size(eidx));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dag::build_dag;
    use crate::plan::descendant::descendant_sizes;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{Graph, GraphBuilder, Variant, NO_LABEL};

    fn fig1_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn produces_topological_order_of_h() {
        let p = fig1_pattern();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = (0..8).collect();
        let dag = build_dag(&catalog, &phi, Variant::EdgeInduced);
        let sizes = descendant_sizes(&dag);
        let order = ldsf_order(&catalog, &dag, &sizes);
        assert_eq!(order.len(), 8);
        let mut pos = [0usize; 8];
        for (k, &u) in order.iter().enumerate() {
            pos[u as usize] = k;
        }
        for u in 0..8u32 {
            for &child in dag.children(u) {
                assert!(pos[u as usize] < pos[child as usize], "H edge respected");
            }
        }
        // u1 (id 0) has the only empty parent set -> first.
        assert_eq!(order[0], 0);
    }

    #[test]
    fn larger_descendants_come_first_among_ready() {
        let p = fig1_pattern();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = (0..8).collect();
        let dag = build_dag(&catalog, &phi, Variant::EdgeInduced);
        let sizes = descendant_sizes(&dag);
        let order = ldsf_order(&catalog, &dag, &sizes);
        // After u1, ready = {u2, u3, u6, u7} with descendant sizes
        // {2, 0, 2, 0}: u2/u6 (sizes 2) precede u3/u7 (size 0).
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(2) && pos(1) < pos(6));
        assert!(pos(5) < pos(2) && pos(5) < pos(6));
    }

    #[test]
    fn deterministic() {
        let p = fig1_pattern();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = (0..8).collect();
        let dag = build_dag(&catalog, &phi, Variant::EdgeInduced);
        let sizes = descendant_sizes(&dag);
        assert_eq!(ldsf_order(&catalog, &dag, &sizes), ldsf_order(&catalog, &dag, &sizes));
    }
}
