//! The Greatest-Constraint-First (GCF) initial matching order (§VI).
//!
//! GCF is RI's heuristic: grow the order one vertex at a time, always
//! picking the unordered vertex that is constrained by the most already-
//! ordered vertices. Ties cascade through RI's three rules
//! (`|T¹| → |T²| → |T³|`, Eq. 1) and are finally broken — this is CSCE's
//! improvement — by the data graph, through CCSR cluster sizes (Eq. 2):
//! the candidate whose connecting cluster is smallest is expected to have
//! the fewest candidates. Plain RI (no data awareness) is available via
//! [`GcfConfig::ri_only`], which the plan-quality experiment (Fig. 13)
//! compares against.

use crate::catalog::Catalog;
use csce_graph::pattern::undirected_neighbors;
use csce_graph::VertexId;

/// Configuration of the GCF stage.
#[derive(Clone, Copy, Debug)]
pub struct GcfConfig {
    /// Use CCSR cluster sizes to break ties (the paper's "CCSR to break
    /// ties"); `false` reproduces plain RI.
    pub cluster_tiebreak: bool,
}

impl Default for GcfConfig {
    fn default() -> Self {
        GcfConfig { cluster_tiebreak: true }
    }
}

impl GcfConfig {
    /// Plain RI: ties broken only by vertex id (deterministic stand-in for
    /// RI's arbitrary choice).
    pub fn ri_only() -> Self {
        GcfConfig { cluster_tiebreak: false }
    }
}

/// Compute the GCF matching order `Φ` over all pattern vertices.
///
/// The pattern must be connected; the planner checks this before calling.
pub fn gcf_order(catalog: &Catalog<'_>, config: GcfConfig) -> Vec<VertexId> {
    let p = catalog.pattern();
    let n = p.n();
    assert!(n > 0, "empty pattern");
    let neighbors: Vec<Vec<VertexId>> =
        (0..n as VertexId).map(|u| undirected_neighbors(p, u)).collect();

    let mut phi: Vec<VertexId> = Vec::with_capacity(n);
    let mut in_phi = vec![false; n];
    // Incrementally maintained RI rule counts, so the whole order costs
    // O(n² + Σdeg²) instead of re-deriving |T¹|/|T²|/|T³| per candidate —
    // 2000-vertex plans must generate in seconds (Fig. 10).
    // t[x] = [|T¹|, |T²|, |T³|]: ordered neighbors / unordered neighbors
    // touching the prefix / unordered neighbors touching nothing.
    let mut t: Vec<[usize; 3]> = (0..n).map(|x| [0, 0, neighbors[x].len()]).collect();
    // Number of ordered neighbors of each vertex ("touched" level).
    let mut touched = vec![0usize; n];

    let place = |v: VertexId,
                 phi: &mut Vec<VertexId>,
                 in_phi: &mut Vec<bool>,
                 t: &mut Vec<[usize; 3]>,
                 touched: &mut Vec<usize>| {
        phi.push(v);
        in_phi[v as usize] = true;
        // v leaves the unordered pool: each unordered neighbor x counted v
        // in T² (if v touched the prefix) or T³; v now counts in T¹.
        let v_was_touched = touched[v as usize] > 0;
        for &x in &neighbors[v as usize] {
            if in_phi[x as usize] {
                continue;
            }
            t[x as usize][0] += 1;
            if v_was_touched {
                t[x as usize][1] -= 1;
            } else {
                t[x as usize][2] -= 1;
            }
        }
        // Unordered neighbors of v become (more) touched; a first touch
        // migrates them from every unordered neighbor's T³ to T².
        for &j in &neighbors[v as usize] {
            touched[j as usize] += 1;
            if touched[j as usize] == 1 && !in_phi[j as usize] {
                for &x in &neighbors[j as usize] {
                    if !in_phi[x as usize] {
                        t[x as usize][2] -= 1;
                        t[x as usize][1] += 1;
                    }
                }
            }
        }
    };

    // First vertex: highest degree; ties by smallest incident cluster,
    // then by id.
    let first = (0..n as VertexId)
        .min_by(|&a, &b| {
            p.degree(b)
                .cmp(&p.degree(a))
                .then_with(|| {
                    if config.cluster_tiebreak {
                        catalog
                            .min_incident_cluster_size(a)
                            .cmp(&catalog.min_incident_cluster_size(b))
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .then(a.cmp(&b))
        })
        .expect("pattern has vertices");
    place(first, &mut phi, &mut in_phi, &mut t, &mut touched);

    while phi.len() < n {
        let mut best: Option<VertexId> = None;
        for x in 0..n as VertexId {
            if in_phi[x as usize] {
                continue;
            }
            match best {
                None => best = Some(x),
                Some(bx) => {
                    use std::cmp::Ordering::*;
                    match t[x as usize].cmp(&t[bx as usize]) {
                        Greater => best = Some(x),
                        Equal => {
                            let winner = if config.cluster_tiebreak {
                                cluster_tiebreak(catalog, &neighbors, &in_phi, x, bx)
                            } else {
                                x.min(bx)
                            };
                            if winner == x {
                                best = Some(x);
                            }
                        }
                        Less => {}
                    }
                }
            }
        }
        let next = best.expect("some vertex remains");
        place(next, &mut phi, &mut in_phi, &mut t, &mut touched);
    }
    phi
}

/// Eq. 2: pick the candidate whose relevant connecting cluster is
/// smallest; prefer `ω¹` (edges into the prefix), then `ω²`/`ω³` (edges to
/// unordered neighbors), then id.
fn cluster_tiebreak(
    catalog: &Catalog<'_>,
    neighbors: &[Vec<VertexId>],
    in_phi: &[bool],
    a: VertexId,
    b: VertexId,
) -> VertexId {
    let omega = |x: VertexId, towards_prefix: bool| -> usize {
        let mut best = usize::MAX;
        for (eidx, _) in catalog.incident_edges(x) {
            let e = &catalog.pattern().edges()[eidx];
            let other = if e.src == x { e.dst } else { e.src };
            if in_phi[other as usize] == towards_prefix {
                best = best.min(catalog.cluster_size(eidx));
            }
        }
        best
    };
    // ω¹ compares clusters on edges into the prefix; if neither candidate
    // has one (or they tie), fall through to the unordered side (ω²/ω³).
    let (a1, b1) = (omega(a, true), omega(b, true));
    if a1 != b1 {
        return if a1 < b1 { a } else { b };
    }
    let (a2, b2) = (omega(a, false), omega(b, false));
    if a2 != b2 {
        return if a2 < b2 { a } else { b };
    }
    // Lowest data-graph label frequency, then id, for determinism.
    let (fa, fb) = (
        catalog.label_frequency(catalog.pattern().label(a)),
        catalog.label_frequency(catalog.pattern().label(b)),
    );
    if fa != fb {
        return if fa < fb { a } else { b };
    }
    let _ = neighbors;
    a.min(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{Graph, GraphBuilder, Variant, NO_LABEL};

    fn star_pattern() -> Graph {
        // u0 center (degree 3), leaves u1..u3.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for leaf in 1..4 {
            b.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn simple_data() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(6);
        for (x, y) in [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn order_for(g: &Graph, p: &Graph, config: GcfConfig) -> Vec<VertexId> {
        let gc = build_ccsr(g).unwrap();
        let star = read_csr(&gc, p, Variant::EdgeInduced);
        let catalog = Catalog::new(p, &star);
        gcf_order(&catalog, config)
    }

    #[test]
    fn starts_with_highest_degree() {
        let p = star_pattern();
        let g = simple_data();
        let phi = order_for(&g, &p, GcfConfig::default());
        assert_eq!(phi[0], 0, "center has the highest degree");
        assert_eq!(phi.len(), 4);
        let mut sorted = phi.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "permutation of all vertices");
    }

    #[test]
    fn prefers_vertices_connected_to_prefix() {
        // Path u0-u1-u2-u3: after picking an endpoint of the path's
        // middle... pick highest degree (u1 or u2, both degree 2), then
        // every next vertex must neighbor the prefix (T1 >= 1).
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for i in 0..3 {
            b.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
        }
        let p = b.build();
        let g = simple_data();
        let phi = order_for(&g, &p, GcfConfig::default());
        // Every vertex after the first neighbors some earlier vertex.
        for k in 1..phi.len() {
            let has_earlier_neighbor = (0..k).any(|i| p.connected(phi[i], phi[k]));
            assert!(has_earlier_neighbor, "order is connected at position {k}");
        }
    }

    #[test]
    fn cluster_tiebreak_uses_data_graph() {
        // Pattern: center u0 (label 9 shared by all) with two leaves of
        // label 1 and label 2. Data: many (9)-(1) edges, one (9)-(2) edge.
        // With cluster tie-breaking the label-2 leaf is ordered first.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(9);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let p = pb.build();

        let mut gb = GraphBuilder::new();
        let c = gb.add_vertex(9);
        for _ in 0..5 {
            let leaf = gb.add_vertex(1);
            gb.add_undirected_edge(c, leaf, NO_LABEL).unwrap();
        }
        let two = gb.add_vertex(2);
        gb.add_undirected_edge(c, two, NO_LABEL).unwrap();
        let g = gb.build();

        let with = order_for(&g, &p, GcfConfig::default());
        assert_eq!(with, vec![0, 2, 1], "rare cluster first under CCSR tie-break");
        let without = order_for(&g, &p, GcfConfig::ri_only());
        assert_eq!(without, vec![0, 1, 2], "plain RI breaks ties by id");
    }

    #[test]
    fn deterministic() {
        let p = star_pattern();
        let g = simple_data();
        assert_eq!(
            order_for(&g, &p, GcfConfig::default()),
            order_for(&g, &p, GcfConfig::default())
        );
    }
}
