//! Human-readable plan rendering: the matching order, dependency
//! structure, SCE summary and factorized execution tree as text — an
//! `EXPLAIN` for subgraph matching plans, used by the CLI and examples.

use crate::plan::{ExecNode, Plan};
use std::fmt::Write as _;

/// Render the factorized execution tree with indentation.
pub fn render_tree(node: &ExecNode) -> String {
    let mut out = String::new();
    render_rec(node, 1, &mut out);
    out
}

fn render_rec(node: &ExecNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        ExecNode::Done => {
            let _ = writeln!(out, "{pad}emit");
        }
        ExecNode::Seq { u, next } => {
            let _ = writeln!(out, "{pad}match u{u}");
            render_rec(next, indent, out);
        }
        ExecNode::Split { components } => {
            let _ = writeln!(out, "{pad}split x{} (multiply counts)", components.len());
            for c in components {
                let _ = writeln!(out, "{pad}component:");
                render_rec(c, indent + 1, out);
            }
        }
    }
}

/// Render a full plan summary.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "variant: {}", plan.variant);
    let _ = writeln!(out, "matching order Φ*: {:?}", plan.order);
    let dep_edges = plan.dag.edge_count();
    let negations: usize =
        (0..plan.order.len() as u32).map(|u| plan.dag.negation_parents(u).len()).sum();
    let _ = writeln!(out, "dependency DAG: {dep_edges} edges ({negations} negation dependencies)");
    let _ = writeln!(
        out,
        "SCE: {}/{} vertices have an earlier independent vertex ({} cluster-driven)",
        plan.sce.sce_vertices, plan.sce.total_vertices, plan.sce.cluster_sce_vertices
    );
    let nec_classes = plan.nec_class.iter().copied().max().map_or(0, |m| m as usize + 1);
    let _ = writeln!(
        out,
        "NEC: {nec_classes} classes over {} vertices, {} candidate-cache slots",
        plan.order.len(),
        plan.slot_count
    );
    let _ = writeln!(out, "execution tree ({} splits):", plan.root.split_count());
    out.push_str(&render_tree(&plan.root));
    out
}

#[cfg(test)]
mod tests {
    use crate::catalog::Catalog;
    use crate::plan::{Planner, PlannerConfig};
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{GraphBuilder, Variant, NO_LABEL};

    #[test]
    fn explain_mentions_every_section() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let p = b.build();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let text = super::explain(&plan);
        for needle in
            ["variant", "matching order", "dependency DAG", "SCE", "NEC", "execution tree"]
        {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(text.contains("match u"));
        // The two distinct-label leaves split after the center.
        assert!(text.contains("split x2"));
    }
}
