//! `ComputeDescendant` — Algorithm 3.
//!
//! The descendant size of a DAG vertex is the number of distinct vertices
//! reachable from it; it measures how many later mappings depend on the
//! vertex, i.e. how much work becomes reusable when the vertex is placed
//! early (the LDSF rationale, §VI). Descendant *sets* are needed, not mere
//! counts, because children share descendants; the dynamic program unions
//! child sets bottom-up exactly as the paper's pseudo-code, realized with
//! bit sets.

use crate::bitset::BitSet;
use crate::plan::dag::Dag;
use csce_graph::VertexId;

/// Descendant size (`A_S`) of every pattern vertex.
pub fn descendant_sizes(dag: &Dag) -> Vec<usize> {
    let n = dag.n();
    // Process vertices children-first: repeatedly peel vertices whose
    // children are all done (reverse Kahn), as in Algorithm 3.
    let mut remaining_children: Vec<usize> =
        (0..n).map(|u| dag.children(u as VertexId).len()).collect();
    let mut ready: Vec<VertexId> =
        (0..n as VertexId).filter(|&u| remaining_children[u as usize] == 0).collect();
    let mut sets: Vec<BitSet> = vec![BitSet::new(n); n];
    let mut done = 0usize;
    while let Some(u) = ready.pop() {
        done += 1;
        // A_D[u] = union over children of ({child} ∪ A_D[child]).
        let mut set = BitSet::new(n);
        for &child in dag.children(u) {
            set.insert(child as usize);
            set.union_with(&sets[child as usize]);
        }
        sets[u as usize] = set;
        for &parent in dag.parents(u) {
            remaining_children[parent as usize] -= 1;
            if remaining_children[parent as usize] == 0 {
                ready.push(parent);
            }
        }
    }
    debug_assert_eq!(done, n, "H is acyclic so every vertex is processed");
    sets.iter().map(|s| s.count()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::dag::build_dag;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_graph::{GraphBuilder, Variant, NO_LABEL};

    /// Build the Fig. 1 pattern's edge-induced DAG under Φ1 = u1..u8 and
    /// return descendant sizes.
    fn fig1_descendants() -> Vec<usize> {
        let mut b = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        let p = b.build();
        // Data content is irrelevant for the edge-induced DAG; reuse P.
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = (0..8).collect();
        let dag = build_dag(&catalog, &phi, Variant::EdgeInduced);
        descendant_sizes(&dag)
    }

    #[test]
    fn fig5a_descendant_sizes() {
        let sizes = fig1_descendants();
        // H edges under Φ1: u1→{u2,u3,u6,u7}, u2→{u4,u5}, u6→{u5,u8},
        // u5→ (u5's pattern edge to u2 points backward: u2 earlier) —
        // direction in H is by Φ order: (u2,u5) since u2 before u5, and
        // (u2,u4), (u6,u8)... Descendants:
        // u3 (id 2): none -> 0? The paper's Fig. 5(c) speaks of
        // descendant size 1 counting the vertex itself... Here leaves have
        // 0 reachable vertices; the ordering only needs relative sizes.
        assert_eq!(sizes[2], 0, "u3 is a leaf");
        assert_eq!(sizes[3], 0, "u4 is a leaf");
        assert_eq!(sizes[7], 0, "u8 is a leaf");
        assert_eq!(sizes[6], 0, "u7 is a leaf in H (u1 comes first)");
        // H edges under Φ1 (earlier → later): u2→u4, u2→u5 (pattern edge
        // u5→u2 orients forward), u5→u6 (pattern edge u6→u5), u6→u8.
        // u2 reaches u4, u5, u6, u8 -> 4.
        assert_eq!(sizes[1], 4);
        // u6 reaches u8 only -> 1.
        assert_eq!(sizes[5], 1);
        // u5 reaches u6 and u8 -> 2.
        assert_eq!(sizes[4], 2);
        // u1 reaches all 7 others.
        assert_eq!(sizes[0], 7);
    }

    #[test]
    fn shared_descendants_counted_once() {
        // Diamond: 0→1, 0→2, 1→3, 2→3. Descendants of 0 = {1,2,3} = 3,
        // not 4 (3 shared by both branches).
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        let p = b.build();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let phi: Vec<VertexId> = vec![0, 1, 2, 3];
        let dag = build_dag(&catalog, &phi, Variant::EdgeInduced);
        let sizes = descendant_sizes(&dag);
        assert_eq!(sizes, vec![3, 1, 1, 0]);
    }
}
