//! The parallel match scheduler: dynamic chunked claiming of root
//! candidates plus cooperative cancellation.
//!
//! The paper evaluates single-threaded matching; the natural
//! data-parallel extension partitions the root vertex's candidate set.
//! A static split (round-robin `i % stride == offset`, kept on
//! [`Executor::with_root_partition`](super::Executor::with_root_partition)
//! as the ablation baseline) load-balances badly on skewed degree
//! distributions: one hub root can pin a whole worker while the others
//! idle. Here workers instead *claim* chunks of root-candidate indices
//! from a shared [`Scheduler`] cursor — a work-stealing loop without
//! per-task queues, since the root candidate order is identical in every
//! worker. Chunk size adapts to the candidate count ([`adaptive_chunk`])
//! so small candidate sets degrade to per-candidate claiming.
//!
//! The scheduler also owns the run's *shared* stop state: one deadline
//! (checked every 4096 recursion nodes) and one stop flag, so a timeout
//! or an early-stopping sink ([`FirstKSink`](super::FirstKSink)) in any
//! worker halts all of them instead of each worker finishing its slice.
//! Worker panics are caught, abort the remaining workers via the same
//! flag, and surface as an [`ExecError`] — never as a poisoned join.
//!
//! SCE-cache soundness is preserved by construction: claiming only
//! partitions the *root* loop, every worker runs the unchanged sequential
//! executor below it, and candidate caches (plus their parent-mapping
//! signatures) are worker-local.

use super::engine::Executor;
use super::sink::{CollectSink, FirstKSink, MatchSink};
use super::stats::ExecStats;
use super::RunConfig;
use crate::catalog::Catalog;
use crate::plan::Plan;
use csce_graph::VertexId;
use csce_obs::Recorder;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Terminal failures of a parallel run. Partial results (timeouts) are
/// *not* errors — they come back in [`ExecStats::timed_out`]; an error
/// means no trustworthy result exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A worker thread panicked. The remaining workers were stopped via
    /// the shared flag and joined before this was returned.
    WorkerPanicked { worker: usize, message: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanicked { worker, message } => {
                write!(f, "match worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Chunk size for claiming from `len` root candidates across `threads`
/// workers: roughly 32 claims per worker for balance, clamped to
/// `[1, 256]` so tiny candidate sets become per-candidate claiming and
/// huge ones keep the cursor off the hot path.
pub fn adaptive_chunk(len: usize, threads: usize) -> usize {
    (len / (threads.max(1) * 32)).clamp(1, 256)
}

/// Shared state of one parallel run: the root-candidate claim cursor, the
/// cooperative stop flag, and the run-wide deadline.
#[derive(Debug)]
pub struct Scheduler {
    threads: usize,
    cursor: AtomicUsize,
    stop: AtomicBool,
    deadline: Option<Instant>,
}

impl Scheduler {
    pub fn new(threads: usize, deadline: Option<Instant>) -> Scheduler {
        Scheduler { threads, cursor: AtomicUsize::new(0), stop: AtomicBool::new(false), deadline }
    }

    /// Worker count the chunk size adapts to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared deadline, if the run has a time limit.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Claim the next chunk of `0..len`. Returns `None` once the range is
    /// exhausted or the run was stopped. Across all workers the claimed
    /// chunks are disjoint and cover `0..len` exactly (the invariant
    /// `csce-analyze`'s scheduler check verifies).
    pub fn claim(&self, len: usize) -> Option<Range<usize>> {
        if self.stopped() {
            return None;
        }
        let chunk = adaptive_chunk(len, self.threads);
        let start = self.cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            return None;
        }
        Some(start..(start + chunk).min(len))
    }

    /// Ask every worker to stop at its next check.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stop the run, reporting whether *this* call made the transition —
    /// the winner of the race attributes the stop (e.g. flags
    /// `timed_out` exactly once across all workers).
    pub fn stop_once(&self) -> bool {
        !self.stop.swap(true, Ordering::Relaxed)
    }

    /// Whether a stop was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Outcome of a parallel count: the total plus the merged per-worker
/// counters ([`ExecStats::merge`] — counters saturate-add, `timed_out` is
/// sticky, so a partial result is never silently reported as complete)
/// and the unmerged per-worker stats for load-balance observability.
#[derive(Clone, Debug)]
pub struct ParallelRun {
    pub count: u64,
    pub stats: ExecStats,
    /// Per-worker counters, indexed by worker id (length = thread count).
    pub workers: Vec<ExecStats>,
}

/// Outcome of a parallel enumeration: embeddings (sorted, so the result
/// is independent of worker interleaving), merged stats, per-worker
/// stats.
#[derive(Clone, Debug)]
pub struct CollectRun {
    pub embeddings: Vec<Vec<VertexId>>,
    pub stats: ExecStats,
    /// Per-worker counters, indexed by worker id (length = thread count).
    pub workers: Vec<ExecStats>,
}

/// Render a panic payload for [`ExecError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `work` once per worker over a shared [`Scheduler`], returning each
/// worker's result and stats in worker order.
///
/// With `threads == 1` the work runs inline on the calling thread (no
/// scheduler, no panic capture — a sequential panic propagates normally,
/// which is why single-threaded entry points stay infallible). With more
/// threads, each worker is wrapped in `catch_unwind`; the first panic
/// stops the remaining workers and surfaces as [`ExecError`] after all
/// of them joined.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel<R, W>(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
    recorder: &Recorder,
    work: W,
) -> Result<Vec<(R, ExecStats)>, ExecError>
where
    R: Send,
    W: Fn(usize, &mut Executor<'_>) -> R + Sync,
{
    assert!(threads >= 1, "a run needs at least one worker");
    if threads == 1 {
        let catalog = Catalog::new(pattern, star);
        let mut exec = Executor::new(&catalog, plan, config);
        if let Some(sink) = &progress {
            exec = exec.with_progress(Arc::clone(sink));
        }
        let _span = recorder.span_path("execute/worker");
        let result = work(0, &mut exec);
        return Ok(vec![(result, exec.stats().clone())]);
    }
    let deadline = config.time_limit.map(|limit| Instant::now() + limit);
    let scheduler = Arc::new(Scheduler::new(threads, deadline));
    std::thread::scope(|scope| {
        let work = &work;
        let progress = &progress;
        let scheduler = &scheduler;
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let catalog = Catalog::new(pattern, star);
                        let mut exec = Executor::new(&catalog, plan, config)
                            .with_scheduler(Arc::clone(scheduler));
                        if let Some(sink) = progress {
                            exec = exec.with_progress(Arc::clone(sink));
                        }
                        let _span = recorder.span_path("execute/worker");
                        let result = work(worker, &mut exec);
                        (result, exec.stats().clone())
                    }));
                    if outcome.is_err() {
                        // Abort the siblings: they observe the flag at
                        // their next node-batch check or chunk claim.
                        scheduler.request_stop();
                    }
                    outcome.map_err(|payload| panic_message(payload.as_ref()))
                })
            })
            .collect();
        let mut results = Vec::with_capacity(threads);
        let mut first_error = None;
        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(pair)) => results.push(pair),
                Ok(Err(message)) => {
                    first_error.get_or_insert(ExecError::WorkerPanicked { worker, message });
                }
                // A panic that escaped capture (e.g. raised while
                // unwinding); still degrade to an error after joining.
                Err(payload) => {
                    first_error.get_or_insert(ExecError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(results),
        }
    })
}

/// Count embeddings using `threads` workers claiming root-candidate
/// chunks dynamically. Exact: the per-worker partial counts sum to the
/// sequential count, and SCE caching plus factorized counting run
/// unchanged inside each worker.
pub fn count_parallel(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
) -> Result<ParallelRun, ExecError> {
    count_parallel_observed(star, pattern, plan, config, threads, progress, &Recorder::disabled())
}

/// [`count_parallel`] with per-worker phase spans recorded under
/// `execute/worker`.
pub fn count_parallel_observed(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
    recorder: &Recorder,
) -> Result<ParallelRun, ExecError> {
    let per_worker = run_parallel(star, pattern, plan, config, threads, progress, recorder, {
        |_, exec: &mut Executor<'_>| exec.count()
    })?;
    let mut total = 0u64;
    let mut stats = ExecStats::default();
    let mut workers = Vec::with_capacity(per_worker.len());
    for (partial, worker_stats) in per_worker {
        total = total.saturating_add(partial);
        stats.merge(&worker_stats);
        workers.push(worker_stats);
    }
    // Merged `embeddings` already sums the partials; pin it to the total
    // to keep the invariant embeddings == count under saturation.
    stats.embeddings = total;
    Ok(ParallelRun { count: total, stats, workers })
}

/// Run one sink instance per worker and fold them in worker order —
/// the generic parallel entry point [`collect_parallel`] and
/// [`enumerate_parallel`] specialize.
#[allow(clippy::too_many_arguments)]
pub fn sink_parallel<S, F>(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
    recorder: &Recorder,
    make_sink: F,
) -> Result<(S, ExecStats, Vec<ExecStats>), ExecError>
where
    S: MatchSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let per_worker =
        run_parallel(star, pattern, plan, config, threads, progress, recorder, |worker, exec| {
            let mut sink = make_sink(worker);
            exec.drive(&mut sink);
            sink
        })?;
    let mut merged: Option<S> = None;
    let mut stats = ExecStats::default();
    let mut workers = Vec::with_capacity(per_worker.len());
    for (sink, worker_stats) in per_worker {
        match &mut merged {
            Some(acc) => acc.merge(sink),
            None => merged = Some(sink),
        }
        stats.merge(&worker_stats);
        workers.push(worker_stats);
    }
    match merged {
        Some(sink) => Ok((sink, stats, workers)),
        // Unreachable: run_parallel asserts threads >= 1.
        None => Err(ExecError::WorkerPanicked {
            worker: 0,
            message: "no worker produced a sink".to_string(),
        }),
    }
}

/// Enumerate *all* embeddings across `threads` workers. The result is
/// sorted, so it is independent of worker interleaving, and duplicate-free
/// by construction (workers claim disjoint root chunks).
pub fn collect_parallel(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
    recorder: &Recorder,
) -> Result<CollectRun, ExecError> {
    let (sink, stats, workers) =
        sink_parallel(star, pattern, plan, config, threads, progress, recorder, |_| {
            CollectSink::default()
        })?;
    let mut embeddings = sink.embeddings;
    embeddings.sort_unstable();
    Ok(CollectRun { embeddings, stats, workers })
}

/// Enumerate the first `limit` embeddings across `threads` workers with
/// cooperative early stop: a shared admission counter keeps the merged
/// result at exactly `min(limit, total)` embeddings, and filling the
/// quota stops every worker. Which embeddings win the quota depends on
/// scheduling; the returned slice is sorted for presentability.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_parallel(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
    recorder: &Recorder,
    limit: usize,
) -> Result<CollectRun, ExecError> {
    let admissions = Arc::new(AtomicU64::new(0));
    let (sink, stats, workers) =
        sink_parallel(star, pattern, plan, config, threads, progress, recorder, |_| {
            FirstKSink::shared(limit, Arc::clone(&admissions))
        })?;
    let mut embeddings = sink.embeddings;
    embeddings.sort_unstable();
    Ok(CollectRun { embeddings, stats, workers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_chunk_bounds() {
        assert_eq!(adaptive_chunk(0, 4), 1);
        assert_eq!(adaptive_chunk(1, 4), 1);
        assert_eq!(adaptive_chunk(100, 4), 1);
        assert_eq!(adaptive_chunk(12_800, 4), 100);
        assert_eq!(adaptive_chunk(usize::MAX, 4), 256);
        // Degenerate thread counts never zero the chunk.
        assert!(adaptive_chunk(10, 0) >= 1);
    }

    #[test]
    fn claims_partition_the_range() {
        for len in [0usize, 1, 5, 97, 1000, 4096] {
            for threads in [1usize, 2, 4, 7] {
                let sched = Scheduler::new(threads, None);
                let mut covered = Vec::new();
                while let Some(range) = sched.claim(len) {
                    covered.extend(range);
                }
                let expected: Vec<usize> = (0..len).collect();
                assert_eq!(covered, expected, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_cover() {
        let len = 1003usize;
        let threads = 4usize;
        let sched = Scheduler::new(threads, None);
        let mut per_thread: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(range) = sched.claim(len) {
                            mine.extend(range);
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().expect("claimer thread"));
            }
        });
        let mut all: Vec<usize> = per_thread.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..len).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn stop_once_has_a_single_winner() {
        let sched = Scheduler::new(4, None);
        assert!(!sched.stopped());
        assert!(sched.stop_once());
        assert!(!sched.stop_once());
        assert!(sched.stopped());
        assert_eq!(sched.claim(100), None, "stopped schedulers hand out no work");
    }

    #[test]
    fn exec_error_displays_worker_and_message() {
        let err = ExecError::WorkerPanicked { worker: 3, message: "boom".to_string() };
        let text = err.to_string();
        assert!(text.contains('3') && text.contains("boom"), "{text}");
    }
}
