//! Execution statistics: what the evaluation section measures per run.

/// Counters collected during one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Embeddings found (count mode: the final count; enumerate mode: the
    /// number of `emit` calls).
    pub embeddings: u64,
    /// Candidate-set reuses via SCE signatures.
    pub sce_cache_hits: u64,
    /// Candidate sets computed from scratch.
    pub candidate_computations: u64,
    /// Candidates tried (post injectivity filter).
    pub candidates_scanned: u64,
    /// Recursion nodes visited.
    pub nodes: u64,
    /// Factorized `Split` nodes evaluated.
    pub splits_taken: u64,
    /// The time limit fired; results are partial.
    pub timed_out: bool,
}

impl ExecStats {
    /// Fraction of candidate-set requests served from the SCE cache.
    pub fn sce_hit_rate(&self) -> f64 {
        let total = self.sce_cache_hits + self.candidate_computations;
        if total == 0 {
            0.0
        } else {
            self.sce_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut s = ExecStats::default();
        assert_eq!(s.sce_hit_rate(), 0.0);
        s.sce_cache_hits = 3;
        s.candidate_computations = 1;
        assert!((s.sce_hit_rate() - 0.75).abs() < 1e-9);
    }
}
