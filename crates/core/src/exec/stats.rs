//! Execution statistics: what the evaluation section measures per run.

use csce_obs::MetricsRegistry;

/// Counters collected during one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Embeddings found (count mode: the final count; enumerate mode: the
    /// number of `emit` calls).
    pub embeddings: u64,
    /// Candidate-set reuses via SCE signatures.
    pub sce_cache_hits: u64,
    /// Candidate sets computed from scratch.
    pub candidate_computations: u64,
    /// Candidates tried (post injectivity filter).
    pub candidates_scanned: u64,
    /// Recursion nodes visited.
    pub nodes: u64,
    /// Factorized `Split` nodes evaluated.
    pub splits_taken: u64,
    /// Negation clusters consulted by vertex-induced filtering.
    pub negation_clusters: u64,
    /// Root-candidate chunks claimed from the shared scheduler (0 in
    /// standalone and static-partition runs).
    pub chunks_claimed: u64,
    /// The time limit fired; results are partial.
    pub timed_out: bool,
    /// Per-depth and intersection profiling, present when the run asked
    /// for it (`RunConfig::profile` with the `deep-stats` feature).
    pub deep: Option<DeepStats>,
}

/// Hot-loop profiling counters, collected only on request because they
/// touch per-depth vectors on every candidate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeepStats {
    /// Candidates scanned at each recursion depth.
    pub depth_candidates: Vec<u64>,
    /// SCE cache hits at each recursion depth.
    pub depth_sce_hits: Vec<u64>,
    /// Total elements fed into candidate-set intersections.
    pub intersection_input: u64,
    /// Total elements surviving those intersections.
    pub intersection_output: u64,
}

impl DeepStats {
    #[inline]
    pub fn bump(series: &mut Vec<u64>, depth: usize) {
        if series.len() <= depth {
            series.resize(depth + 1, 0);
        }
        series[depth] += 1;
    }

    fn merge(&mut self, other: &DeepStats) {
        fn add(mine: &mut Vec<u64>, theirs: &[u64]) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (m, &t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        add(&mut self.depth_candidates, &other.depth_candidates);
        add(&mut self.depth_sce_hits, &other.depth_sce_hits);
        self.intersection_input += other.intersection_input;
        self.intersection_output += other.intersection_output;
    }
}

impl ExecStats {
    /// Fraction of candidate-set requests served from the SCE cache.
    pub fn sce_hit_rate(&self) -> f64 {
        let total = self.sce_cache_hits + self.candidate_computations;
        if total == 0 {
            0.0
        } else {
            self.sce_cache_hits as f64 / total as f64
        }
    }

    /// Combine another run's counters into this one — the reduction used
    /// for per-worker stats in parallel runs. Counters saturate-add (the
    /// per-worker counters already saturate, so the merge must not
    /// reintroduce overflow), per-depth series add element-wise, and
    /// `timed_out` is sticky (any worker timing out makes the merged
    /// result partial).
    pub fn merge(&mut self, other: &ExecStats) {
        self.embeddings = self.embeddings.saturating_add(other.embeddings);
        self.sce_cache_hits = self.sce_cache_hits.saturating_add(other.sce_cache_hits);
        self.candidate_computations =
            self.candidate_computations.saturating_add(other.candidate_computations);
        self.candidates_scanned = self.candidates_scanned.saturating_add(other.candidates_scanned);
        self.nodes = self.nodes.saturating_add(other.nodes);
        self.splits_taken = self.splits_taken.saturating_add(other.splits_taken);
        self.negation_clusters = self.negation_clusters.saturating_add(other.negation_clusters);
        self.chunks_claimed = self.chunks_claimed.saturating_add(other.chunks_claimed);
        self.timed_out |= other.timed_out;
        if let Some(theirs) = &other.deep {
            self.deep.get_or_insert_with(DeepStats::default).merge(theirs);
        }
    }

    /// Export every counter into a metrics registry under the `exec.`
    /// prefix (the names the run report and `BENCH_*.json` files use).
    pub fn export(&self, m: &mut MetricsRegistry) {
        m.set_counter("exec.embeddings", self.embeddings);
        m.set_counter("exec.sce_cache_hits", self.sce_cache_hits);
        m.set_counter("exec.candidate_computations", self.candidate_computations);
        m.set_counter("exec.candidates_scanned", self.candidates_scanned);
        m.set_counter("exec.nodes", self.nodes);
        m.set_counter("exec.splits_taken", self.splits_taken);
        m.set_counter("exec.negation_clusters", self.negation_clusters);
        m.set_counter("exec.chunks_claimed", self.chunks_claimed);
        m.set_counter("exec.timed_out", self.timed_out as u64);
        m.set_gauge("exec.sce_hit_rate", self.sce_hit_rate());
        if let Some(deep) = &self.deep {
            m.set_series("exec.depth_candidates", deep.depth_candidates.clone());
            m.set_series("exec.depth_sce_hits", deep.depth_sce_hits.clone());
            m.set_counter("exec.intersection_input", deep.intersection_input);
            m.set_counter("exec.intersection_output", deep.intersection_output);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut s = ExecStats::default();
        assert_eq!(s.sce_hit_rate(), 0.0);
        s.sce_cache_hits = 3;
        s.candidate_computations = 1;
        assert!((s.sce_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_and_propagates_timeout() {
        let mut a = ExecStats { embeddings: 2, nodes: 10, ..Default::default() };
        let b = ExecStats {
            embeddings: 3,
            nodes: 5,
            timed_out: true,
            deep: Some(DeepStats {
                depth_candidates: vec![1, 2],
                depth_sce_hits: vec![0, 1],
                intersection_input: 7,
                intersection_output: 4,
            }),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.embeddings, 5);
        assert_eq!(a.nodes, 15);
        assert!(a.timed_out);
        let deep = a.deep.as_ref().expect("deep stats adopted");
        assert_eq!(deep.depth_candidates, vec![1, 2]);
        a.merge(&b);
        assert_eq!(a.deep.as_ref().unwrap().intersection_input, 14);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = ExecStats { nodes: u64::MAX - 1, ..Default::default() };
        let b = ExecStats { nodes: 5, chunks_claimed: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.nodes, u64::MAX);
        assert_eq!(a.chunks_claimed, 2);
    }

    #[test]
    fn export_covers_all_counters() {
        let stats = ExecStats {
            embeddings: 1,
            sce_cache_hits: 2,
            candidate_computations: 2,
            deep: Some(DeepStats { depth_candidates: vec![4], ..Default::default() }),
            ..Default::default()
        };
        let mut m = MetricsRegistry::new();
        stats.export(&mut m);
        assert_eq!(m.counter("exec.embeddings"), 1);
        assert_eq!(m.gauge("exec.sce_hit_rate"), Some(0.5));
        assert_eq!(m.series("exec.depth_candidates"), &[4]);
    }
}
