//! The matching engine: one recursion body behind [`MatchSink`].
//!
//! [`Executor`] grows partial embeddings one pattern vertex at a time
//! along `Φ*`. The candidate loop lives in exactly one place
//! ([`Executor::scan`]); what happens at full depth is decided by the
//! sink ([`Executor::drive`]) or, for factorized counting, by the plan's
//! [`ExecNode`] tree ([`Executor::count`]) — counting is a
//! counting-sink specialization that additionally multiplies
//! `H`-independent suffix components instead of enumerating their
//! Cartesian product.
//!
//! The root vertex's candidate loop is also where parallelism attaches:
//! a shared [`Scheduler`] turns it into a chunk-claiming loop
//! ([`Executor::with_scheduler`]), while the static round-robin split
//! ([`Executor::with_root_partition`]) remains as the ablation baseline.

use super::scheduler::Scheduler;
use super::sink::{CallbackSink, MatchSink};
use super::stats::ExecStats;
use super::RunConfig;
use crate::catalog::Catalog;
use crate::plan::{ExecNode, Plan};
use csce_graph::graph::Orient;
use csce_graph::util::{intersect_sorted, subtract_sorted};
use csce_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use super::stats::DeepStats;

/// One per-slot candidate cache: the parents' mapping signature under
/// which `cands` was computed.
#[derive(Clone, Debug, Default)]
struct CandCache {
    valid: bool,
    sig: Vec<VertexId>,
    cands: Vec<VertexId>,
}

/// The matching executor for one `(catalog, plan)` pair. Reusable across
/// calls; state resets at each entry point.
pub struct Executor<'a> {
    catalog: &'a Catalog<'a>,
    plan: &'a Plan,
    config: RunConfig,
    f: Vec<VertexId>,
    used: Vec<bool>,
    caches: Vec<CandCache>,
    stats: ExecStats,
    deadline: Option<Instant>,
    stopped: bool,
    /// Live recursion-node counter shared with a progress reporter; bumped
    /// in batches from `check_deadline` so the hot loop never touches it.
    progress: Option<Arc<AtomicU64>>,
    /// Nodes already published to `progress`.
    progress_published: u64,
    /// Ordering restrictions `f(a) < f(b)`, indexed by the pattern vertex
    /// at which each becomes checkable (the later one in `Φ*`).
    checks_at: Vec<Vec<(VertexId, VertexId)>>,
    /// Static work partition (ablation baseline): the root vertex only
    /// tries candidates whose index `i` satisfies `i % stride == offset`.
    root_filter: Option<(usize, usize)>,
    /// Dynamic work partition: the root vertex claims candidate chunks
    /// from this shared scheduler, which also carries the run-wide stop
    /// flag and deadline.
    scheduler: Option<Arc<Scheduler>>,
}

const UNMAPPED: VertexId = VertexId::MAX;

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog<'a>, plan: &'a Plan, config: RunConfig) -> Executor<'a> {
        Executor {
            catalog,
            plan,
            config,
            f: vec![UNMAPPED; catalog.pattern().n()],
            used: vec![false; catalog.data_n()],
            caches: vec![CandCache::default(); plan.slot_count],
            stats: ExecStats::default(),
            deadline: None,
            stopped: false,
            progress: None,
            progress_published: 0,
            checks_at: vec![Vec::new(); catalog.pattern().n()],
            root_filter: None,
            scheduler: None,
        }
    }

    /// Publish live recursion-node counts into `sink` (batched — roughly
    /// every 4096 nodes). Used by the CLI's `--progress` heartbeat; with
    /// multiple workers sharing one sink the counts add up.
    pub fn with_progress(mut self, sink: Arc<AtomicU64>) -> Executor<'a> {
        self.progress = Some(sink);
        self
    }

    /// Restrict the root vertex to every `stride`-th candidate starting at
    /// `offset` — the *static* work partition, kept as the ablation
    /// baseline for the dynamic scheduler (`csce-bench`'s scheduler
    /// benchmark compares the two). The partial counts over offsets
    /// `0..stride` sum to the full count. Mutually exclusive with
    /// [`Executor::with_scheduler`], which takes precedence.
    pub fn with_root_partition(mut self, stride: usize, offset: usize) -> Executor<'a> {
        assert!(offset < stride, "offset must be below stride");
        self.root_filter = Some((stride, offset));
        self
    }

    /// Share this run's root loop, stop flag and deadline with other
    /// workers: the root vertex claims candidate chunks from `scheduler`
    /// instead of scanning them all, and the deadline/stop checks consult
    /// the scheduler so cancellation propagates across workers.
    pub fn with_scheduler(mut self, scheduler: Arc<Scheduler>) -> Executor<'a> {
        self.scheduler = Some(scheduler);
        self
    }

    /// Impose ordering restrictions `f(a) < f(b)` on the enumeration.
    ///
    /// CSCE itself applies no symmetry breaking (§III / Finding 2), but
    /// applications that want each *subgraph* once — e.g. clique counting
    /// for higher-order analysis (§VII-G) — can supply the orbit
    /// restrictions of the pattern's automorphism group. Restrictions are
    /// checked per candidate; to keep SCE caches sound they are applied at
    /// scan time, never baked into cached candidate sets.
    pub fn with_restrictions(mut self, restrictions: &[(VertexId, VertexId)]) -> Executor<'a> {
        for list in &mut self.checks_at {
            list.clear();
        }
        for &(a, b) in restrictions {
            let later =
                if self.plan.pos_of[a as usize] > self.plan.pos_of[b as usize] { a } else { b };
            self.checks_at[later as usize].push((a, b));
        }
        self
    }

    /// Whether candidate `v` for pattern vertex `u` satisfies every
    /// ordering restriction checkable at `u`.
    #[inline]
    fn restrictions_ok(&self, u: VertexId, v: VertexId) -> bool {
        self.checks_at[u as usize].iter().all(|&(a, b)| {
            let fa = if a == u { v } else { self.f[a as usize] };
            let fb = if b == u { v } else { self.f[b as usize] };
            fa < fb
        })
    }

    fn reset(&mut self) {
        self.f.fill(UNMAPPED);
        self.used.fill(false);
        for c in &mut self.caches {
            c.valid = false;
        }
        self.stats = ExecStats::default();
        if cfg!(feature = "deep-stats") && self.config.profile {
            self.stats.deep = Some(DeepStats::default());
        }
        // A scheduled (parallel) run shares one deadline computed by the
        // driver; a standalone run computes its own.
        self.deadline = match &self.scheduler {
            Some(sched) => sched.deadline(),
            None => self.config.time_limit.map(|d| Instant::now() + d),
        };
        self.stopped = false;
        self.progress_published = 0;
    }

    /// Count all embeddings. Uses the factorized tree when enabled (and
    /// when no cross-cutting ordering restrictions are imposed).
    pub fn count(&mut self) -> u64 {
        self.reset();
        let has_restrictions = self.checks_at.iter().any(|l| !l.is_empty());
        let root = if self.config.factorize && !has_restrictions {
            self.plan.root.clone()
        } else {
            sequential_tree(&self.plan.order)
        };
        let count = self.count_node(&root, 0);
        self.stats.embeddings = count;
        self.publish_progress();
        count
    }

    /// Run the full search, handing each complete embedding to `sink`.
    /// The sink's `Break` stops this worker and, in a scheduled run,
    /// cooperatively stops every other worker too.
    pub fn drive<S: MatchSink>(&mut self, sink: &mut S) {
        self.reset();
        self.walk(0, sink);
        self.publish_progress();
    }

    /// Enumerate embeddings, invoking `emit` with the mapping array
    /// (`emit[i]` = data vertex of pattern vertex `i`). Return `false`
    /// from `emit` to stop early. (A [`CallbackSink`] adapter over
    /// [`Executor::drive`].)
    pub fn enumerate(&mut self, emit: &mut dyn FnMut(&[VertexId]) -> bool) {
        let mut sink = CallbackSink::new(|f: &[VertexId]| emit(f));
        self.drive(&mut sink);
    }

    /// Statistics of the last run.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Push the not-yet-published node count into the progress sink.
    fn publish_progress(&mut self) {
        if let Some(sink) = &self.progress {
            let delta = self.stats.nodes - self.progress_published;
            if delta > 0 {
                sink.fetch_add(delta, Ordering::Relaxed);
                self.progress_published = self.stats.nodes;
            }
        }
    }

    /// Batched stop check (roughly every 4096 recursion nodes): publishes
    /// progress, consults the run's deadline, and in a scheduled run
    /// observes cancellations from sibling workers. On a shared deadline
    /// exactly one worker wins the stop transition and flags `timed_out`,
    /// so the merged stats report the timeout once.
    fn check_deadline(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if self.stats.nodes.is_multiple_of(4096) {
            self.publish_progress();
            if let Some(sched) = &self.scheduler {
                if sched.stopped() {
                    self.stopped = true;
                } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    if sched.stop_once() {
                        self.stats.timed_out = true;
                    }
                    self.stopped = true;
                }
            } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
                self.stats.timed_out = true;
                self.stopped = true;
            }
        }
        self.stopped
    }

    /// Scan `u`'s candidates for the current partial embedding, calling
    /// `visit` once per admissible candidate with the mapping extended —
    /// the one candidate loop shared by counting and sink-driven search.
    ///
    /// For the root vertex the iteration space is additionally shaped by
    /// the work partition: chunk claims from the shared scheduler
    /// (dynamic), a stride/offset filter (static baseline), or the full
    /// range (standalone).
    fn scan<F>(&mut self, u: VertexId, depth: usize, mut visit: F)
    where
        F: FnMut(&mut Self),
    {
        let injective = self.plan.variant.injective();
        let (slot, len) = self.materialize_candidates(u, depth);
        if u == self.plan.order[0] {
            if let Some(sched) = self.scheduler.clone() {
                while let Some(chunk) = sched.claim(len) {
                    self.stats.chunks_claimed += 1;
                    for i in chunk {
                        self.try_candidate(u, depth, slot, i, injective, &mut visit);
                        if self.stopped {
                            return;
                        }
                    }
                }
                return;
            }
            if let Some((stride, offset)) = self.root_filter {
                let mut i = offset;
                while i < len {
                    self.try_candidate(u, depth, slot, i, injective, &mut visit);
                    if self.stopped {
                        return;
                    }
                    i += stride;
                }
                return;
            }
        }
        for i in 0..len {
            self.try_candidate(u, depth, slot, i, injective, &mut visit);
            if self.stopped {
                return;
            }
        }
    }

    /// Try candidate `i` of cache slot `slot` for `u`: apply the
    /// injectivity and ordering filters, extend the mapping, recurse via
    /// `visit`, and restore the mapping.
    #[inline]
    fn try_candidate<F>(
        &mut self,
        u: VertexId,
        depth: usize,
        slot: usize,
        i: usize,
        injective: bool,
        visit: &mut F,
    ) where
        F: FnMut(&mut Self),
    {
        let v = self.caches[slot].cands[i];
        if injective && self.used[v as usize] {
            return;
        }
        if !self.restrictions_ok(u, v) {
            return;
        }
        self.stats.candidates_scanned += 1;
        #[cfg(feature = "deep-stats")]
        if let Some(deep) = self.stats.deep.as_mut() {
            DeepStats::bump(&mut deep.depth_candidates, depth);
        }
        #[cfg(not(feature = "deep-stats"))]
        let _ = depth;
        self.f[u as usize] = v;
        if injective {
            self.used[v as usize] = true;
        }
        visit(self);
        if injective {
            self.used[v as usize] = false;
        }
        self.f[u as usize] = UNMAPPED;
    }

    /// Factorized counting over the plan's [`ExecNode`] tree. `Seq` nodes
    /// share [`Executor::scan`] with the sink path; `Split` nodes multiply
    /// `H`-independent component counts (saturating, like the per-node
    /// accumulation — a homomorphic count can overflow `u64`).
    fn count_node(&mut self, node: &ExecNode, depth: usize) -> u64 {
        match node {
            ExecNode::Done => 1,
            ExecNode::Split { components } => {
                self.stats.splits_taken += 1;
                let mut product = 1u64;
                for comp in components {
                    let c = self.count_node(comp, depth);
                    if c == 0 {
                        return 0;
                    }
                    product = product.saturating_mul(c);
                }
                product
            }
            ExecNode::Seq { u, next } => {
                self.stats.nodes += 1;
                if self.check_deadline() {
                    return 0;
                }
                let mut total = 0u64;
                self.scan(*u, depth, |me| {
                    total = total.saturating_add(me.count_node(next, depth + 1));
                });
                total
            }
        }
    }

    /// The sink-driven recursion body: one `Seq`-like step per depth,
    /// with the sink deciding at full depth whether the search continues.
    fn walk<S: MatchSink>(&mut self, depth: usize, sink: &mut S) {
        if depth == self.plan.order.len() {
            self.stats.embeddings = self.stats.embeddings.saturating_add(1);
            if sink.on_embedding(&self.f).is_break() {
                self.stopped = true;
                if let Some(sched) = &self.scheduler {
                    // Early stop (e.g. a filled first-k quota) propagates
                    // to every worker of the run.
                    sched.request_stop();
                }
            }
            return;
        }
        self.stats.nodes += 1;
        if self.check_deadline() {
            return;
        }
        let u = self.plan.order[depth];
        self.scan(u, depth, |me| me.walk(depth + 1, sink));
    }

    /// Ensure `u`'s candidate set is in its cache slot for the current
    /// partial embedding; returns `(slot, candidate count)`.
    ///
    /// The candidates are exactly `C(u | Φ, f)` of Definition 1 — the
    /// injectivity filter (`C \ {v_x}`) is applied by the caller per
    /// candidate, which is what makes the cached set reusable across
    /// sibling mappings.
    fn materialize_candidates(&mut self, u: VertexId, depth: usize) -> (usize, usize) {
        let slot = self.plan.cache_slot[u as usize] as usize;
        let parents = self.plan.dag.parents(u);
        // Signature: the mappings of all H-parents (edge + negation).
        let sig_matches = self.config.use_sce_cache
            && self.caches[slot].valid
            && self.caches[slot].sig.len() == parents.len()
            && parents.iter().zip(&self.caches[slot].sig).all(|(&p, &s)| self.f[p as usize] == s);
        if sig_matches {
            self.stats.sce_cache_hits += 1;
            #[cfg(feature = "deep-stats")]
            if let Some(deep) = self.stats.deep.as_mut() {
                DeepStats::bump(&mut deep.depth_sce_hits, depth);
            }
            let len = self.caches[slot].cands.len();
            return (slot, len);
        }
        #[cfg(not(feature = "deep-stats"))]
        let _ = depth;
        self.stats.candidate_computations += 1;
        let mut cands = std::mem::take(&mut self.caches[slot].cands);
        self.compute_candidates(u, &mut cands);
        let cache = &mut self.caches[slot];
        cache.cands = cands;
        cache.sig.clear();
        cache.sig.extend(parents.iter().map(|&p| self.f[p as usize]));
        cache.valid = true;
        let len = cache.cands.len();
        (slot, len)
    }

    /// Compute `C(u | Φ, f)` from scratch into `out`.
    fn compute_candidates(&mut self, u: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let edge_parents = self.plan.dag.edge_parents(u);
        if edge_parents.is_empty() {
            // First vertex of the order (or an isolated pattern vertex):
            // worst-case-optimal join seed over all incident relations.
            out.extend(self.catalog.seeds(u));
        } else {
            // Gather the parent rows, smallest first, then intersect.
            let mut rows: Vec<&[u32]> = Vec::with_capacity(edge_parents.len());
            for &(parent, eidx) in edge_parents {
                let parent_side = self.catalog.side_of(eidx, parent);
                let row = self.catalog.extend_row(eidx, parent_side, self.f[parent as usize]);
                if row.is_empty() {
                    return;
                }
                rows.push(row);
            }
            rows.sort_unstable_by_key(|r| r.len());
            #[cfg(feature = "deep-stats")]
            let multi_way = rows.len() > 1;
            out.extend_from_slice(rows[0]);
            let mut tmp = Vec::new();
            for row in &rows[1..] {
                #[cfg(feature = "deep-stats")]
                if let Some(deep) = self.stats.deep.as_mut() {
                    deep.intersection_input += (out.len() + row.len()) as u64;
                }
                intersect_sorted(out, row, &mut tmp);
                std::mem::swap(out, &mut tmp);
                if out.is_empty() {
                    break;
                }
            }
            #[cfg(feature = "deep-stats")]
            if multi_way {
                if let Some(deep) = self.stats.deep.as_mut() {
                    deep.intersection_output += out.len() as u64;
                }
            }
            if out.is_empty() {
                return;
            }
        }
        // Vertex-induced filtering: a candidate is disqualified by any
        // data arc to a matched dependency parent that the pattern pair
        // does not have — negation for non-neighbors (empty `allowed`),
        // extra-arc rejection for neighbors (e.g. an antiparallel arc).
        let p = self.catalog.pattern();
        for filt in &self.plan.induced_filters[u as usize] {
            let w = self.f[filt.parent as usize];
            debug_assert_ne!(w, UNMAPPED, "dependency parents precede u in Φ*");
            let parent_label = p.label(filt.parent);
            for cluster in self.catalog.negation_clusters(parent_label, p.label(u)) {
                self.stats.negation_clusters += 1;
                let key = cluster.key;
                if key.directed {
                    if key.src_label == parent_label
                        && !filt.allowed.contains(&(Orient::Out, key.edge_label))
                    {
                        subtract_sorted(out, cluster.out_neighbors(w));
                    }
                    if key.dst_label == parent_label
                        && !filt.allowed.contains(&(Orient::In, key.edge_label))
                    {
                        subtract_sorted(out, cluster.in_neighbors(w));
                    }
                } else if !filt.allowed.contains(&(Orient::Und, key.edge_label)) {
                    subtract_sorted(out, cluster.out_neighbors(w));
                }
                if out.is_empty() {
                    return;
                }
            }
        }
    }
}

/// A purely sequential execution tree over `Φ*` (factorization disabled).
fn sequential_tree(order: &[VertexId]) -> ExecNode {
    let mut node = ExecNode::Done;
    for &u in order.iter().rev() {
        node = ExecNode::Seq { u, next: Box::new(node) };
    }
    node
}
