//! Execution: the pipelined worst-case-optimal join with SCE reuse.
//!
//! The executor grows partial embeddings one pattern vertex at a time
//! along `Φ*`, computing each vertex's candidate set as the intersection
//! of the CCSR neighbor rows of its already-matched pattern neighbors
//! (a pipelined WCOJ, §III), with vertex-induced negation subtracting the
//! data neighbors of matched non-neighbors.
//!
//! Sequential Candidate Equivalence is exploited twice:
//!
//! * **candidate caching** — a vertex's candidate set is a pure function
//!   of its `H`-parents' mappings; the signature is remembered and the set
//!   reused while it holds (injectivity is re-filtered per candidate, as
//!   Definition 1's `C \ {v_x}` prescribes). NEC-equivalent vertices with
//!   identical parents share one cache slot.
//! * **factorized counting** — in counting mode the plan's [`ExecNode`]
//!   tree multiplies the counts of `H`-independent suffix components
//!   instead of enumerating their Cartesian product.

mod stats;

pub use stats::{DeepStats, ExecStats};

use crate::catalog::Catalog;
use crate::plan::{ExecNode, Plan};
use csce_graph::graph::Orient;
use csce_graph::util::{intersect_sorted, subtract_sorted};
use csce_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime options.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Use the SCE candidate cache (`false` recomputes every time — the
    /// ablation knob).
    pub use_sce_cache: bool,
    /// Use the factorized execution tree in counting mode.
    pub factorize: bool,
    /// Abort after this much wall time (counts and stats are then partial
    /// and `stats.timed_out` is set).
    pub time_limit: Option<Duration>,
    /// Collect [`DeepStats`] (per-depth + intersection counters). Only
    /// effective when the `deep-stats` feature is compiled in; the hot
    /// loop pays one predictable branch when off.
    pub profile: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { use_sce_cache: true, factorize: true, time_limit: None, profile: false }
    }
}

/// One per-slot candidate cache: the parents' mapping signature under
/// which `cands` was computed.
#[derive(Clone, Debug, Default)]
struct CandCache {
    valid: bool,
    sig: Vec<VertexId>,
    cands: Vec<VertexId>,
}

/// The matching executor for one `(catalog, plan)` pair. Reusable across
/// calls; state resets at each entry point.
pub struct Executor<'a> {
    catalog: &'a Catalog<'a>,
    plan: &'a Plan,
    config: RunConfig,
    f: Vec<VertexId>,
    used: Vec<bool>,
    caches: Vec<CandCache>,
    stats: ExecStats,
    deadline: Option<Instant>,
    stopped: bool,
    /// Live recursion-node counter shared with a progress reporter; bumped
    /// in batches from `check_deadline` so the hot loop never touches it.
    progress: Option<Arc<AtomicU64>>,
    /// Nodes already published to `progress`.
    progress_published: u64,
    /// Ordering restrictions `f(a) < f(b)`, indexed by the pattern vertex
    /// at which each becomes checkable (the later one in `Φ*`).
    checks_at: Vec<Vec<(VertexId, VertexId)>>,
    /// Work partition for parallel counting: the root vertex only tries
    /// candidates whose index `i` satisfies `i % stride == offset`.
    root_filter: Option<(usize, usize)>,
}

const UNMAPPED: VertexId = VertexId::MAX;

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog<'a>, plan: &'a Plan, config: RunConfig) -> Executor<'a> {
        Executor {
            catalog,
            plan,
            config,
            f: vec![UNMAPPED; catalog.pattern().n()],
            used: vec![false; catalog.data_n()],
            caches: vec![CandCache::default(); plan.slot_count],
            stats: ExecStats::default(),
            deadline: None,
            stopped: false,
            progress: None,
            progress_published: 0,
            checks_at: vec![Vec::new(); catalog.pattern().n()],
            root_filter: None,
        }
    }

    /// Publish live recursion-node counts into `sink` (batched — roughly
    /// every 4096 nodes). Used by the CLI's `--progress` heartbeat; with
    /// multiple workers sharing one sink the counts add up.
    pub fn with_progress(mut self, sink: Arc<AtomicU64>) -> Executor<'a> {
        self.progress = Some(sink);
        self
    }

    /// Restrict the root vertex to every `stride`-th candidate starting at
    /// `offset` — the work partition used by [`count_parallel`]. The
    /// partial counts over offsets `0..stride` sum to the full count.
    pub fn with_root_partition(mut self, stride: usize, offset: usize) -> Executor<'a> {
        assert!(offset < stride, "offset must be below stride");
        self.root_filter = Some((stride, offset));
        self
    }

    /// Impose ordering restrictions `f(a) < f(b)` on the enumeration.
    ///
    /// CSCE itself applies no symmetry breaking (§III / Finding 2), but
    /// applications that want each *subgraph* once — e.g. clique counting
    /// for higher-order analysis (§VII-G) — can supply the orbit
    /// restrictions of the pattern's automorphism group. Restrictions are
    /// checked per candidate; to keep SCE caches sound they are applied at
    /// scan time, never baked into cached candidate sets.
    pub fn with_restrictions(mut self, restrictions: &[(VertexId, VertexId)]) -> Executor<'a> {
        for list in &mut self.checks_at {
            list.clear();
        }
        for &(a, b) in restrictions {
            let later =
                if self.plan.pos_of[a as usize] > self.plan.pos_of[b as usize] { a } else { b };
            self.checks_at[later as usize].push((a, b));
        }
        self
    }

    /// Whether candidate `v` for pattern vertex `u` satisfies every
    /// ordering restriction checkable at `u`.
    #[inline]
    fn restrictions_ok(&self, u: VertexId, v: VertexId) -> bool {
        self.checks_at[u as usize].iter().all(|&(a, b)| {
            let fa = if a == u { v } else { self.f[a as usize] };
            let fb = if b == u { v } else { self.f[b as usize] };
            fa < fb
        })
    }

    fn reset(&mut self) {
        self.f.fill(UNMAPPED);
        self.used.fill(false);
        for c in &mut self.caches {
            c.valid = false;
        }
        self.stats = ExecStats::default();
        if cfg!(feature = "deep-stats") && self.config.profile {
            self.stats.deep = Some(DeepStats::default());
        }
        self.deadline = self.config.time_limit.map(|d| Instant::now() + d);
        self.stopped = false;
        self.progress_published = 0;
    }

    /// Count all embeddings. Uses the factorized tree when enabled (and
    /// when no cross-cutting ordering restrictions are imposed).
    pub fn count(&mut self) -> u64 {
        self.reset();
        let has_restrictions = self.checks_at.iter().any(|l| !l.is_empty());
        let root = if self.config.factorize && !has_restrictions {
            self.plan.root.clone()
        } else {
            sequential_tree(&self.plan.order)
        };
        let count = self.count_node(&root, 0);
        self.stats.embeddings = count;
        self.publish_progress();
        count
    }

    /// Enumerate embeddings, invoking `emit` with the mapping array
    /// (`emit[i]` = data vertex of pattern vertex `i`). Return `false`
    /// from `emit` to stop early.
    pub fn enumerate(&mut self, emit: &mut dyn FnMut(&[VertexId]) -> bool) {
        self.reset();
        self.enumerate_depth(0, emit);
        self.publish_progress();
    }

    /// Statistics of the last run.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Push the not-yet-published node count into the progress sink.
    fn publish_progress(&mut self) {
        if let Some(sink) = &self.progress {
            let delta = self.stats.nodes - self.progress_published;
            if delta > 0 {
                sink.fetch_add(delta, Ordering::Relaxed);
                self.progress_published = self.stats.nodes;
            }
        }
    }

    fn check_deadline(&mut self) -> bool {
        if self.stopped {
            return true;
        }
        if self.stats.nodes.is_multiple_of(4096) {
            self.publish_progress();
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.stats.timed_out = true;
                    self.stopped = true;
                }
            }
        }
        self.stopped
    }

    fn count_node(&mut self, node: &ExecNode, depth: usize) -> u64 {
        match node {
            ExecNode::Done => 1,
            ExecNode::Split { components } => {
                self.stats.splits_taken += 1;
                let mut product = 1u64;
                for comp in components {
                    let c = self.count_node(comp, depth);
                    if c == 0 {
                        return 0;
                    }
                    product = product.saturating_mul(c);
                }
                product
            }
            ExecNode::Seq { u, next } => {
                self.stats.nodes += 1;
                if self.check_deadline() {
                    return 0;
                }
                let u = *u;
                let injective = self.plan.variant.injective();
                let (slot, len) = self.materialize_candidates(u, depth);
                let root_filter = if u == self.plan.order[0] { self.root_filter } else { None };
                let mut total = 0u64;
                for i in 0..len {
                    if let Some((stride, offset)) = root_filter {
                        if i % stride != offset {
                            continue;
                        }
                    }
                    let v = self.caches[slot].cands[i];
                    if injective && self.used[v as usize] {
                        continue;
                    }
                    if !self.restrictions_ok(u, v) {
                        continue;
                    }
                    self.stats.candidates_scanned += 1;
                    #[cfg(feature = "deep-stats")]
                    if let Some(deep) = self.stats.deep.as_mut() {
                        DeepStats::bump(&mut deep.depth_candidates, depth);
                    }
                    self.f[u as usize] = v;
                    if injective {
                        self.used[v as usize] = true;
                    }
                    total += self.count_node(next, depth + 1);
                    if injective {
                        self.used[v as usize] = false;
                    }
                    self.f[u as usize] = UNMAPPED;
                    if self.stopped {
                        break;
                    }
                }
                total
            }
        }
    }

    fn enumerate_depth(&mut self, depth: usize, emit: &mut dyn FnMut(&[VertexId]) -> bool) {
        if depth == self.plan.order.len() {
            self.stats.embeddings += 1;
            if !emit(&self.f) {
                self.stopped = true;
            }
            return;
        }
        self.stats.nodes += 1;
        if self.check_deadline() {
            return;
        }
        let u = self.plan.order[depth];
        let injective = self.plan.variant.injective();
        let (slot, len) = self.materialize_candidates(u, depth);
        for i in 0..len {
            let v = self.caches[slot].cands[i];
            if injective && self.used[v as usize] {
                continue;
            }
            if !self.restrictions_ok(u, v) {
                continue;
            }
            self.stats.candidates_scanned += 1;
            #[cfg(feature = "deep-stats")]
            if let Some(deep) = self.stats.deep.as_mut() {
                DeepStats::bump(&mut deep.depth_candidates, depth);
            }
            self.f[u as usize] = v;
            if injective {
                self.used[v as usize] = true;
            }
            self.enumerate_depth(depth + 1, emit);
            if injective {
                self.used[v as usize] = false;
            }
            self.f[u as usize] = UNMAPPED;
            if self.stopped {
                return;
            }
        }
    }

    /// Ensure `u`'s candidate set is in its cache slot for the current
    /// partial embedding; returns `(slot, candidate count)`.
    ///
    /// The candidates are exactly `C(u | Φ, f)` of Definition 1 — the
    /// injectivity filter (`C \ {v_x}`) is applied by the caller per
    /// candidate, which is what makes the cached set reusable across
    /// sibling mappings.
    fn materialize_candidates(&mut self, u: VertexId, depth: usize) -> (usize, usize) {
        let slot = self.plan.cache_slot[u as usize] as usize;
        let parents = self.plan.dag.parents(u);
        // Signature: the mappings of all H-parents (edge + negation).
        let sig_matches = self.config.use_sce_cache
            && self.caches[slot].valid
            && self.caches[slot].sig.len() == parents.len()
            && parents.iter().zip(&self.caches[slot].sig).all(|(&p, &s)| self.f[p as usize] == s);
        if sig_matches {
            self.stats.sce_cache_hits += 1;
            #[cfg(feature = "deep-stats")]
            if let Some(deep) = self.stats.deep.as_mut() {
                DeepStats::bump(&mut deep.depth_sce_hits, depth);
            }
            let len = self.caches[slot].cands.len();
            return (slot, len);
        }
        #[cfg(not(feature = "deep-stats"))]
        let _ = depth;
        self.stats.candidate_computations += 1;
        let mut cands = std::mem::take(&mut self.caches[slot].cands);
        self.compute_candidates(u, &mut cands);
        let cache = &mut self.caches[slot];
        cache.cands = cands;
        cache.sig.clear();
        cache.sig.extend(parents.iter().map(|&p| self.f[p as usize]));
        cache.valid = true;
        let len = cache.cands.len();
        (slot, len)
    }

    /// Compute `C(u | Φ, f)` from scratch into `out`.
    fn compute_candidates(&mut self, u: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let edge_parents = self.plan.dag.edge_parents(u);
        if edge_parents.is_empty() {
            // First vertex of the order (or an isolated pattern vertex):
            // worst-case-optimal join seed over all incident relations.
            out.extend(self.catalog.seeds(u));
        } else {
            // Gather the parent rows, smallest first, then intersect.
            let mut rows: Vec<&[u32]> = Vec::with_capacity(edge_parents.len());
            for &(parent, eidx) in edge_parents {
                let parent_side = self.catalog.side_of(eidx, parent);
                let row = self.catalog.extend_row(eidx, parent_side, self.f[parent as usize]);
                if row.is_empty() {
                    return;
                }
                rows.push(row);
            }
            rows.sort_unstable_by_key(|r| r.len());
            #[cfg(feature = "deep-stats")]
            let multi_way = rows.len() > 1;
            out.extend_from_slice(rows[0]);
            let mut tmp = Vec::new();
            for row in &rows[1..] {
                #[cfg(feature = "deep-stats")]
                if let Some(deep) = self.stats.deep.as_mut() {
                    deep.intersection_input += (out.len() + row.len()) as u64;
                }
                intersect_sorted(out, row, &mut tmp);
                std::mem::swap(out, &mut tmp);
                if out.is_empty() {
                    break;
                }
            }
            #[cfg(feature = "deep-stats")]
            if multi_way {
                if let Some(deep) = self.stats.deep.as_mut() {
                    deep.intersection_output += out.len() as u64;
                }
            }
            if out.is_empty() {
                return;
            }
        }
        // Vertex-induced filtering: a candidate is disqualified by any
        // data arc to a matched dependency parent that the pattern pair
        // does not have — negation for non-neighbors (empty `allowed`),
        // extra-arc rejection for neighbors (e.g. an antiparallel arc).
        let p = self.catalog.pattern();
        for filt in &self.plan.induced_filters[u as usize] {
            let w = self.f[filt.parent as usize];
            debug_assert_ne!(w, UNMAPPED, "dependency parents precede u in Φ*");
            let parent_label = p.label(filt.parent);
            for cluster in self.catalog.negation_clusters(parent_label, p.label(u)) {
                self.stats.negation_clusters += 1;
                let key = cluster.key;
                if key.directed {
                    if key.src_label == parent_label
                        && !filt.allowed.contains(&(Orient::Out, key.edge_label))
                    {
                        subtract_sorted(out, cluster.out_neighbors(w));
                    }
                    if key.dst_label == parent_label
                        && !filt.allowed.contains(&(Orient::In, key.edge_label))
                    {
                        subtract_sorted(out, cluster.in_neighbors(w));
                    }
                } else if !filt.allowed.contains(&(Orient::Und, key.edge_label)) {
                    subtract_sorted(out, cluster.out_neighbors(w));
                }
                if out.is_empty() {
                    return;
                }
            }
        }
    }
}

/// Outcome of a parallel count: the total plus the merged per-worker
/// counters ([`ExecStats::merge`] — counters add, `timed_out` is sticky,
/// so a partial result is never silently reported as complete).
#[derive(Clone, Debug)]
pub struct ParallelRun {
    pub count: u64,
    pub stats: ExecStats,
}

/// Count embeddings using `threads` worker threads, partitioning the root
/// vertex's candidates round-robin (each partial count is an independent
/// [`Executor`] run; partials sum exactly to the sequential count).
///
/// The paper evaluates single-threaded matching; this is the natural
/// data-parallel extension its execution model admits — SCE caches and
/// factorized counting work unchanged inside each partition. A shared
/// `progress` sink, if given, accumulates recursion nodes across workers.
pub fn count_parallel(
    star: &csce_ccsr::GcStar<'_>,
    pattern: &csce_graph::Graph,
    plan: &Plan,
    config: RunConfig,
    threads: usize,
    progress: Option<Arc<AtomicU64>>,
) -> ParallelRun {
    assert!(threads >= 1);
    let worker = |offset: usize| {
        let catalog = Catalog::new(pattern, star);
        let mut exec = Executor::new(&catalog, plan, config);
        if threads > 1 {
            exec = exec.with_root_partition(threads, offset);
        }
        if let Some(sink) = &progress {
            exec = exec.with_progress(Arc::clone(sink));
        }
        let count = exec.count();
        (count, exec.stats().clone())
    };
    if threads == 1 {
        let (count, stats) = worker(0);
        return ParallelRun { count, stats };
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> =
            (0..threads).map(|offset| scope.spawn(move || worker(offset))).collect();
        let mut total = 0u64;
        let mut stats = ExecStats::default();
        for h in handles {
            let (count, worker_stats) = h.join().expect("worker panicked");
            total += count;
            stats.merge(&worker_stats);
        }
        // Merged `embeddings` double-counts nothing, but keep it equal to
        // the summed total for the invariant embeddings == count.
        stats.embeddings = total;
        ParallelRun { count: total, stats }
    })
}

/// A purely sequential execution tree over `Φ*` (factorization disabled).
fn sequential_tree(order: &[VertexId]) -> ExecNode {
    let mut node = ExecNode::Done;
    for &u in order.iter().rev() {
        node = ExecNode::Seq { u, next: Box::new(node) };
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Planner, PlannerConfig};
    use csce_ccsr::{build_ccsr, read_csr, Ccsr};
    use csce_graph::{oracle_count, Graph, GraphBuilder, Variant, NO_LABEL};

    fn run(g: &Graph, p: &Graph, variant: Variant, config: RunConfig) -> (u64, ExecStats) {
        let gc: Ccsr = build_ccsr(g);
        let star = read_csr(&gc, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec = Executor::new(&catalog, &plan, config);
        let count = exec.count();
        (count, exec.stats().clone())
    }

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn matches_oracle_on_paw() {
        let g = paw();
        let p = path3();
        for variant in Variant::ALL {
            let (count, _) = run(&g, &p, variant, RunConfig::default());
            assert_eq!(count, oracle_count(&g, &p, variant), "{variant}");
        }
    }

    #[test]
    fn factorization_matches_sequential() {
        // Star pattern with same-label center, distinct-label leaves in a
        // labeled data graph.
        let mut gb = GraphBuilder::new();
        let c0 = gb.add_vertex(0);
        let c1 = gb.add_vertex(0);
        for l in [1u32, 1, 2, 3] {
            let v = gb.add_vertex(l);
            gb.add_undirected_edge(c0, v, NO_LABEL).unwrap();
            gb.add_undirected_edge(c1, v, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_vertex(3);
        for leaf in 1..4 {
            pb.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let p = pb.build();
        for variant in Variant::ALL {
            let (with, stats) = run(&g, &p, variant, RunConfig::default());
            let (without, _) =
                run(&g, &p, variant, RunConfig { factorize: false, ..Default::default() });
            assert_eq!(with, without, "{variant}");
            assert_eq!(with, oracle_count(&g, &p, variant), "{variant}");
            if variant == Variant::Homomorphic {
                assert!(stats.splits_taken > 0, "splits fire for homomorphism");
            }
        }
    }

    #[test]
    fn sce_cache_hits_occur_and_do_not_change_counts() {
        // Two independent leaves under a path: reuse should fire.
        let mut gb = GraphBuilder::new();
        b_chain(&mut gb, 6);
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 4);
        let p = pb.build();
        let (with, stats_with) = run(&g, &p, Variant::EdgeInduced, RunConfig::default());
        let (without, stats_without) = run(
            &g,
            &p,
            Variant::EdgeInduced,
            RunConfig { use_sce_cache: false, ..Default::default() },
        );
        assert_eq!(with, without);
        assert_eq!(with, oracle_count(&g, &p, Variant::EdgeInduced));
        assert!(stats_without.sce_cache_hits == 0);
        assert!(stats_with.candidate_computations <= stats_without.candidate_computations);
    }

    fn b_chain(b: &mut GraphBuilder, n: usize) {
        b.add_unlabeled_vertices(n);
        for i in 0..n - 1 {
            b.add_undirected_edge(i as u32, i as u32 + 1, NO_LABEL).unwrap();
        }
    }

    #[test]
    fn enumerate_agrees_with_count_and_can_stop() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g);
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default());
        let mut embeddings = Vec::new();
        exec.enumerate(&mut |f| {
            embeddings.push(f.to_vec());
            true
        });
        assert_eq!(embeddings.len() as u64, oracle_count(&g, &p, Variant::EdgeInduced));
        // Every reported embedding is valid.
        for f in &embeddings {
            for e in p.edges() {
                assert!(g.has_edge(f[e.src as usize], f[e.dst as usize], e.label, e.directed));
            }
        }
        // Early stop.
        let mut seen = 0;
        exec.enumerate(&mut |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn vertex_induced_negation_filters() {
        let g = paw();
        let p = path3();
        let (count, _) = run(&g, &p, Variant::VertexInduced, RunConfig::default());
        assert_eq!(count, 4, "paths through the pendant only (oracle-checked value)");
        assert_eq!(count, oracle_count(&g, &p, Variant::VertexInduced));
    }

    #[test]
    fn timeout_flags_partial_results() {
        // A pathological homomorphic count on a clique would run long;
        // with a zero time limit it must stop immediately and flag it.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(12);
        for i in 0..12u32 {
            for j in i + 1..12 {
                gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 9);
        let p = pb.build();
        let gc = build_ccsr(&g);
        let star = read_csr(&gc, &p, Variant::Homomorphic);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::Homomorphic);
        let mut exec = Executor::new(
            &catalog,
            &plan,
            RunConfig { time_limit: Some(Duration::ZERO), factorize: false, ..Default::default() },
        );
        let _ = exec.count();
        assert!(exec.stats().timed_out);
    }

    #[test]
    fn restrictions_break_symmetry_exactly() {
        // Triangles in K4: 24 mappings, 4 distinct subgraphs. Full orbit
        // restrictions f(0)<f(1)<f(2) keep one mapping per subgraph.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            pb.add_undirected_edge(a, b, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let gc = build_ccsr(&g);
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default())
            .with_restrictions(&[(0, 1), (1, 2)]);
        assert_eq!(exec.count(), 4);
        // Without restrictions: all 24 mappings.
        let mut plain = Executor::new(&catalog, &plan, RunConfig::default());
        assert_eq!(plain.count(), 24);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(30);
        for i in 0..30u32 {
            for j in i + 1..30 {
                if (i * 31 + j * 17) % 5 == 0 {
                    gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
                }
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 5);
        let p = pb.build();
        let gc = build_ccsr(&g);
        for variant in Variant::ALL {
            let star = read_csr(&gc, &p, variant);
            let catalog = Catalog::new(&p, &star);
            let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
            let mut seq_exec = Executor::new(&catalog, &plan, RunConfig::default());
            let sequential = seq_exec.count();
            let seq_scanned = seq_exec.stats().candidates_scanned;
            for threads in [1usize, 2, 3, 7] {
                let parallel =
                    count_parallel(&star, &p, &plan, RunConfig::default(), threads, None);
                assert_eq!(parallel.count, sequential, "{variant} with {threads} threads");
                assert_eq!(parallel.stats.embeddings, parallel.count);
                assert!(!parallel.stats.timed_out);
                // Workers partition only the root loop; below the root the
                // same subtrees are explored, so merged scans can exceed —
                // but never undershoot — the sequential count... except
                // that factorized Splits may prune differently per
                // partition. Root-candidate coverage keeps this exact for
                // threads == 1.
                if threads == 1 {
                    assert_eq!(parallel.stats.candidates_scanned, seq_scanned);
                }
            }
        }
    }

    #[test]
    fn root_partitions_sum_exactly() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g);
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let full = Executor::new(&catalog, &plan, RunConfig::default()).count();
        let parts: u64 = (0..3)
            .map(|offset| {
                Executor::new(&catalog, &plan, RunConfig::default())
                    .with_root_partition(3, offset)
                    .count()
            })
            .sum();
        assert_eq!(parts, full);
    }

    #[test]
    fn single_vertex_pattern() {
        let mut gb = GraphBuilder::new();
        gb.add_vertex(3);
        gb.add_vertex(3);
        gb.add_vertex(4);
        gb.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(3);
        let p = pb.build();
        let (count, _) = run(&g, &p, Variant::EdgeInduced, RunConfig::default());
        assert_eq!(count, 2);
    }
}
