//! Execution: the pipelined worst-case-optimal join with SCE reuse.
//!
//! The executor grows partial embeddings one pattern vertex at a time
//! along `Φ*`, computing each vertex's candidate set as the intersection
//! of the CCSR neighbor rows of its already-matched pattern neighbors
//! (a pipelined WCOJ, §III), with vertex-induced negation subtracting the
//! data neighbors of matched non-neighbors.
//!
//! Sequential Candidate Equivalence is exploited twice:
//!
//! * **candidate caching** — a vertex's candidate set is a pure function
//!   of its `H`-parents' mappings; the signature is remembered and the set
//!   reused while it holds (injectivity is re-filtered per candidate, as
//!   Definition 1's `C \ {v_x}` prescribes). NEC-equivalent vertices with
//!   identical parents share one cache slot.
//! * **factorized counting** — in counting mode the plan's
//!   [`ExecNode`](crate::plan::ExecNode) tree multiplies the counts of
//!   `H`-independent suffix components instead of enumerating their
//!   Cartesian product.
//!
//! The module is layered:
//!
//! * [`engine`] — the recursion itself ([`Executor`]): one candidate loop
//!   serving factorized counting and sink-driven search alike.
//! * [`sink`] — [`MatchSink`] and its implementations: what happens to
//!   each complete embedding (count, collect, first-`k`, callback).
//! * [`scheduler`] — the parallel run: dynamic chunked claiming of root
//!   candidates, cooperative cancellation, panic containment, and the
//!   public parallel entry points ([`count_parallel`],
//!   [`collect_parallel`], [`enumerate_parallel`]).
//! * [`stats`] — the counters every run reports ([`ExecStats`]).

mod engine;
mod scheduler;
mod sink;
mod stats;

pub use engine::Executor;
pub use scheduler::{
    adaptive_chunk, collect_parallel, count_parallel, count_parallel_observed, enumerate_parallel,
    run_parallel, sink_parallel, CollectRun, ExecError, ParallelRun, Scheduler,
};
pub use sink::{CallbackSink, CollectSink, CountSink, FirstKSink, MatchSink};
pub use stats::{DeepStats, ExecStats};

use std::time::Duration;

/// Runtime options.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Use the SCE candidate cache (`false` recomputes every time — the
    /// ablation knob).
    pub use_sce_cache: bool,
    /// Use the factorized execution tree in counting mode.
    pub factorize: bool,
    /// Abort after this much wall time (counts and stats are then partial
    /// and `stats.timed_out` is set). In a parallel run the deadline is
    /// shared: one worker hitting it stops all of them.
    pub time_limit: Option<Duration>,
    /// Collect [`DeepStats`] (per-depth + intersection counters). Only
    /// effective when the `deep-stats` feature is compiled in; the hot
    /// loop pays one predictable branch when off.
    pub profile: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { use_sce_cache: true, factorize: true, time_limit: None, profile: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::{Planner, PlannerConfig};
    use csce_ccsr::{build_ccsr, read_csr, Ccsr};
    use csce_graph::{oracle_count, Graph, GraphBuilder, Variant, VertexId, NO_LABEL};
    use std::time::Duration;

    fn run(g: &Graph, p: &Graph, variant: Variant, config: RunConfig) -> (u64, ExecStats) {
        let gc: Ccsr = build_ccsr(g).unwrap();
        let star = read_csr(&gc, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec = Executor::new(&catalog, &plan, config);
        let count = exec.count();
        (count, exec.stats().clone())
    }

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn matches_oracle_on_paw() {
        let g = paw();
        let p = path3();
        for variant in Variant::ALL {
            let (count, _) = run(&g, &p, variant, RunConfig::default());
            assert_eq!(count, oracle_count(&g, &p, variant), "{variant}");
        }
    }

    #[test]
    fn factorization_matches_sequential() {
        // Star pattern with same-label center, distinct-label leaves in a
        // labeled data graph.
        let mut gb = GraphBuilder::new();
        let c0 = gb.add_vertex(0);
        let c1 = gb.add_vertex(0);
        for l in [1u32, 1, 2, 3] {
            let v = gb.add_vertex(l);
            gb.add_undirected_edge(c0, v, NO_LABEL).unwrap();
            gb.add_undirected_edge(c1, v, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_vertex(3);
        for leaf in 1..4 {
            pb.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let p = pb.build();
        for variant in Variant::ALL {
            let (with, stats) = run(&g, &p, variant, RunConfig::default());
            let (without, _) =
                run(&g, &p, variant, RunConfig { factorize: false, ..Default::default() });
            assert_eq!(with, without, "{variant}");
            assert_eq!(with, oracle_count(&g, &p, variant), "{variant}");
            if variant == Variant::Homomorphic {
                assert!(stats.splits_taken > 0, "splits fire for homomorphism");
            }
        }
    }

    #[test]
    fn sce_cache_hits_occur_and_do_not_change_counts() {
        // Two independent leaves under a path: reuse should fire.
        let mut gb = GraphBuilder::new();
        b_chain(&mut gb, 6);
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 4);
        let p = pb.build();
        let (with, stats_with) = run(&g, &p, Variant::EdgeInduced, RunConfig::default());
        let (without, stats_without) = run(
            &g,
            &p,
            Variant::EdgeInduced,
            RunConfig { use_sce_cache: false, ..Default::default() },
        );
        assert_eq!(with, without);
        assert_eq!(with, oracle_count(&g, &p, Variant::EdgeInduced));
        assert!(stats_without.sce_cache_hits == 0);
        assert!(stats_with.candidate_computations <= stats_without.candidate_computations);
    }

    fn b_chain(b: &mut GraphBuilder, n: usize) {
        b.add_unlabeled_vertices(n);
        for i in 0..n - 1 {
            b.add_undirected_edge(i as u32, i as u32 + 1, NO_LABEL).unwrap();
        }
    }

    #[test]
    fn enumerate_agrees_with_count_and_can_stop() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default());
        let mut embeddings = Vec::new();
        exec.enumerate(&mut |f| {
            embeddings.push(f.to_vec());
            true
        });
        assert_eq!(embeddings.len() as u64, oracle_count(&g, &p, Variant::EdgeInduced));
        // Every reported embedding is valid.
        for f in &embeddings {
            for e in p.edges() {
                assert!(g.has_edge(f[e.src as usize], f[e.dst as usize], e.label, e.directed));
            }
        }
        // Early stop.
        let mut seen = 0;
        exec.enumerate(&mut |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn sinks_drive_the_same_search() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let oracle = oracle_count(&g, &p, Variant::EdgeInduced);

        let mut exec = Executor::new(&catalog, &plan, RunConfig::default());
        let mut count = CountSink::default();
        exec.drive(&mut count);
        assert_eq!(count.count, oracle);

        let mut collect = CollectSink::default();
        exec.drive(&mut collect);
        assert_eq!(collect.embeddings.len() as u64, oracle);

        let mut first2 = FirstKSink::new(2);
        exec.drive(&mut first2);
        assert_eq!(first2.embeddings.len(), 2);
        // The first-k prefix is a prefix of the full enumeration order.
        assert_eq!(first2.embeddings[..], collect.embeddings[..2]);
    }

    #[test]
    fn vertex_induced_negation_filters() {
        let g = paw();
        let p = path3();
        let (count, _) = run(&g, &p, Variant::VertexInduced, RunConfig::default());
        assert_eq!(count, 4, "paths through the pendant only (oracle-checked value)");
        assert_eq!(count, oracle_count(&g, &p, Variant::VertexInduced));
    }

    #[test]
    fn timeout_flags_partial_results() {
        // A pathological homomorphic count on a clique would run long;
        // with a zero time limit it must stop immediately and flag it.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(12);
        for i in 0..12u32 {
            for j in i + 1..12 {
                gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 9);
        let p = pb.build();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::Homomorphic);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::Homomorphic);
        let mut exec = Executor::new(
            &catalog,
            &plan,
            RunConfig { time_limit: Some(Duration::ZERO), factorize: false, ..Default::default() },
        );
        let _ = exec.count();
        assert!(exec.stats().timed_out);
    }

    #[test]
    fn restrictions_break_symmetry_exactly() {
        // Triangles in K4: 24 mappings, 4 distinct subgraphs. Full orbit
        // restrictions f(0)<f(1)<f(2) keep one mapping per subgraph.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(4);
        for i in 0..4u32 {
            for j in i + 1..4 {
                gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            pb.add_undirected_edge(a, b, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default())
            .with_restrictions(&[(0, 1), (1, 2)]);
        assert_eq!(exec.count(), 4);
        // Without restrictions: all 24 mappings.
        let mut plain = Executor::new(&catalog, &plan, RunConfig::default());
        assert_eq!(plain.count(), 24);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(30);
        for i in 0..30u32 {
            for j in i + 1..30 {
                if (i * 31 + j * 17) % 5 == 0 {
                    gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
                }
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        b_chain(&mut pb, 5);
        let p = pb.build();
        let gc = build_ccsr(&g).unwrap();
        for variant in Variant::ALL {
            let star = read_csr(&gc, &p, variant);
            let catalog = Catalog::new(&p, &star);
            let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
            let mut seq_exec = Executor::new(&catalog, &plan, RunConfig::default());
            let sequential = seq_exec.count();
            let seq_scanned = seq_exec.stats().candidates_scanned;
            for threads in [1usize, 2, 3, 7] {
                let parallel =
                    count_parallel(&star, &p, &plan, RunConfig::default(), threads, None)
                        .expect("no worker panicked");
                assert_eq!(parallel.count, sequential, "{variant} with {threads} threads");
                assert_eq!(parallel.stats.embeddings, parallel.count);
                assert!(!parallel.stats.timed_out);
                assert_eq!(parallel.workers.len(), threads);
                // Workers partition only the root loop; below the root the
                // same subtrees are explored, so merged scans can exceed —
                // but never undershoot — the sequential count... except
                // that factorized Splits may prune differently per
                // partition. Root-candidate coverage keeps this exact for
                // threads == 1.
                if threads == 1 {
                    assert_eq!(parallel.stats.candidates_scanned, seq_scanned);
                    assert_eq!(parallel.stats.chunks_claimed, 0, "no scheduler when inline");
                } else if parallel.count > 0 {
                    assert!(parallel.stats.chunks_claimed > 0, "workers claim chunks");
                }
            }
        }
    }

    #[test]
    fn root_partitions_sum_exactly() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let full = Executor::new(&catalog, &plan, RunConfig::default()).count();
        let parts: u64 = (0..3)
            .map(|offset| {
                Executor::new(&catalog, &plan, RunConfig::default())
                    .with_root_partition(3, offset)
                    .count()
            })
            .sum();
        assert_eq!(parts, full);
    }

    #[test]
    fn scheduled_executors_sum_exactly() {
        // Drain one shared scheduler with sequential executors: the
        // claimed chunks must partition the root candidates, so partial
        // counts sum to the full count.
        use std::sync::Arc;
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
        let full = Executor::new(&catalog, &plan, RunConfig::default()).count();
        let sched = Arc::new(Scheduler::new(3, None));
        let mut sum = 0u64;
        let mut claimed = 0u64;
        for _ in 0..3 {
            let mut exec = Executor::new(&catalog, &plan, RunConfig::default())
                .with_scheduler(Arc::clone(&sched));
            sum += exec.count();
            claimed += exec.stats().chunks_claimed;
        }
        assert_eq!(sum, full);
        assert!(claimed > 0);
        // The cursor is spent: a fourth executor on the same scheduler
        // claims nothing and counts nothing.
        let mut late =
            Executor::new(&catalog, &plan, RunConfig::default()).with_scheduler(Arc::clone(&sched));
        assert_eq!(late.count(), 0);
    }

    #[test]
    fn collect_parallel_matches_sequential_set() {
        let g = paw();
        let p = path3();
        let gc = build_ccsr(&g).unwrap();
        for variant in Variant::ALL {
            let star = read_csr(&gc, &p, variant);
            let catalog = Catalog::new(&p, &star);
            let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
            let mut seq = Executor::new(&catalog, &plan, RunConfig::default());
            let mut expected: Vec<Vec<VertexId>> = Vec::new();
            seq.enumerate(&mut |f| {
                expected.push(f.to_vec());
                true
            });
            expected.sort_unstable();
            for threads in [1usize, 2, 4] {
                let run = collect_parallel(
                    &star,
                    &p,
                    &plan,
                    RunConfig::default(),
                    threads,
                    None,
                    &csce_obs::Recorder::disabled(),
                )
                .expect("no worker panicked");
                assert_eq!(run.embeddings, expected, "{variant} with {threads} threads");
            }
        }
    }

    #[test]
    fn single_vertex_pattern() {
        let mut gb = GraphBuilder::new();
        gb.add_vertex(3);
        gb.add_vertex(3);
        gb.add_vertex(4);
        gb.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(3);
        let p = pb.build();
        let (count, _) = run(&g, &p, Variant::EdgeInduced, RunConfig::default());
        assert_eq!(count, 2);
    }
}
