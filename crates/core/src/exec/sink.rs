//! Match sinks: what happens to each complete embedding.
//!
//! The executor grows partial embeddings along `Φ*` and, at full depth,
//! hands the mapping array to a [`MatchSink`]. One recursion body serves
//! counting, enumeration, collection, first-`k` early stop, and arbitrary
//! callbacks — the sink decides, via [`std::ops::ControlFlow`], whether
//! the search continues.
//!
//! Sinks are also the unit of parallelism: the scheduler gives every
//! worker its own sink instance (so `on_embedding` never synchronizes)
//! and folds them together with [`MatchSink::merge`] once the workers
//! join. Workers claim disjoint root-candidate chunks, so merged results
//! are duplicate-free by construction.

use csce_graph::VertexId;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of complete embeddings.
///
/// `on_embedding` receives the mapping array (`f[i]` = data vertex
/// matched to pattern vertex `i`) and returns
/// [`ControlFlow::Break`] to stop the search — locally for a sequential
/// run, cooperatively across all workers for a parallel one.
pub trait MatchSink {
    /// Consume one embedding; `Break` stops the search.
    fn on_embedding(&mut self, f: &[VertexId]) -> ControlFlow<()>;

    /// Fold another worker's sink of the same type into this one — the
    /// reduction used after a parallel run. Workers enumerate disjoint
    /// root partitions, so merging never needs to deduplicate.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;
}

/// Counts embeddings (saturating — a homomorphic count can overflow
/// `u64` long before it finishes enumerating).
#[derive(Clone, Debug, Default)]
pub struct CountSink {
    pub count: u64,
}

impl MatchSink for CountSink {
    #[inline]
    fn on_embedding(&mut self, _f: &[VertexId]) -> ControlFlow<()> {
        self.count = self.count.saturating_add(1);
        ControlFlow::Continue(())
    }

    fn merge(&mut self, other: Self) {
        self.count = self.count.saturating_add(other.count);
    }
}

/// Collects every embedding as an owned mapping array.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    pub embeddings: Vec<Vec<VertexId>>,
}

impl MatchSink for CollectSink {
    #[inline]
    fn on_embedding(&mut self, f: &[VertexId]) -> ControlFlow<()> {
        self.embeddings.push(f.to_vec());
        ControlFlow::Continue(())
    }

    fn merge(&mut self, other: Self) {
        let mut theirs = other.embeddings;
        self.embeddings.append(&mut theirs);
    }
}

/// Collects at most `k` embeddings, then stops the search.
///
/// In a parallel run every worker shares one admission counter
/// ([`FirstKSink::shared`]): an embedding is kept only if it wins one of
/// the `k` global slots, so the merged result holds *exactly*
/// `min(k, total)` embeddings no matter how the workers interleave.
#[derive(Clone, Debug)]
pub struct FirstKSink {
    k: usize,
    /// Global admission counter for parallel runs; `None` counts locally.
    admitted: Option<Arc<AtomicU64>>,
    pub embeddings: Vec<Vec<VertexId>>,
}

impl FirstKSink {
    /// A sequential first-`k` sink.
    pub fn new(k: usize) -> FirstKSink {
        FirstKSink { k, admitted: None, embeddings: Vec::new() }
    }

    /// A worker-side sink drawing admissions from a shared counter; all
    /// workers of one run must share the same `counter`.
    pub fn shared(k: usize, counter: Arc<AtomicU64>) -> FirstKSink {
        FirstKSink { k, admitted: Some(counter), embeddings: Vec::new() }
    }

    /// The requested limit.
    pub fn limit(&self) -> usize {
        self.k
    }
}

impl MatchSink for FirstKSink {
    fn on_embedding(&mut self, f: &[VertexId]) -> ControlFlow<()> {
        let slot = match &self.admitted {
            Some(counter) => counter.fetch_add(1, Ordering::Relaxed),
            None => self.embeddings.len() as u64,
        };
        if slot < self.k as u64 {
            self.embeddings.push(f.to_vec());
        }
        // Stop once the global quota is filled — this worker may have
        // contributed fewer than k, but no further slots exist.
        if slot + 1 >= self.k as u64 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn merge(&mut self, other: Self) {
        let mut theirs = other.embeddings;
        self.embeddings.append(&mut theirs);
        debug_assert!(self.embeddings.len() <= self.k, "shared admission keeps the quota exact");
    }
}

/// Adapts a `FnMut(&[VertexId]) -> bool` callback (the pre-sink
/// `Executor::enumerate` contract: return `false` to stop) to the sink
/// interface. Callbacks carry caller state, so a `CallbackSink` is
/// sequential-only: `merge` discards the other side.
pub struct CallbackSink<F> {
    emit: F,
}

impl<F> CallbackSink<F>
where
    F: FnMut(&[VertexId]) -> bool,
{
    pub fn new(emit: F) -> CallbackSink<F> {
        CallbackSink { emit }
    }
}

impl<F> MatchSink for CallbackSink<F>
where
    F: FnMut(&[VertexId]) -> bool,
{
    #[inline]
    fn on_embedding(&mut self, f: &[VertexId]) -> ControlFlow<()> {
        if (self.emit)(f) {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    }

    fn merge(&mut self, _other: Self) {
        // Callback state lives with the caller; there is nothing to fold.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_saturates() {
        let mut s = CountSink { count: u64::MAX - 1 };
        assert!(s.on_embedding(&[0]).is_continue());
        assert!(s.on_embedding(&[0]).is_continue());
        assert_eq!(s.count, u64::MAX);
        let other = CountSink { count: 5 };
        s.merge(other);
        assert_eq!(s.count, u64::MAX);
    }

    #[test]
    fn collect_sink_merges_in_order() {
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        let _ = a.on_embedding(&[1, 2]);
        let _ = b.on_embedding(&[3, 4]);
        a.merge(b);
        assert_eq!(a.embeddings, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn first_k_stops_at_k_sequentially() {
        let mut s = FirstKSink::new(2);
        assert!(s.on_embedding(&[1]).is_continue());
        assert!(s.on_embedding(&[2]).is_break());
        assert_eq!(s.embeddings.len(), 2);
        assert_eq!(s.limit(), 2);
    }

    #[test]
    fn first_k_shared_counter_is_exact_across_sinks() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut a = FirstKSink::shared(3, Arc::clone(&counter));
        let mut b = FirstKSink::shared(3, Arc::clone(&counter));
        assert!(a.on_embedding(&[1]).is_continue());
        assert!(b.on_embedding(&[2]).is_continue());
        assert!(a.on_embedding(&[3]).is_break());
        // The quota is spent: further embeddings are rejected everywhere.
        assert!(b.on_embedding(&[4]).is_break());
        assert_eq!(a.embeddings.len() + b.embeddings.len(), 3);
        a.merge(b);
        assert_eq!(a.embeddings.len(), 3);
    }

    #[test]
    fn callback_sink_maps_bool_to_control_flow() {
        let mut stop_after = 2;
        let mut sink = CallbackSink::new(|_f: &[VertexId]| {
            stop_after -= 1;
            stop_after > 0
        });
        assert!(sink.on_embedding(&[0]).is_continue());
        assert!(sink.on_embedding(&[0]).is_break());
    }
}
