//! # csce-core
//!
//! The CSCE subgraph matching engine — the primary contribution of
//! *"Large Subgraph Matching: A Comprehensive and Efficient Approach for
//! Heterogeneous Graphs"* (ICDE 2024) — on top of the `csce-ccsr` index:
//!
//! * plan generation (§VI): the Greatest-Constraint-First heuristic with
//!   CCSR cluster tie-breaking, the candidate-dependency DAG of §V,
//!   descendant sizes, and the Largest-Descendant-Size-First topological
//!   order, plus NEC candidate sharing;
//! * execution (§III): a pipelined worst-case-optimal join that exploits
//!   Sequential Candidate Equivalence through candidate-set caching and
//!   factorized counting;
//! * all three variants: edge-induced, vertex-induced (with cluster-based
//!   negation) and homomorphic.
//!
//! ## Quickstart
//!
//! ```
//! use csce_core::Engine;
//! use csce_graph::{GraphBuilder, Variant, NO_LABEL};
//!
//! // A triangle data graph and a wedge (path of 3) pattern.
//! let mut g = GraphBuilder::new();
//! g.add_unlabeled_vertices(3);
//! g.add_undirected_edge(0, 1, NO_LABEL).unwrap();
//! g.add_undirected_edge(1, 2, NO_LABEL).unwrap();
//! g.add_undirected_edge(2, 0, NO_LABEL).unwrap();
//! let g = g.build();
//!
//! let mut p = GraphBuilder::new();
//! p.add_unlabeled_vertices(3);
//! p.add_undirected_edge(0, 1, NO_LABEL).unwrap();
//! p.add_undirected_edge(1, 2, NO_LABEL).unwrap();
//! let p = p.build();
//!
//! let engine = Engine::build(&g); // offline: cluster G into CCSR form
//! assert_eq!(engine.count(&p, Variant::EdgeInduced), 6);
//! assert_eq!(engine.count(&p, Variant::VertexInduced), 0);
//! ```

#![forbid(unsafe_code)]

pub mod bitset;
pub mod catalog;
pub mod exec;
pub mod plan;

pub use catalog::Catalog;
pub use exec::{count_parallel, DeepStats, ExecStats, Executor, ParallelRun, RunConfig};
pub use plan::{Plan, Planner, PlannerConfig, SceAnalysis};

use csce_ccsr::{build_ccsr, read_csr, Ccsr, ReadStats};
use csce_obs::Recorder;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// Timing and outcome of one full query (read → plan → execute), the
/// decomposition Fig. 6 / Fig. 11 report.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Number of embeddings found.
    pub count: u64,
    /// Execution counters.
    pub stats: ExecStats,
    /// Static SCE analysis of the chosen plan.
    pub sce: SceAnalysis,
    /// Time spent in `ReadCSR` (cluster selection + decompression).
    pub read_time: Duration,
    /// Time spent generating the plan (GCF + DAG + LDSF + NEC).
    pub plan_time: Duration,
    /// Time spent finding embeddings.
    pub exec_time: Duration,
    /// Decoded working-set size in bytes (`G_C^*`).
    pub read_bytes: usize,
    /// CCSR-side work counters of the `ReadCSR` stage.
    pub read_stats: ReadStats,
}

impl QueryOutput {
    /// Total online time (read + plan + execute).
    pub fn total_time(&self) -> Duration {
        self.read_time + self.plan_time + self.exec_time
    }

    /// Embeddings per second of total time — the paper's throughput metric
    /// (§VII-B).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.count as f64 / secs
        }
    }
}

/// The top-level engine: owns the clustered data graph (`G_C`) and
/// answers matching tasks against it.
pub struct Engine {
    ccsr: Ccsr,
}

impl Engine {
    /// Offline stage: cluster a data graph into CCSR form. The graph
    /// itself is not retained (`G_C` is equivalent to `G`).
    pub fn build(g: &Graph) -> Engine {
        Engine { ccsr: build_ccsr(g) }
    }

    /// Wrap an already-built (e.g. deserialized) `G_C`.
    pub fn from_ccsr(ccsr: Ccsr) -> Engine {
        Engine { ccsr }
    }

    /// The underlying clustered storage.
    pub fn ccsr(&self) -> &Ccsr {
        &self.ccsr
    }

    /// Count all embeddings of `p` under `variant` with default settings.
    pub fn count(&self, p: &Graph, variant: Variant) -> u64 {
        self.run(p, variant, PlannerConfig::csce(), RunConfig::default()).count
    }

    /// Full query with explicit planner and runtime configuration,
    /// returning the per-stage timing decomposition.
    pub fn run(
        &self,
        p: &Graph,
        variant: Variant,
        planner: PlannerConfig,
        run: RunConfig,
    ) -> QueryOutput {
        self.run_observed(p, variant, planner, run, &Recorder::disabled(), 1, None)
    }

    /// [`Engine::run`] with observability: phase spans land in `recorder`
    /// (`read → plan{gcf,dag,descendant,ldsf,nec} → execute`), `threads`
    /// workers split the root loop, and a `progress` sink — if given —
    /// receives live recursion-node counts for heartbeat reporting.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        &self,
        p: &Graph,
        variant: Variant,
        planner: PlannerConfig,
        run: RunConfig,
        recorder: &Recorder,
        threads: usize,
        progress: Option<Arc<AtomicU64>>,
    ) -> QueryOutput {
        let t0 = Instant::now();
        let star = recorder.time("read", || read_csr(&self.ccsr, p, variant));
        let read_time = t0.elapsed();
        let read_bytes = star.heap_bytes();
        let read_stats = star.read_stats();
        let catalog = Catalog::new(p, &star);
        let t1 = Instant::now();
        let plan = {
            let _span = recorder.span("plan");
            Planner::new(planner).plan_recorded(&catalog, variant, recorder)
        };
        let plan_time = t1.elapsed();
        let t2 = Instant::now();
        let _exec_span = recorder.span("execute");
        let result = exec::count_parallel(&star, p, &plan, run, threads.max(1), progress);
        drop(_exec_span);
        let exec_time = t2.elapsed();
        QueryOutput {
            count: result.count,
            stats: result.stats,
            sce: plan.sce.clone(),
            read_time,
            plan_time,
            exec_time,
            read_bytes,
            read_stats,
        }
    }

    /// Generate (and return) just the plan, without executing — the
    /// plan-scalability experiments (Fig. 10) time exactly this.
    pub fn plan(&self, p: &Graph, variant: Variant, config: PlannerConfig) -> Plan {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        Planner::new(config).plan(&catalog, variant)
    }

    /// Count *distinct subgraphs* (embeddings up to pattern automorphism)
    /// under an injective variant: symmetry-breaking ordering restrictions
    /// keep exactly one mapping per orbit, so
    /// `count_subgraphs * |Aut(P)| == count`.
    ///
    /// CSCE's own optimization never uses symmetry breaking (Finding 2 —
    /// restriction generation is factorial on symmetric patterns), so this
    /// is an opt-in application-level API; the EMAIL-EU case study's
    /// clique counting uses it.
    pub fn count_subgraphs(&self, p: &Graph, variant: Variant) -> u64 {
        assert!(variant.injective(), "distinct-subgraph counting needs an injective variant");
        let (restrictions, _aut) = csce_graph::automorphism::stabilizer_restrictions(p);
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec =
            Executor::new(&catalog, &plan, RunConfig::default()).with_restrictions(&restrictions);
        exec.count()
    }

    /// Count all embeddings across `threads` worker threads (root
    /// candidates partitioned round-robin). Exact — partials sum to the
    /// sequential count — and the returned stats are the per-worker merge,
    /// so `timed_out` reflects any worker hitting `run.time_limit`.
    pub fn count_parallel(
        &self,
        p: &Graph,
        variant: Variant,
        threads: usize,
        run: RunConfig,
    ) -> ParallelRun {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        drop(catalog);
        exec::count_parallel(&star, p, &plan, run, threads, None)
    }

    /// Enumerate embeddings; `emit` receives the mapping array and returns
    /// whether to continue.
    pub fn enumerate(
        &self,
        p: &Graph,
        variant: Variant,
        emit: &mut dyn FnMut(&[VertexId]) -> bool,
    ) -> ExecStats {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default());
        exec.enumerate(emit);
        exec.stats().clone()
    }

    /// Collect all embeddings as mapping arrays, sorted (test helper; the
    /// result can be huge — prefer [`Engine::enumerate`] in applications).
    pub fn embeddings(&self, p: &Graph, variant: Variant) -> Vec<Vec<VertexId>> {
        let mut out = Vec::new();
        self.enumerate(p, variant, &mut |f| {
            out.push(f.to_vec());
            true
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_embeddings, GraphBuilder, NO_LABEL};

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn engine_embeddings_match_oracle_exactly() {
        let g = paw();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        let engine = Engine::build(&g);
        for variant in Variant::ALL {
            assert_eq!(
                engine.embeddings(&p, variant),
                oracle_embeddings(&g, &p, variant),
                "{variant}"
            );
        }
    }

    #[test]
    fn run_reports_stage_times() {
        let g = paw();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(2);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let p = pb.build();
        let engine = Engine::build(&g);
        let out = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), RunConfig::default());
        assert_eq!(out.count, 8); // 4 undirected edges, both directions
        assert!(out.total_time() >= out.exec_time);
        assert!(out.read_bytes > 0);
        assert!(out.throughput() > 0.0);
    }

    #[test]
    fn subgraph_counts_divide_mapping_counts() {
        let g = paw();
        // Triangle pattern: 6 mappings, |Aut| = 6 -> 1 subgraph.
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, c) in [(0, 1), (1, 2), (2, 0)] {
            pb.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let engine = Engine::build(&g);
        for variant in [Variant::EdgeInduced, Variant::VertexInduced] {
            let mappings = engine.count(&p, variant);
            let subgraphs = engine.count_subgraphs(&p, variant);
            let aut = csce_graph::automorphism::automorphism_count(&p);
            assert_eq!(subgraphs * aut, mappings, "{variant}");
        }
        assert_eq!(engine.count_subgraphs(&p, Variant::EdgeInduced), 1);
    }

    #[test]
    fn persisted_ccsr_round_trips_through_engine() {
        let g = paw();
        let engine = Engine::build(&g);
        let bytes = csce_ccsr::persist::to_bytes(engine.ccsr());
        let engine2 = Engine::from_ccsr(csce_ccsr::persist::from_bytes(&bytes).unwrap());
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        assert_eq!(engine.count(&p, Variant::EdgeInduced), engine2.count(&p, Variant::EdgeInduced));
    }
}
