//! # csce-core
//!
//! The CSCE subgraph matching engine — the primary contribution of
//! *"Large Subgraph Matching: A Comprehensive and Efficient Approach for
//! Heterogeneous Graphs"* (ICDE 2024) — on top of the `csce-ccsr` index:
//!
//! * plan generation (§VI): the Greatest-Constraint-First heuristic with
//!   CCSR cluster tie-breaking, the candidate-dependency DAG of §V,
//!   descendant sizes, and the Largest-Descendant-Size-First topological
//!   order, plus NEC candidate sharing;
//! * execution (§III): a pipelined worst-case-optimal join that exploits
//!   Sequential Candidate Equivalence through candidate-set caching and
//!   factorized counting;
//! * all three variants: edge-induced, vertex-induced (with cluster-based
//!   negation) and homomorphic.
//!
//! ## Quickstart
//!
//! ```
//! use csce_core::Engine;
//! use csce_graph::{GraphBuilder, Variant, NO_LABEL};
//!
//! // A triangle data graph and a wedge (path of 3) pattern.
//! let mut g = GraphBuilder::new();
//! g.add_unlabeled_vertices(3);
//! g.add_undirected_edge(0, 1, NO_LABEL).unwrap();
//! g.add_undirected_edge(1, 2, NO_LABEL).unwrap();
//! g.add_undirected_edge(2, 0, NO_LABEL).unwrap();
//! let g = g.build();
//!
//! let mut p = GraphBuilder::new();
//! p.add_unlabeled_vertices(3);
//! p.add_undirected_edge(0, 1, NO_LABEL).unwrap();
//! p.add_undirected_edge(1, 2, NO_LABEL).unwrap();
//! let p = p.build();
//!
//! let engine = Engine::build(&g); // offline: cluster G into CCSR form
//! assert_eq!(engine.count(&p, Variant::EdgeInduced), 6);
//! assert_eq!(engine.count(&p, Variant::VertexInduced), 0);
//! ```

#![forbid(unsafe_code)]

pub mod bitset;
pub mod catalog;
pub mod exec;
pub mod plan;

pub use catalog::Catalog;
pub use exec::{
    adaptive_chunk, collect_parallel, count_parallel, enumerate_parallel, CallbackSink, CollectRun,
    CollectSink, CountSink, DeepStats, ExecError, ExecStats, Executor, FirstKSink, MatchSink,
    ParallelRun, RunConfig, Scheduler,
};
pub use plan::{Plan, Planner, PlannerConfig, SceAnalysis};

pub use csce_ccsr::CcsrError;

use csce_ccsr::{build_ccsr, read_csr, Ccsr, ReadStats};
use csce_obs::Recorder;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// Timing and outcome of one full query (read → plan → execute), the
/// decomposition Fig. 6 / Fig. 11 report.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Number of embeddings found.
    pub count: u64,
    /// Execution counters (per-worker merge for parallel runs).
    pub stats: ExecStats,
    /// Unmerged per-worker counters, indexed by worker id — the
    /// load-balance view (`len() == threads`).
    pub workers: Vec<ExecStats>,
    /// Static SCE analysis of the chosen plan.
    pub sce: SceAnalysis,
    /// Time spent in `ReadCSR` (cluster selection + decompression).
    pub read_time: Duration,
    /// Time spent generating the plan (GCF + DAG + LDSF + NEC).
    pub plan_time: Duration,
    /// Time spent finding embeddings.
    pub exec_time: Duration,
    /// Decoded working-set size in bytes (`G_C^*`).
    pub read_bytes: usize,
    /// CCSR-side work counters of the `ReadCSR` stage.
    pub read_stats: ReadStats,
}

impl QueryOutput {
    /// Total online time (read + plan + execute).
    pub fn total_time(&self) -> Duration {
        self.read_time + self.plan_time + self.exec_time
    }

    /// Embeddings per second of total time — the paper's throughput metric
    /// (§VII-B).
    pub fn throughput(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.count as f64 / secs
        }
    }
}

/// The top-level engine: owns the clustered data graph (`G_C`) and
/// answers matching tasks against it.
pub struct Engine {
    ccsr: Ccsr,
}

impl Engine {
    /// Offline stage: cluster a data graph into CCSR form. The graph
    /// itself is not retained (`G_C` is equivalent to `G`).
    ///
    /// # Panics
    /// When the graph exceeds the 32-bit CCSR budgets (> `u32::MAX` arcs
    /// in one cluster); use [`Engine::try_build`] to handle that case.
    pub fn build(g: &Graph) -> Engine {
        Engine::try_build(g).expect("data graph exceeds the 32-bit CCSR budget")
    }

    /// Fallible [`Engine::build`]: surfaces [`CcsrError`] instead of
    /// panicking when the data graph overflows the CCSR layout.
    pub fn try_build(g: &Graph) -> Result<Engine, CcsrError> {
        Ok(Engine { ccsr: build_ccsr(g)? })
    }

    /// Wrap an already-built (e.g. deserialized) `G_C`.
    pub fn from_ccsr(ccsr: Ccsr) -> Engine {
        Engine { ccsr }
    }

    /// The underlying clustered storage.
    pub fn ccsr(&self) -> &Ccsr {
        &self.ccsr
    }

    /// Count all embeddings of `p` under `variant` with default settings.
    pub fn count(&self, p: &Graph, variant: Variant) -> u64 {
        self.run(p, variant, PlannerConfig::csce(), RunConfig::default()).count
    }

    /// Full query with explicit planner and runtime configuration,
    /// returning the per-stage timing decomposition.
    pub fn run(
        &self,
        p: &Graph,
        variant: Variant,
        planner: PlannerConfig,
        run: RunConfig,
    ) -> QueryOutput {
        match self.run_observed(p, variant, planner, run, &Recorder::disabled(), 1, None) {
            Ok(out) => out,
            // Single-threaded runs execute inline — no worker to panic.
            Err(err) => unreachable!("sequential run failed: {err}"),
        }
    }

    /// [`Engine::run`] with observability: phase spans land in `recorder`
    /// (`read → plan{gcf,dag,descendant,ldsf,nec} → execute/worker`),
    /// `threads` workers claim root-candidate chunks from a shared
    /// scheduler, and a `progress` sink — if given — receives live
    /// recursion-node counts for heartbeat reporting. A worker panic
    /// stops the remaining workers and comes back as [`ExecError`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        &self,
        p: &Graph,
        variant: Variant,
        planner: PlannerConfig,
        run: RunConfig,
        recorder: &Recorder,
        threads: usize,
        progress: Option<Arc<AtomicU64>>,
    ) -> Result<QueryOutput, ExecError> {
        let t0 = Instant::now();
        let star = recorder.time("read", || read_csr(&self.ccsr, p, variant));
        let read_time = t0.elapsed();
        let read_bytes = star.heap_bytes();
        let read_stats = star.read_stats();
        let catalog = Catalog::new(p, &star);
        let t1 = Instant::now();
        let plan = {
            let _span = recorder.span("plan");
            Planner::new(planner).plan_recorded(&catalog, variant, recorder)
        };
        let plan_time = t1.elapsed();
        let t2 = Instant::now();
        let result = {
            let _exec_span = recorder.span("execute");
            exec::count_parallel_observed(&star, p, &plan, run, threads.max(1), progress, recorder)?
        };
        let exec_time = t2.elapsed();
        Ok(QueryOutput {
            count: result.count,
            stats: result.stats,
            workers: result.workers,
            sce: plan.sce.clone(),
            read_time,
            plan_time,
            exec_time,
            read_bytes,
            read_stats,
        })
    }

    /// Enumerate embeddings across `threads` workers with full per-stage
    /// observability, returning the timing decomposition plus the sorted
    /// embeddings (so the result is independent of worker interleaving).
    /// With `limit`, collection stops cooperatively once `min(limit,
    /// total)` embeddings are admitted — *which* embeddings win the quota
    /// depends on scheduling.
    #[allow(clippy::too_many_arguments)]
    pub fn enumerate_observed(
        &self,
        p: &Graph,
        variant: Variant,
        planner: PlannerConfig,
        run: RunConfig,
        recorder: &Recorder,
        threads: usize,
        progress: Option<Arc<AtomicU64>>,
        limit: Option<usize>,
    ) -> Result<(QueryOutput, Vec<Vec<VertexId>>), ExecError> {
        let t0 = Instant::now();
        let star = recorder.time("read", || read_csr(&self.ccsr, p, variant));
        let read_time = t0.elapsed();
        let read_bytes = star.heap_bytes();
        let read_stats = star.read_stats();
        let catalog = Catalog::new(p, &star);
        let t1 = Instant::now();
        let plan = {
            let _span = recorder.span("plan");
            Planner::new(planner).plan_recorded(&catalog, variant, recorder)
        };
        let plan_time = t1.elapsed();
        let t2 = Instant::now();
        let threads = threads.max(1);
        let result = {
            let _exec_span = recorder.span("execute");
            match limit {
                Some(k) => {
                    exec::enumerate_parallel(&star, p, &plan, run, threads, progress, recorder, k)?
                }
                None => exec::collect_parallel(&star, p, &plan, run, threads, progress, recorder)?,
            }
        };
        let exec_time = t2.elapsed();
        let output = QueryOutput {
            count: result.embeddings.len() as u64,
            stats: result.stats,
            workers: result.workers,
            sce: plan.sce.clone(),
            read_time,
            plan_time,
            exec_time,
            read_bytes,
            read_stats,
        };
        Ok((output, result.embeddings))
    }

    /// Generate (and return) just the plan, without executing — the
    /// plan-scalability experiments (Fig. 10) time exactly this.
    pub fn plan(&self, p: &Graph, variant: Variant, config: PlannerConfig) -> Plan {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        Planner::new(config).plan(&catalog, variant)
    }

    /// Count *distinct subgraphs* (embeddings up to pattern automorphism)
    /// under an injective variant: symmetry-breaking ordering restrictions
    /// keep exactly one mapping per orbit, so
    /// `count_subgraphs * |Aut(P)| == count`.
    ///
    /// CSCE's own optimization never uses symmetry breaking (Finding 2 —
    /// restriction generation is factorial on symmetric patterns), so this
    /// is an opt-in application-level API; the EMAIL-EU case study's
    /// clique counting uses it.
    pub fn count_subgraphs(&self, p: &Graph, variant: Variant) -> u64 {
        assert!(variant.injective(), "distinct-subgraph counting needs an injective variant");
        let (restrictions, _aut) = csce_graph::automorphism::stabilizer_restrictions(p);
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec =
            Executor::new(&catalog, &plan, RunConfig::default()).with_restrictions(&restrictions);
        exec.count()
    }

    /// Count all embeddings across `threads` worker threads (root
    /// candidates claimed in chunks from a shared scheduler). Exact —
    /// partials sum to the sequential count — and the returned stats are
    /// the per-worker merge, so `timed_out` reflects the shared deadline
    /// firing. A worker panic stops the run and returns [`ExecError`].
    pub fn count_parallel(
        &self,
        p: &Graph,
        variant: Variant,
        threads: usize,
        run: RunConfig,
    ) -> Result<ParallelRun, ExecError> {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        drop(catalog);
        exec::count_parallel(&star, p, &plan, run, threads, None)
    }

    /// Enumerate *all* embeddings across `threads` workers, sorted. The
    /// parallel counterpart of [`Engine::embeddings`]: workers claim
    /// disjoint root chunks, so the merged set is duplicate-free by
    /// construction and identical to the sequential enumeration.
    pub fn collect_parallel(
        &self,
        p: &Graph,
        variant: Variant,
        threads: usize,
        run: RunConfig,
    ) -> Result<CollectRun, ExecError> {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        drop(catalog);
        exec::collect_parallel(&star, p, &plan, run, threads, None, &Recorder::disabled())
    }

    /// Enumerate the first `limit` embeddings across `threads` workers
    /// with cooperative early stop: exactly `min(limit, total)` come back
    /// (sorted), no matter how the workers interleave.
    pub fn enumerate_parallel(
        &self,
        p: &Graph,
        variant: Variant,
        threads: usize,
        run: RunConfig,
        limit: usize,
    ) -> Result<CollectRun, ExecError> {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        drop(catalog);
        exec::enumerate_parallel(&star, p, &plan, run, threads, None, &Recorder::disabled(), limit)
    }

    /// Enumerate embeddings; `emit` receives the mapping array and returns
    /// whether to continue.
    pub fn enumerate(
        &self,
        p: &Graph,
        variant: Variant,
        emit: &mut dyn FnMut(&[VertexId]) -> bool,
    ) -> ExecStats {
        let star = read_csr(&self.ccsr, p, variant);
        let catalog = Catalog::new(p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut exec = Executor::new(&catalog, &plan, RunConfig::default());
        exec.enumerate(emit);
        exec.stats().clone()
    }

    /// Collect all embeddings as mapping arrays, sorted (test helper; the
    /// result can be huge — prefer [`Engine::enumerate`] in applications).
    pub fn embeddings(&self, p: &Graph, variant: Variant) -> Vec<Vec<VertexId>> {
        let mut out = Vec::new();
        self.enumerate(p, variant, &mut |f| {
            out.push(f.to_vec());
            true
        });
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_embeddings, GraphBuilder, NO_LABEL};

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn engine_embeddings_match_oracle_exactly() {
        let g = paw();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        let engine = Engine::build(&g);
        for variant in Variant::ALL {
            assert_eq!(
                engine.embeddings(&p, variant),
                oracle_embeddings(&g, &p, variant),
                "{variant}"
            );
        }
    }

    #[test]
    fn run_reports_stage_times() {
        let g = paw();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(2);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let p = pb.build();
        let engine = Engine::build(&g);
        let out = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), RunConfig::default());
        assert_eq!(out.count, 8); // 4 undirected edges, both directions
        assert!(out.total_time() >= out.exec_time);
        assert!(out.read_bytes > 0);
        assert!(out.throughput() > 0.0);
    }

    #[test]
    fn subgraph_counts_divide_mapping_counts() {
        let g = paw();
        // Triangle pattern: 6 mappings, |Aut| = 6 -> 1 subgraph.
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, c) in [(0, 1), (1, 2), (2, 0)] {
            pb.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let engine = Engine::build(&g);
        for variant in [Variant::EdgeInduced, Variant::VertexInduced] {
            let mappings = engine.count(&p, variant);
            let subgraphs = engine.count_subgraphs(&p, variant);
            let aut = csce_graph::automorphism::automorphism_count(&p);
            assert_eq!(subgraphs * aut, mappings, "{variant}");
        }
        assert_eq!(engine.count_subgraphs(&p, Variant::EdgeInduced), 1);
    }

    #[test]
    fn persisted_ccsr_round_trips_through_engine() {
        let g = paw();
        let engine = Engine::build(&g);
        let bytes = csce_ccsr::persist::to_bytes(engine.ccsr()).unwrap();
        let engine2 = Engine::from_ccsr(csce_ccsr::persist::from_bytes(&bytes).unwrap());
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        assert_eq!(engine.count(&p, Variant::EdgeInduced), engine2.count(&p, Variant::EdgeInduced));
    }
}
