//! # csce-baselines
//!
//! Reference implementations of the algorithm families the paper compares
//! CSCE against (Table III). The original binaries (GraphPi, Graphflow,
//! GuP, RapidMatch, VEQ, VF3) are not redistributable here, so each
//! baseline reimplements the *algorithmic essence* of its family on the
//! shared `csce-graph` substrate:
//!
//! | Module | Family | Variant | Core ideas reproduced |
//! |---|---|---|---|
//! | [`ri`] | RI | E/H/V | GCF ordering, direct adjacency backtracking |
//! | [`fsp`] | DAF / RapidMatch / VEQ | E | LDF+NLF filtering, failing-set pruning |
//! | [`cfl`] | CFL-Match | E/V/H | fixpoint candidate-space refinement |
//! | [`wcoj`] | Graphflow | E/H | worst-case-optimal join over unclustered adjacency |
//! | [`vf`] | VF2/VF3 | V (and E) | signature classes + look-ahead pruning |
//! | [`symmetry`] | GraphPi / GraphZero | E (unlabeled) | automorphism-orbit symmetry breaking |
//!
//! Every baseline implements [`Baseline`], so the benchmark harness can
//! sweep them uniformly; each returns full counts (the paper finds *all*
//! embeddings) plus timing and timeout flags.

#![forbid(unsafe_code)]

pub mod cfl;
pub mod common;
pub mod fsp;
pub mod ri;
pub mod symmetry;
pub mod vf;
pub mod wcoj;

use csce_graph::{Graph, Variant};
use std::time::Duration;

/// Outcome of one baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Embeddings found (partial if `timed_out`).
    pub count: u64,
    /// The time limit fired before completion.
    pub timed_out: bool,
    /// Wall time spent.
    pub elapsed: Duration,
}

/// A uniform interface over the comparison algorithms.
pub trait Baseline {
    /// Display name used in benchmark tables (matching the paper's).
    fn name(&self) -> &'static str;

    /// Whether this algorithm supports the task (Table III's capability
    /// matrix: variant, labels, edge direction).
    fn supports(&self, g: &Graph, p: &Graph, variant: Variant) -> bool;

    /// Count all embeddings, honoring an optional time limit.
    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult;
}

/// All baselines, boxed, in the paper's Table III order.
pub fn all_baselines() -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(symmetry::SymmetryBreaking),
        Box::new(wcoj::GraphflowWcoj),
        Box::new(fsp::FailingSetBacktracking),
        Box::new(cfl::CflCandidateSpace),
        Box::new(ri::RiBacktracking),
        Box::new(vf::VfMatcher),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_table3_families() {
        let names: Vec<&str> = all_baselines().iter().map(|b| b.name()).collect();
        assert!(names.contains(&"GraphPi-SB"));
        assert!(names.contains(&"GF-WCOJ"));
        assert!(names.contains(&"FSP-BT"));
        assert!(names.contains(&"CFL-CS"));
        assert!(names.contains(&"RI"));
        assert!(names.contains(&"VF"));
    }
}
