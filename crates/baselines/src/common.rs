//! Shared machinery for the baseline matchers: candidate filters (LDF,
//! NLF), pairwise consistency checks, RI's GCF ordering over the bare
//! pattern, and a deadline helper.

use csce_graph::pattern::{code_subset, pair_code, undirected_neighbors};
use csce_graph::{FxHashMap, Graph, Label, Variant, VertexId};
use std::time::{Duration, Instant};

/// A cooperative deadline checked every few thousand steps.
pub struct Deadline {
    deadline: Option<Instant>,
    steps: u64,
    pub fired: bool,
}

impl Deadline {
    pub fn new(limit: Option<Duration>) -> Deadline {
        Deadline { deadline: limit.map(|d| Instant::now() + d), steps: 0, fired: false }
    }

    /// Returns `true` when the limit has fired (sticky).
    #[inline]
    pub fn check(&mut self) -> bool {
        if self.fired {
            return true;
        }
        self.steps += 1;
        if self.steps.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.fired = true;
                }
            }
        }
        self.fired
    }
}

/// Label-and-degree filter (LDF): `v` can match `u` only with equal labels
/// and, for injective variants, `d(v) >= d(u)`.
pub fn ldf(g: &Graph, p: &Graph, u: VertexId, v: VertexId, variant: Variant) -> bool {
    p.label(u) == g.label(v) && (!variant.injective() || g.degree(v) >= p.degree(u))
}

/// Neighborhood label frequency filter (NLF): every label must appear at
/// least as often around `v` as around `u`. Only valid for injective
/// variants (a homomorphism may fold pattern neighbors together).
pub fn nlf(g: &Graph, p: &Graph, u: VertexId, v: VertexId) -> bool {
    let mut need: FxHashMap<Label, i32> = FxHashMap::default();
    for w in undirected_neighbors(p, u) {
        *need.entry(p.label(w)).or_insert(0) += 1;
    }
    for w in undirected_neighbors(g, v) {
        if let Some(slot) = need.get_mut(&g.label(w)) {
            *slot -= 1;
        }
    }
    need.values().all(|&c| c <= 0)
}

/// Pairwise consistency between a newly mapped `(u, v)` and an earlier
/// `(w, x)`: the pattern pair's edges must be present (E/H) or match
/// exactly (V).
pub fn pair_consistent(
    g: &Graph,
    p: &Graph,
    variant: Variant,
    u: VertexId,
    v: VertexId,
    w: VertexId,
    x: VertexId,
) -> bool {
    let pcode = pair_code(p, w, u);
    let gcode = pair_code(g, x, v);
    match variant {
        Variant::VertexInduced => pcode == gcode,
        Variant::EdgeInduced | Variant::Homomorphic => code_subset(&pcode, &gcode),
    }
}

/// RI's Greatest-Constraint-First order over the bare pattern (no data
/// graph), breaking all ties by vertex id. This is the ordering used by
/// the RI and FSP baselines; CSCE's version in `csce-core` adds CCSR
/// tie-breaking on top of the same rules.
pub fn ri_order(p: &Graph) -> Vec<VertexId> {
    let n = p.n();
    // Pattern ids are `u32` by construction; saturate rather than panic.
    let n32 = u32::try_from(n).unwrap_or(u32::MAX);
    let neighbors: Vec<Vec<VertexId>> = (0..n32).map(|u| undirected_neighbors(p, u)).collect();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let Some(first) = (0..n32).max_by_key(|&u| (p.degree(u), std::cmp::Reverse(u))) else {
        return Vec::new(); // empty pattern
    };
    order.push(first);
    placed[first as usize] = true;
    while order.len() < n {
        let mut best: Option<(VertexId, [usize; 3])> = None;
        for x in 0..n32 {
            if placed[x as usize] {
                continue;
            }
            let mut t = [0usize; 3];
            for &j in &neighbors[x as usize] {
                if placed[j as usize] {
                    t[0] += 1;
                } else if neighbors[j as usize].iter().any(|&i| placed[i as usize]) {
                    t[1] += 1;
                } else {
                    t[2] += 1;
                }
            }
            let better = match &best {
                None => true,
                Some((bx, bt)) => t.cmp(bt).then_with(|| bx.cmp(&x)) == std::cmp::Ordering::Greater,
            };
            if better {
                best = Some((x, t));
            }
        }
        let Some((x, _)) = best else {
            break; // unreachable: an unplaced vertex always exists here
        };
        order.push(x);
        placed[x as usize] = true;
    }
    order
}

/// Pattern vertices earlier in `order` that are adjacent to `u` —
/// the vertices a backtracking matcher must check edges against.
pub fn earlier_neighbors(p: &Graph, order: &[VertexId], pos: usize) -> Vec<VertexId> {
    let u = order[pos];
    order[..pos].iter().copied().filter(|&w| p.connected(w, u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{GraphBuilder, NO_LABEL};

    fn labeled_wedge() -> (Graph, Graph) {
        // Data: center 0 (label 9) with neighbors of labels 1,1,2.
        let mut gb = GraphBuilder::new();
        gb.add_vertex(9);
        gb.add_vertex(1);
        gb.add_vertex(1);
        gb.add_vertex(2);
        for v in 1..4 {
            gb.add_undirected_edge(0, v, NO_LABEL).unwrap();
        }
        // Pattern: center (9) with one label-1 and one label-2 neighbor.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(9);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        (gb.build(), pb.build())
    }

    #[test]
    fn ldf_checks_label_and_degree() {
        let (g, p) = labeled_wedge();
        assert!(ldf(&g, &p, 0, 0, Variant::EdgeInduced));
        assert!(!ldf(&g, &p, 0, 1, Variant::EdgeInduced), "label mismatch");
        // Pattern leaf (degree 1) can map to data leaf (degree 1).
        assert!(ldf(&g, &p, 1, 1, Variant::EdgeInduced));
        // Degree check skipped for homomorphism.
        assert!(ldf(&g, &p, 0, 0, Variant::Homomorphic));
    }

    #[test]
    fn nlf_requires_neighbor_label_coverage() {
        let (g, p) = labeled_wedge();
        assert!(nlf(&g, &p, 0, 0), "data center covers labels {{1,2}}");
        // A data leaf has only the center (label 9) around it; pattern
        // center needs labels 1 and 2.
        assert!(!nlf(&g, &p, 0, 1));
    }

    #[test]
    fn ri_order_is_connected_permutation() {
        let (_, p) = labeled_wedge();
        let order = ri_order(&p);
        assert_eq!(order[0], 0, "highest degree first");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        for k in 1..order.len() {
            assert!(!earlier_neighbors(&p, &order, k).is_empty());
        }
    }

    #[test]
    fn deadline_fires_and_sticks() {
        let mut d = Deadline::new(Some(Duration::ZERO));
        let mut fired = false;
        for _ in 0..10_000 {
            if d.check() {
                fired = true;
                break;
            }
        }
        assert!(fired);
        assert!(d.check(), "sticky");
        let mut never = Deadline::new(None);
        for _ in 0..10_000 {
            assert!(!never.check());
        }
    }
}
