//! The CFL-Match family (Bi et al., SIGMOD'16): a *candidate space* (CS)
//! built by fixpoint refinement, then backtracking restricted to it.
//!
//! A data vertex survives in `CS(u)` only while, for every pattern
//! neighbor `w` of `u`, it has a data neighbor in `CS(w)` reachable over
//! an edge of the right direction and label. Iterating this to a fixpoint
//! is the strongest of the classic static filters (strictly stronger than
//! LDF/NLF); CFL-Match additionally orders the core before the forest,
//! which we approximate by matching higher-degree pattern vertices first
//! within the RI rules. The engine-relevant contrast to CSCE: the CS is
//! *global* and static, while CCSR+SCE retrieve and reuse candidates
//! per partial embedding.

use crate::common::{earlier_neighbors, ldf, pair_consistent, ri_order, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::pattern::{code_subset, pair_code};
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// CFL-style candidate-space matcher.
pub struct CflCandidateSpace;

/// Build the refined candidate space: `cs[u]` is the sorted surviving
/// candidate list of pattern vertex `u`.
pub fn build_candidate_space(g: &Graph, p: &Graph, variant: Variant) -> Vec<Vec<VertexId>> {
    let n = p.n();
    let mut cs: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|u| (0..g.n() as VertexId).filter(|&v| ldf(g, p, u, v, variant)).collect())
        .collect();
    let mut in_cs: Vec<Vec<bool>> = cs
        .iter()
        .map(|list| {
            let mut flags = vec![false; g.n()];
            for &v in list {
                flags[v as usize] = true;
            }
            flags
        })
        .collect();
    // Fixpoint refinement.
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n as VertexId {
            let mut kept = Vec::with_capacity(cs[u as usize].len());
            'cands: for &v in &cs[u as usize] {
                // Every pattern edge incident to u must have a supporting
                // data edge from v into the neighbor's current CS.
                for e in p.edges() {
                    let (w, fwd) = if e.src == u {
                        (e.dst, true)
                    } else if e.dst == u {
                        (e.src, false)
                    } else {
                        continue;
                    };
                    let supported = g.adj(v).iter().any(|a| {
                        a.elabel == e.label
                            && in_cs[w as usize][a.nbr as usize]
                            && match (e.directed, fwd) {
                                (true, true) => a.orient == csce_graph::Orient::Out,
                                (true, false) => a.orient == csce_graph::Orient::In,
                                (false, _) => a.orient == csce_graph::Orient::Und,
                            }
                    });
                    if !supported {
                        in_cs[u as usize][v as usize] = false;
                        changed = true;
                        continue 'cands;
                    }
                }
                kept.push(v);
            }
            cs[u as usize] = kept;
        }
    }
    cs
}

impl Baseline for CflCandidateSpace {
    fn name(&self) -> &'static str {
        "CFL-CS"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, _variant: Variant) -> bool {
        true
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        let start = Instant::now();
        let cs = build_candidate_space(g, p, variant);
        let order = ri_order(p);
        let earlier: Vec<Vec<VertexId>> =
            (0..order.len()).map(|k| earlier_neighbors(p, &order, k)).collect();
        let mut state = State {
            g,
            p,
            variant,
            order: &order,
            earlier: &earlier,
            cs: &cs,
            f: vec![VertexId::MAX; p.n()],
            used: vec![false; g.n()],
            count: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            count: state.count,
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    variant: Variant,
    order: &'a [VertexId],
    earlier: &'a [Vec<VertexId>],
    cs: &'a [Vec<VertexId>],
    f: Vec<VertexId>,
    used: Vec<bool>,
    count: u64,
    deadline: Deadline,
}

impl<'a> State<'a> {
    fn descend(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.count += 1;
            return;
        }
        if self.deadline.check() {
            return;
        }
        let u = self.order[depth];
        // Candidates: CS(u), narrowed to the first matched neighbor's data
        // neighborhood when one exists.
        let candidates: Vec<VertexId> = match self.earlier[depth].first() {
            Some(&w) => {
                let x = self.f[w as usize];
                let pcode = pair_code(self.p, w, u);
                let mut c: Vec<VertexId> = self
                    .g
                    .adj(x)
                    .iter()
                    .map(|a| a.nbr)
                    .filter(|&v| {
                        self.cs[u as usize].binary_search(&v).is_ok()
                            && code_subset(&pcode, &pair_code(self.g, x, v))
                    })
                    .collect();
                c.dedup();
                c
            }
            None => self.cs[u as usize].clone(),
        };
        'cands: for v in candidates {
            if self.variant.injective() && self.used[v as usize] {
                continue;
            }
            for k in 0..depth {
                let w = self.order[k];
                let relevant = self.variant == Variant::VertexInduced || self.p.connected(w, u);
                if relevant
                    && !pair_consistent(self.g, self.p, self.variant, u, v, w, self.f[w as usize])
                {
                    continue 'cands;
                }
            }
            self.f[u as usize] = v;
            if self.variant.injective() {
                self.used[v as usize] = true;
            }
            self.descend(depth + 1);
            if self.variant.injective() {
                self.used[v as usize] = false;
            }
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn data() -> Graph {
        let mut b = GraphBuilder::new();
        for l in [0u32, 1, 0, 1, 2] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (2, 1), (2, 3), (1, 4)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.add_undirected_edge(0, 3, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn refinement_prunes_unsupported_candidates() {
        let g = data();
        // Pattern: (0) -> (1) -> (2): only v1 has an outgoing edge into a
        // label-2 vertex, so CS(u1) = {v1} and CS(u0) = {v0, v2}.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_edge(0, 1, NO_LABEL).unwrap();
        pb.add_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        let cs = build_candidate_space(&g, &p, Variant::EdgeInduced);
        assert_eq!(cs[0], vec![0, 2]);
        assert_eq!(cs[1], vec![1]);
        assert_eq!(cs[2], vec![4]);
    }

    #[test]
    fn refinement_can_empty_out() {
        let g = data();
        // Label 2 vertices have no outgoing edges: CS collapses to empty.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(2);
        pb.add_vertex(0);
        pb.add_edge(0, 1, NO_LABEL).unwrap();
        let p = pb.build();
        let cs = build_candidate_space(&g, &p, Variant::EdgeInduced);
        assert!(cs[0].is_empty());
        assert!(cs[1].is_empty(), "emptiness propagates through refinement");
    }

    #[test]
    fn counts_match_oracle_all_variants() {
        let g = data();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_vertex(2);
        pb.add_edge(0, 1, NO_LABEL).unwrap();
        pb.add_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        for variant in Variant::ALL {
            assert_eq!(
                CflCandidateSpace.count(&g, &p, variant, None).count,
                oracle_count(&g, &p, variant),
                "{variant}"
            );
        }
    }

    #[test]
    fn unlabeled_undirected_exactness() {
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)] {
            gb.add_undirected_edge(a, b, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            pb.add_undirected_edge(a, b, NO_LABEL).unwrap();
        }
        let p = pb.build();
        for variant in Variant::ALL {
            assert_eq!(
                CflCandidateSpace.count(&g, &p, variant, None).count,
                oracle_count(&g, &p, variant),
                "{variant}"
            );
        }
    }
}
