//! The RI family (Bonnici et al.): Greatest-Constraint-First ordering and
//! plain adjacency backtracking with pairwise consistency checks. No
//! candidate indexing, no equivalence reuse — the simplest competitive
//! baseline, and the heuristic family the paper builds GCF on.

use crate::common::{earlier_neighbors, ldf, pair_consistent, ri_order, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// RI-style backtracking matcher. Supports every variant and graph type
/// (our reimplementation extends the original's scope so it can serve as
/// a universal reference in tests).
pub struct RiBacktracking;

impl Baseline for RiBacktracking {
    fn name(&self) -> &'static str {
        "RI"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, _variant: Variant) -> bool {
        true
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        let start = Instant::now();
        let order = ri_order(p);
        let earlier: Vec<Vec<VertexId>> =
            (0..order.len()).map(|k| earlier_neighbors(p, &order, k)).collect();
        // For vertex-induced matching every earlier vertex must be checked
        // (absence of edges matters), not just neighbors.
        let mut state = State {
            g,
            p,
            variant,
            order: &order,
            earlier: &earlier,
            f: vec![VertexId::MAX; p.n()],
            used: vec![false; g.n()],
            count: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            count: state.count,
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    variant: Variant,
    order: &'a [VertexId],
    earlier: &'a [Vec<VertexId>],
    f: Vec<VertexId>,
    used: Vec<bool>,
    count: u64,
    deadline: Deadline,
}

impl<'a> State<'a> {
    fn descend(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.count += 1;
            return;
        }
        if self.deadline.check() {
            return;
        }
        let u = self.order[depth];
        // Candidate generation: neighbors of the first matched pattern
        // neighbor's image, or a full label scan for the root.
        let candidates: Vec<VertexId> = match self.earlier[depth].first() {
            Some(&w) => {
                let x = self.f[w as usize];
                let mut c: Vec<VertexId> = self.g.adj(x).iter().map(|a| a.nbr).collect();
                c.dedup();
                c
            }
            None => (0..self.g.n() as VertexId).collect(),
        };
        'cands: for v in candidates {
            if self.variant.injective() && self.used[v as usize] {
                continue;
            }
            if !ldf(self.g, self.p, u, v, self.variant) {
                continue;
            }
            // Pairwise checks: edges to earlier neighbors; vertex-induced
            // additionally checks earlier non-neighbors for absence.
            for k in 0..depth {
                let w = self.order[k];
                let relevant = self.variant == Variant::VertexInduced || self.p.connected(w, u);
                if relevant
                    && !pair_consistent(self.g, self.p, self.variant, u, v, w, self.f[w as usize])
                {
                    continue 'cands;
                }
            }
            self.f[u as usize] = v;
            if self.variant.injective() {
                self.used[v as usize] = true;
            }
            self.descend(depth + 1);
            if self.variant.injective() {
                self.used[v as usize] = false;
            }
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn matches_oracle_on_all_variants() {
        let g = paw();
        let p = path3();
        for variant in Variant::ALL {
            let r = RiBacktracking.count(&g, &p, variant, None);
            assert_eq!(r.count, oracle_count(&g, &p, variant), "{variant}");
            assert!(!r.timed_out);
        }
    }

    #[test]
    fn directed_labeled_graphs() {
        let mut gb = GraphBuilder::new();
        gb.add_vertex(0);
        gb.add_vertex(1);
        gb.add_vertex(1);
        gb.add_edge(0, 1, 5).unwrap();
        gb.add_edge(0, 2, 5).unwrap();
        gb.add_edge(1, 2, 6).unwrap();
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_edge(0, 1, 5).unwrap();
        let p = pb.build();
        for variant in Variant::ALL {
            assert_eq!(
                RiBacktracking.count(&g, &p, variant, None).count,
                oracle_count(&g, &p, variant),
                "{variant}"
            );
        }
    }

    #[test]
    fn honors_time_limit() {
        // A clique-on-clique homomorphic count explodes; zero budget must
        // stop it immediately.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(10);
        for i in 0..10u32 {
            for j in i + 1..10 {
                gb.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(8);
        for i in 0..7u32 {
            pb.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let r = RiBacktracking.count(&g, &p, Variant::Homomorphic, Some(Duration::ZERO));
        assert!(r.timed_out);
    }
}
