//! The GraphPi / GraphZero family: symmetry breaking via automorphism
//! restrictions.
//!
//! The pattern's full automorphism group is enumerated and turned into a
//! stabilizer-chain restriction set (the Grochow–Kellis construction, the
//! basis of GraphZero's and GraphPi's restriction generation): for each
//! pattern vertex `u` in turn, require `f(u) < f(w)` for every other `w`
//! in `u`'s orbit under the remaining group, then shrink the group to the
//! stabilizer of `u`. Exactly one member of each automorphism orbit of
//! embeddings survives the restrictions, so the count multiplies back by
//! `|Aut(P)|` — the adjustment the paper applies when comparing counts
//! (§VII-B).
//!
//! The group enumeration is the part that does not scale with pattern
//! size (the paper's Finding 2): its time is reported separately in
//! [`SymmetryBreaking::restrictions_of`] so Fig. 9/14 can show it.

use crate::common::{earlier_neighbors, ldf, pair_consistent, ri_order, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::automorphism::stabilizer_restrictions;
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// Symmetry-breaking matcher (edge-induced).
#[derive(Default)]
pub struct SymmetryBreaking;

/// A restriction `f(lo) < f(hi)` over data-vertex ids.
pub type Restriction = (VertexId, VertexId);

impl SymmetryBreaking {
    /// Compute the restriction set and `|Aut(P)|`. This is the
    /// "optimization" phase whose cost dominates on large patterns
    /// (delegates to `csce_graph::automorphism::stabilizer_restrictions`).
    pub fn restrictions_of(p: &Graph) -> (Vec<Restriction>, u64) {
        stabilizer_restrictions(p)
    }
}

impl Baseline for SymmetryBreaking {
    fn name(&self) -> &'static str {
        "GraphPi-SB"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, variant: Variant) -> bool {
        variant == Variant::EdgeInduced
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        assert_eq!(variant, Variant::EdgeInduced, "symmetry breaking counts edge-induced SM");
        let start = Instant::now();
        let (restrictions, aut) = Self::restrictions_of(p);
        let order = ri_order(p);
        let earlier: Vec<Vec<VertexId>> =
            (0..order.len()).map(|k| earlier_neighbors(p, &order, k)).collect();
        // Restrictions indexed by the later-ordered endpoint so each is
        // checked as soon as both endpoints are mapped.
        let pos_of = {
            let mut pos = vec![0usize; p.n()];
            for (k, &u) in order.iter().enumerate() {
                pos[u as usize] = k;
            }
            pos
        };
        let mut checks_at: Vec<Vec<Restriction>> = vec![Vec::new(); p.n()];
        for &(a, b) in &restrictions {
            let later = if pos_of[a as usize] > pos_of[b as usize] { a } else { b };
            checks_at[later as usize].push((a, b));
        }
        let mut state = State {
            g,
            p,
            order: &order,
            earlier: &earlier,
            checks_at: &checks_at,
            f: vec![VertexId::MAX; p.n()],
            used: vec![false; g.n()],
            count: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            // Multiply back by |Aut| so counts agree with engines that
            // enumerate all mappings.
            count: state.count.saturating_mul(aut),
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    order: &'a [VertexId],
    earlier: &'a [Vec<VertexId>],
    checks_at: &'a [Vec<Restriction>],
    f: Vec<VertexId>,
    used: Vec<bool>,
    count: u64,
    deadline: Deadline,
}

impl<'a> State<'a> {
    fn descend(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.count += 1;
            return;
        }
        if self.deadline.check() {
            return;
        }
        let u = self.order[depth];
        let candidates: Vec<VertexId> = match self.earlier[depth].first() {
            Some(&w) => {
                let mut c: Vec<VertexId> =
                    self.g.adj(self.f[w as usize] as VertexId).iter().map(|a| a.nbr).collect();
                c.dedup();
                c
            }
            None => (0..self.g.n() as VertexId).collect(),
        };
        'cands: for v in candidates {
            if self.used[v as usize] || !ldf(self.g, self.p, u, v, Variant::EdgeInduced) {
                continue;
            }
            for &w in &self.earlier[depth] {
                if !pair_consistent(
                    self.g,
                    self.p,
                    Variant::EdgeInduced,
                    u,
                    v,
                    w,
                    self.f[w as usize],
                ) {
                    continue 'cands;
                }
            }
            // Symmetry restrictions whose later endpoint is u.
            for &(a, b) in &self.checks_at[u as usize] {
                let fa = if a == u { v } else { self.f[a as usize] };
                let fb = if b == u { v } else { self.f[b as usize] };
                if fa >= fb {
                    continue 'cands;
                }
            }
            self.f[u as usize] = v;
            self.used[v as usize] = true;
            self.descend(depth + 1);
            self.used[v as usize] = false;
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn clique(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                b.add_undirected_edge(i, j, NO_LABEL).unwrap();
            }
        }
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n as u32 {
            b.add_undirected_edge(i, (i + 1) % n as u32, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn restriction_sets_reflect_the_group() {
        let (r4, aut4) = SymmetryBreaking::restrictions_of(&clique(4));
        assert_eq!(aut4, 24);
        // Stabilizer chain on K4: orbits 4,3,2 -> 3+2+1 restrictions.
        assert_eq!(r4.len(), 6);
        let (rc, autc) = SymmetryBreaking::restrictions_of(&cycle(5));
        assert_eq!(autc, 10);
        assert!(!rc.is_empty());
    }

    #[test]
    fn counts_match_oracle_after_multiplication() {
        // Triangles in K5: oracle counts all 60 mappings.
        let g = clique(5);
        let p = clique(3);
        let r = SymmetryBreaking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
        assert_eq!(r.count, 60);
    }

    #[test]
    fn asymmetric_patterns_are_unaffected() {
        // A paw has trivial automorphism... actually |Aut(paw)| = 2
        // (swapping the two degree-2 triangle vertices); verify exactness
        // either way on a richer data graph.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(6);
        for (a, b2) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (1, 4)] {
            gb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(4);
        for (a, b2) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            pb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let r = SymmetryBreaking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
    }

    #[test]
    fn cycles_in_cycles() {
        // 4-cycles in the 4x4 rook-free grid... simpler: count 4-cycles in
        // K4 = oracle. Aut(C4) = 8.
        let g = clique(4);
        let p = cycle(4);
        let r = SymmetryBreaking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
    }

    #[test]
    fn labeled_patterns_still_exact() {
        let mut gb = GraphBuilder::new();
        for l in [0u32, 0, 1, 1] {
            gb.add_vertex(l);
        }
        for (a, b2) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            gb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_vertex(1);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let p = pb.build();
        let r = SymmetryBreaking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
    }
}
