//! The VF2 / VF3 family: state-space backtracking for (vertex-)induced
//! isomorphism with feasibility look-ahead.
//!
//! The ordering follows VF3-light's rules — prefer vertices that connect
//! the most matched pattern vertices, then the rarest data-graph label,
//! then the highest degree. Feasibility combines exact pairwise
//! consistency (induced semantics) with a one-level look-ahead: a
//! candidate must retain at least as many *unused* data neighbors as the
//! pattern vertex has unmatched neighbors, which prunes whole subtrees
//! before they are entered.
//!
//! Capability: injective variants only — [`Baseline::supports`] excludes
//! homomorphic matching (VF's state machinery assumes a partial injection)
//! rather than returning wrong answers for it. Directed and edge-labeled
//! parity with the engine is enforced by the `csce-fuzz` differential
//! corpus (`csce fuzz`), which probes this matcher on every generated
//! flavor; the candidate pool comes from *undirected* neighborhoods, with
//! orientation and edge labels checked by `pair_consistent`, so direction
//! handling is exercised on every directed case.

use crate::common::{pair_consistent, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::pattern::undirected_neighbors;
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// VF-style matcher for the injective variants.
pub struct VfMatcher;

impl Baseline for VfMatcher {
    fn name(&self) -> &'static str {
        "VF"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, variant: Variant) -> bool {
        variant.injective()
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        assert!(variant.injective(), "VF handles injective variants only");
        let start = Instant::now();
        let order = vf_order(g, p);
        let p_neighbors: Vec<Vec<VertexId>> =
            (0..p.n() as VertexId).map(|u| undirected_neighbors(p, u)).collect();
        let g_neighbors: Vec<Vec<VertexId>> =
            (0..g.n() as VertexId).map(|v| undirected_neighbors(g, v)).collect();
        let mut state = State {
            g,
            p,
            variant,
            order: &order,
            p_neighbors: &p_neighbors,
            g_neighbors: &g_neighbors,
            f: vec![VertexId::MAX; p.n()],
            used: vec![false; g.n()],
            matched: vec![false; p.n()],
            count: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            count: state.count,
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

/// VF3-light ordering: most matched neighbors, then rarest data label,
/// then highest degree, then id.
fn vf_order(g: &Graph, p: &Graph) -> Vec<VertexId> {
    let n = p.n();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let freq = |u: VertexId| g.label_count_of(p.label(u));
    for _ in 0..n {
        let next = (0..n as VertexId)
            .filter(|&u| !placed[u as usize])
            .min_by(|&a, &b| {
                let ca = connections(p, &placed, a);
                let cb = connections(p, &placed, b);
                cb.cmp(&ca)
                    .then(freq(a).cmp(&freq(b)))
                    .then(p.degree(b).cmp(&p.degree(a)))
                    .then(a.cmp(&b))
            })
            .unwrap();
        order.push(next);
        placed[next as usize] = true;
    }
    order
}

fn connections(p: &Graph, placed: &[bool], u: VertexId) -> usize {
    undirected_neighbors(p, u).iter().filter(|&&w| placed[w as usize]).count()
}

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    variant: Variant,
    order: &'a [VertexId],
    p_neighbors: &'a [Vec<VertexId>],
    g_neighbors: &'a [Vec<VertexId>],
    f: Vec<VertexId>,
    used: Vec<bool>,
    matched: Vec<bool>,
    count: u64,
    deadline: Deadline,
}

impl<'a> State<'a> {
    fn descend(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.count += 1;
            return;
        }
        if self.deadline.check() {
            return;
        }
        let u = self.order[depth];
        // Candidates: neighbors of a matched neighbor's image, or all
        // label-compatible vertices for the root.
        let matched_nbr =
            self.p_neighbors[u as usize].iter().copied().find(|&w| self.matched[w as usize]);
        let candidates: Vec<VertexId> = match matched_nbr {
            Some(w) => self.g_neighbors[self.f[w as usize] as usize].clone(),
            None => (0..self.g.n() as VertexId).collect(),
        };
        'cands: for v in candidates {
            if self.used[v as usize] || self.g.label(v) != self.p.label(u) {
                continue;
            }
            // Look-ahead: v must keep enough unused neighbors for u's
            // unmatched neighbors.
            let needed =
                self.p_neighbors[u as usize].iter().filter(|&&w| !self.matched[w as usize]).count();
            if needed > 0 {
                let available = self.g_neighbors[v as usize]
                    .iter()
                    .filter(|&&x| !self.used[x as usize])
                    .count();
                if available < needed {
                    continue;
                }
            }
            // Exact pairwise consistency against all matched vertices
            // (induced) or matched neighbors (edge-induced).
            for k in 0..depth {
                let w = self.order[k];
                let relevant = self.variant == Variant::VertexInduced || self.p.connected(w, u);
                if relevant
                    && !pair_consistent(self.g, self.p, self.variant, u, v, w, self.f[w as usize])
                {
                    continue 'cands;
                }
            }
            self.f[u as usize] = v;
            self.used[v as usize] = true;
            self.matched[u as usize] = true;
            self.descend(depth + 1);
            self.matched[u as usize] = false;
            self.used[v as usize] = false;
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn vertex_induced_matches_oracle() {
        let g = paw();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        for variant in [Variant::VertexInduced, Variant::EdgeInduced] {
            let r = VfMatcher.count(&g, &p, variant, None);
            assert_eq!(r.count, oracle_count(&g, &p, variant), "{variant}");
        }
    }

    #[test]
    fn directed_labeled_induced() {
        let mut gb = GraphBuilder::new();
        for l in [0u32, 1, 0, 1] {
            gb.add_vertex(l);
        }
        gb.add_edge(0, 1, 5).unwrap();
        gb.add_edge(2, 3, 5).unwrap();
        gb.add_edge(1, 2, 6).unwrap();
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_edge(0, 1, 5).unwrap();
        let p = pb.build();
        for variant in [Variant::VertexInduced, Variant::EdgeInduced] {
            assert_eq!(
                VfMatcher.count(&g, &p, variant, None).count,
                oracle_count(&g, &p, variant),
                "{variant}"
            );
        }
    }

    #[test]
    fn lookahead_does_not_lose_matches() {
        // Star pattern inside a larger star: look-ahead must not prune
        // valid embeddings.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(6);
        for leaf in 1..6 {
            gb.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(4);
        for leaf in 1..4 {
            pb.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
        }
        let p = pb.build();
        assert_eq!(
            VfMatcher.count(&g, &p, Variant::EdgeInduced, None).count,
            oracle_count(&g, &p, Variant::EdgeInduced)
        );
        assert_eq!(
            VfMatcher.count(&g, &p, Variant::VertexInduced, None).count,
            oracle_count(&g, &p, Variant::VertexInduced)
        );
    }

    #[test]
    fn rejects_homomorphic() {
        let g = paw();
        assert!(!VfMatcher.supports(&g, &g, Variant::Homomorphic));
    }
}
