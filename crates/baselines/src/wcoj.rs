//! The Graphflow family: a pipelined worst-case-optimal join over the
//! plain adjacency-list data structure (Fig. 3 in the paper).
//!
//! Candidates for each pattern vertex are produced by intersecting the
//! adjacency lists of its already-matched neighbors, checking vertex
//! labels, edge labels and directions *on the fly* — the repetitive label
//! matching CSCE's CCSR clustering eliminates. No candidate reuse across
//! sibling mappings. Homomorphic and edge-induced variants (Table III
//! lists Graphflow as homomorphic; injectivity is a trivial extension we
//! include for the cross-variant experiments).
//!
//! Capability: [`Baseline::supports`] excludes the vertex-induced variant
//! — a WCOJ pipeline has no natural place for the non-adjacency negation
//! checks, so the matcher declares the limit explicitly instead of
//! producing wrong counts. Directed and edge-labeled parity with the
//! engine (including antiparallel-arc dedup in `relation_row` and the
//! pattern-arc subset check via `edges_between`) is enforced by the
//! `csce-fuzz` differential corpus on every generated flavor.

use crate::common::{earlier_neighbors, ri_order, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::graph::Orient;
use csce_graph::util::intersect_sorted;
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// Graphflow-style WCOJ matcher.
pub struct GraphflowWcoj;

impl Baseline for GraphflowWcoj {
    fn name(&self) -> &'static str {
        "GF-WCOJ"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, variant: Variant) -> bool {
        matches!(variant, Variant::Homomorphic | Variant::EdgeInduced)
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        assert!(
            self.supports(g, p, variant),
            "Graphflow-style WCOJ does not handle vertex-induced matching"
        );
        let start = Instant::now();
        let order = ri_order(p);
        let earlier: Vec<Vec<VertexId>> =
            (0..order.len()).map(|k| earlier_neighbors(p, &order, k)).collect();
        let mut state = State {
            g,
            p,
            variant,
            order: &order,
            earlier: &earlier,
            f: vec![VertexId::MAX; p.n()],
            used: vec![false; g.n()],
            count: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            count: state.count,
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    variant: Variant,
    order: &'a [VertexId],
    earlier: &'a [Vec<VertexId>],
    f: Vec<VertexId>,
    used: Vec<bool>,
    count: u64,
    deadline: Deadline,
}

impl<'a> State<'a> {
    /// The data vertices reachable from `f(w)` over edges matching every
    /// pattern edge between `w` and `u`, with `u`'s label — one relation
    /// of the join, filtered on the fly.
    fn relation_row(&self, w: VertexId, u: VertexId) -> Vec<VertexId> {
        let x = self.f[w as usize];
        let want_label = self.p.label(u);
        // Pattern edges between w and u, seen from w's side.
        let pattern_arcs: Vec<(Orient, u32)> =
            self.p.edges_between(w, u).iter().map(|a| (a.orient, a.elabel)).collect();
        let mut out: Vec<VertexId> = Vec::new();
        'nbrs: for v in self.g.adj(x).iter().map(|a| a.nbr) {
            if out.last() == Some(&v) {
                continue; // adjacency is sorted; skip parallel-arc repeats
            }
            if self.g.label(v) != want_label {
                continue;
            }
            // Every pattern arc between (w, u) must have a matching data
            // arc between (x, v).
            let data = self.g.edges_between(x, v);
            for &(orient, elabel) in &pattern_arcs {
                if !data.iter().any(|d| d.orient == orient && d.elabel == elabel) {
                    continue 'nbrs;
                }
            }
            out.push(v);
        }
        out
    }

    fn descend(&mut self, depth: usize) {
        if depth == self.order.len() {
            self.count += 1;
            return;
        }
        if self.deadline.check() {
            return;
        }
        let u = self.order[depth];
        let candidates: Vec<VertexId> = if self.earlier[depth].is_empty() {
            let want = self.p.label(u);
            (0..self.g.n() as VertexId).filter(|&v| self.g.label(v) == want).collect()
        } else {
            let mut rows: Vec<Vec<VertexId>> =
                self.earlier[depth].iter().map(|&w| self.relation_row(w, u)).collect();
            rows.sort_unstable_by_key(|r| r.len());
            let mut acc = rows[0].clone();
            let mut tmp = Vec::new();
            for row in &rows[1..] {
                intersect_sorted(&acc, row, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        };
        for v in candidates {
            if self.variant.injective() && self.used[v as usize] {
                continue;
            }
            self.f[u as usize] = v;
            if self.variant.injective() {
                self.used[v as usize] = true;
            }
            self.descend(depth + 1);
            if self.variant.injective() {
                self.used[v as usize] = false;
            }
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn labeled_directed_data() -> Graph {
        let mut b = GraphBuilder::new();
        for l in [0u32, 1, 1, 2, 0] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(0, 2, 7).unwrap();
        b.add_edge(1, 3, 8).unwrap();
        b.add_edge(2, 3, 8).unwrap();
        b.add_edge(4, 1, 7).unwrap();
        b.build()
    }

    fn wedge_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(1, 2, 8).unwrap();
        b.build()
    }

    #[test]
    fn matches_oracle_homomorphic_and_edge_induced() {
        let g = labeled_directed_data();
        let p = wedge_pattern();
        for variant in [Variant::Homomorphic, Variant::EdgeInduced] {
            let r = GraphflowWcoj.count(&g, &p, variant, None);
            assert_eq!(r.count, oracle_count(&g, &p, variant), "{variant}");
        }
    }

    #[test]
    fn edge_labels_and_direction_filtered_on_the_fly() {
        let g = labeled_directed_data();
        // Same wedge but wrong edge label: zero matches.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(1, 2, 9).unwrap();
        let p = b.build();
        assert_eq!(GraphflowWcoj.count(&g, &p, Variant::Homomorphic, None).count, 0);
    }

    #[test]
    fn homomorphic_folds_count() {
        // Undirected path of 3 in a single undirected edge: 2 hom matches.
        let mut gb = GraphBuilder::new();
        gb.add_unlabeled_vertices(2);
        gb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let p = pb.build();
        assert_eq!(GraphflowWcoj.count(&g, &p, Variant::Homomorphic, None).count, 2);
        assert_eq!(GraphflowWcoj.count(&g, &p, Variant::EdgeInduced, None).count, 0);
    }

    #[test]
    fn capability_matrix() {
        let g = labeled_directed_data();
        assert!(GraphflowWcoj.supports(&g, &g, Variant::Homomorphic));
        assert!(GraphflowWcoj.supports(&g, &g, Variant::EdgeInduced));
        assert!(!GraphflowWcoj.supports(&g, &g, Variant::VertexInduced));
    }
}
