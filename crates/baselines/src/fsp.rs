//! The DAF / RapidMatch / VEQ family: filtering backtracking with
//! **failing-set pruning** (FSP).
//!
//! Per-vertex candidate sets are prefiltered with LDF + NLF (the CS
//! structure in DAF's terms); during backtracking each failed subtree
//! reports the set of pattern vertices responsible for the failure, and
//! when that set does not contain the vertex currently being extended,
//! all of its remaining sibling candidates are pruned — the technique the
//! paper's Finding 3 compares SCE against. Edge-induced only: FSP
//! exploits non-induced semantics, and DAF-style failing sets treat
//! duplicate images as failures, which breaks homomorphic counting (§V).

use crate::common::{earlier_neighbors, ldf, nlf, pair_consistent, ri_order, Deadline};
use crate::{Baseline, BaselineResult};
use csce_graph::{Graph, Variant, VertexId};
use std::time::{Duration, Instant};

/// Failing-set backtracking matcher.
pub struct FailingSetBacktracking;

impl Baseline for FailingSetBacktracking {
    fn name(&self) -> &'static str {
        "FSP-BT"
    }

    fn supports(&self, _g: &Graph, _p: &Graph, variant: Variant) -> bool {
        variant == Variant::EdgeInduced
    }

    fn count(
        &self,
        g: &Graph,
        p: &Graph,
        variant: Variant,
        time_limit: Option<Duration>,
    ) -> BaselineResult {
        assert_eq!(variant, Variant::EdgeInduced, "FSP applies to edge-induced SM only");
        let start = Instant::now();
        let order = ri_order(p);
        let earlier: Vec<Vec<VertexId>> =
            (0..order.len()).map(|k| earlier_neighbors(p, &order, k)).collect();
        // Prefiltered candidate sets (the CS structure): LDF + NLF.
        let cs: Vec<Vec<VertexId>> = (0..p.n() as VertexId)
            .map(|u| {
                (0..g.n() as VertexId)
                    .filter(|&v| ldf(g, p, u, v, variant) && nlf(g, p, u, v))
                    .collect()
            })
            .collect();
        let mut state = State {
            g,
            p,
            order: &order,
            earlier: &earlier,
            cs: &cs,
            f: vec![VertexId::MAX; p.n()],
            who: vec![VertexId::MAX; g.n()],
            count: 0,
            pruned: 0,
            deadline: Deadline::new(time_limit),
        };
        state.descend(0);
        BaselineResult {
            count: state.count,
            timed_out: state.deadline.fired,
            elapsed: start.elapsed(),
        }
    }
}

/// A failing set: the pattern vertices responsible for a subtree failure.
/// `None` is the universal set (an embedding was found below — no pruning
/// may happen above).
type Fs = Option<u64>; // bit i = pattern vertex i; patterns here are <= 64… see below

/// Failing sets are bit-packed; fall back to no pruning for patterns wider
/// than the word. (The FSP baseline exists for comparisons on the paper's
/// 8–32-vertex workloads, where this never triggers.)
const FS_WIDTH: usize = 64;

struct State<'a> {
    g: &'a Graph,
    p: &'a Graph,
    order: &'a [VertexId],
    earlier: &'a [Vec<VertexId>],
    cs: &'a [Vec<VertexId>],
    f: Vec<VertexId>,
    who: Vec<VertexId>,
    count: u64,
    pruned: u64,
    deadline: Deadline,
}

struct SubResult {
    found: bool,
    fs: Fs,
}

impl<'a> State<'a> {
    fn descend(&mut self, depth: usize) -> SubResult {
        if depth == self.order.len() {
            self.count += 1;
            return SubResult { found: true, fs: None };
        }
        if self.deadline.check() {
            return SubResult { found: false, fs: None };
        }
        let u = self.order[depth];
        let wide = self.p.n() > FS_WIDTH;
        let bit = |w: VertexId| 1u64 << (w as usize % FS_WIDTH);

        // Structural candidates: CS(u) restricted to neighbors of the
        // first matched pattern neighbor's image (or the full CS for the
        // root).
        let base: Vec<VertexId> = match self.earlier[depth].first() {
            Some(&w) => {
                let x = self.f[w as usize];
                let mut c: Vec<VertexId> = self
                    .g
                    .adj(x)
                    .iter()
                    .map(|a| a.nbr)
                    .filter(|&v| self.cs[u as usize].binary_search(&v).is_ok())
                    .collect();
                c.dedup();
                c
            }
            None => self.cs[u as usize].clone(),
        };
        if base.is_empty() {
            // Empty candidate set: the matched neighbors of u caused it.
            let mut fs = bit(u);
            for &w in &self.earlier[depth] {
                fs |= bit(w);
            }
            return SubResult { found: false, fs: if wide { None } else { Some(fs) } };
        }
        let mut acc: u64 = 0;
        let mut acc_universal = false;
        let mut found_any = false;
        'cands: for v in base {
            if self.who[v as usize] != VertexId::MAX {
                // Injectivity conflict with the vertex already using v.
                acc |= bit(u) | bit(self.who[v as usize]);
                continue;
            }
            for &w in &self.earlier[depth] {
                if !pair_consistent(
                    self.g,
                    self.p,
                    Variant::EdgeInduced,
                    u,
                    v,
                    w,
                    self.f[w as usize],
                ) {
                    acc |= bit(u) | bit(w);
                    continue 'cands;
                }
            }
            self.f[u as usize] = v;
            self.who[v as usize] = u;
            let r = self.descend(depth + 1);
            self.who[v as usize] = VertexId::MAX;
            self.f[u as usize] = VertexId::MAX;
            if self.deadline.fired {
                return SubResult { found: found_any, fs: None };
            }
            if r.found {
                found_any = true;
                acc_universal = true;
            } else {
                match r.fs {
                    None => acc_universal = true,
                    Some(child_fs) => {
                        if !wide && !found_any && child_fs & bit(u) == 0 {
                            // The failure below does not involve u: no
                            // sibling candidate of u can help. Prune.
                            self.pruned += 1;
                            return SubResult { found: false, fs: Some(child_fs) };
                        }
                        acc |= child_fs;
                    }
                }
            }
        }
        let fs = if found_any || acc_universal || wide {
            None
        } else {
            // The node's failure also depends on the vertices that
            // determined its candidate set: u itself and its matched
            // neighbors. Omitting them would let an ancestor that *is* a
            // determinant prune siblings unsoundly.
            let mut full = acc | bit(u);
            for &w in &self.earlier[depth] {
                full |= bit(w);
            }
            Some(full)
        };
        SubResult { found: found_any, fs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{oracle_count, GraphBuilder, NO_LABEL};

    fn grid(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n * n);
        let id = |r: usize, c: usize| (r * n + c) as VertexId;
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.add_undirected_edge(id(r, c), id(r, c + 1), NO_LABEL).unwrap();
                }
                if r + 1 < n {
                    b.add_undirected_edge(id(r, c), id(r + 1, c), NO_LABEL).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_oracle_edge_induced() {
        let g = grid(4);
        // 8-vertex tree pattern.
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(6);
        for (a, b2) in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)] {
            pb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let r = FailingSetBacktracking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
    }

    #[test]
    fn labeled_pruning_still_exact() {
        // Labels that frequently dead-end trigger failing sets.
        let mut gb = GraphBuilder::new();
        for l in [0u32, 1, 2, 0, 1, 2, 0, 1] {
            gb.add_vertex(l);
        }
        for (a, b2) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 4), (2, 6)] {
            gb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let g = gb.build();
        let mut pb = GraphBuilder::new();
        for l in [0u32, 1, 2, 0] {
            pb.add_vertex(l);
        }
        for (a, b2) in [(0, 1), (1, 2), (2, 3)] {
            pb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let r = FailingSetBacktracking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, oracle_count(&g, &p, Variant::EdgeInduced));
    }

    #[test]
    fn declares_edge_induced_only() {
        let g = grid(2);
        assert!(FailingSetBacktracking.supports(&g, &g, Variant::EdgeInduced));
        assert!(!FailingSetBacktracking.supports(&g, &g, Variant::Homomorphic));
        assert!(!FailingSetBacktracking.supports(&g, &g, Variant::VertexInduced));
    }

    #[test]
    fn zero_matches_report_cleanly() {
        let g = grid(3);
        // Triangle pattern: a grid has none.
        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(3);
        for (a, b2) in [(0, 1), (1, 2), (2, 0)] {
            pb.add_undirected_edge(a, b2, NO_LABEL).unwrap();
        }
        let p = pb.build();
        let r = FailingSetBacktracking.count(&g, &p, Variant::EdgeInduced, None);
        assert_eq!(r.count, 0);
        assert!(!r.timed_out);
    }
}
