//! Scheduler invariant checker: the dynamic chunk-claiming protocol the
//! parallel match engine relies on for *exactness*.
//!
//! The work-stealing counter in `csce_core::exec` is correct only if, for
//! every candidate count and worker count, the claimed chunks are
//! pairwise disjoint and cover `0..len` exactly — one missed index drops
//! embeddings, one double-claimed index double-counts them. Like the
//! other checkers in this crate, the properties are re-derived from first
//! principles (by draining real [`Scheduler`] instances, sequentially and
//! concurrently) rather than trusting the arithmetic in the claim path.

use crate::ValidationReport;
use csce_core::{adaptive_chunk, Scheduler};

/// Candidate counts exercised by the drain checks: empty, tiny, chunk
/// boundaries (±1 around multiples of the clamp bounds) and large-ish.
const LENS: [usize; 10] = [0, 1, 2, 31, 32, 255, 256, 257, 1009, 8192];

/// Worker counts exercised by the drain checks.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Validate the chunk-size policy and the claim protocol.
pub fn validate_scheduler() -> ValidationReport {
    let mut report = ValidationReport::new("exec scheduler (chunk-claim protocol)");
    check_chunk_policy(&mut report);
    check_sequential_drain(&mut report);
    check_concurrent_drain(&mut report);
    check_stop_protocol(&mut report);
    report
}

/// `adaptive_chunk` stays within its documented `[1, 256]` clamp and
/// never exceeds a nonempty range outright unreasonably.
fn check_chunk_policy(report: &mut ValidationReport) {
    report.ran("sched.chunk-bounds");
    for len in [0usize, 1, 10, 100, 10_000, 1_000_000, usize::MAX] {
        for threads in [0usize, 1, 2, 4, 16, 1024] {
            let chunk = adaptive_chunk(len, threads);
            if chunk == 0 {
                report.violation(
                    "sched.chunk-bounds",
                    format!("adaptive_chunk({len}, {threads}) == 0: claims would not progress"),
                );
            }
            if chunk > 256 {
                report.violation(
                    "sched.chunk-bounds",
                    format!("adaptive_chunk({len}, {threads}) == {chunk} exceeds the 256 clamp"),
                );
            }
        }
    }
}

/// Draining one scheduler from a single thread yields disjoint,
/// in-order chunks covering `0..len` exactly.
fn check_sequential_drain(report: &mut ValidationReport) {
    report.ran("sched.drain-covers");
    report.ran("sched.drain-disjoint");
    for &len in &LENS {
        for &threads in &THREADS {
            let sched = Scheduler::new(threads, None);
            let mut next_expected = 0usize;
            while let Some(chunk) = sched.claim(len) {
                if chunk.start != next_expected {
                    report.violation(
                        "sched.drain-disjoint",
                        format!(
                            "len={len} threads={threads}: claim starts at {} after {} indexes",
                            chunk.start, next_expected
                        ),
                    );
                }
                if chunk.end > len || chunk.is_empty() {
                    report.violation(
                        "sched.drain-disjoint",
                        format!("len={len} threads={threads}: bad chunk {chunk:?}"),
                    );
                }
                next_expected = chunk.end;
            }
            if next_expected != len {
                report.violation(
                    "sched.drain-covers",
                    format!("len={len} threads={threads}: drained {next_expected} of {len}"),
                );
            }
        }
    }
}

/// Draining one scheduler from `threads` real threads still partitions
/// the range: every index claimed exactly once.
fn check_concurrent_drain(report: &mut ValidationReport) {
    report.ran("sched.concurrent-partition");
    for &len in &[257usize, 1009, 8192] {
        for &threads in &[2usize, 4] {
            let sched = Scheduler::new(threads, None);
            let mut claimed: Vec<Vec<usize>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            while let Some(chunk) = sched.claim(len) {
                                mine.extend(chunk);
                            }
                            mine
                        })
                    })
                    .collect();
                for handle in handles {
                    match handle.join() {
                        Ok(mine) => claimed.push(mine),
                        Err(_) => report
                            .violation("sched.concurrent-partition", "claimer thread panicked"),
                    }
                }
            });
            let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
            all.sort_unstable();
            let ok = all.len() == len && all.iter().copied().eq(0..len);
            if !ok {
                report.violation(
                    "sched.concurrent-partition",
                    format!(
                        "len={len} threads={threads}: {} indexes claimed, expected exactly 0..{len} once each",
                        all.len()
                    ),
                );
            }
        }
    }
}

/// The stop flag wins exactly once and halts claiming.
fn check_stop_protocol(report: &mut ValidationReport) {
    report.ran("sched.stop-once");
    let sched = Scheduler::new(4, None);
    if sched.stopped() {
        report.violation("sched.stop-once", "fresh scheduler reports stopped");
    }
    if !sched.stop_once() {
        report.violation("sched.stop-once", "first stop_once did not win the transition");
    }
    if sched.stop_once() {
        report.violation("sched.stop-once", "second stop_once also claimed the transition");
    }
    if !sched.stopped() {
        report.violation("sched.stop-once", "stop flag not observable after stop_once");
    }
    if sched.claim(100).is_some() {
        report.violation("sched.stop-once", "stopped scheduler still hands out chunks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_invariants_hold() {
        let report = validate_scheduler();
        assert!(report.is_ok(), "{:?}", report.details());
        assert!(report.checks_run() >= 5);
    }
}
