//! Deep structural validation of plan artifacts — the dependency DAG `H`
//! (Algorithm 2), descendant sizes (Algorithm 3), the LDSF matching order
//! (Algorithm 4), NEC classes, cache slots, and the factorized execution
//! tree.
//!
//! Everything is re-derived from first principles: acyclicity by Kahn's
//! algorithm, descendant sizes by naive per-vertex DFS (not the bitset
//! dynamic program being audited), NEC soundness by recomputing classes
//! from the pattern. A planner regression that emits a cyclic `H`, a
//! non-topological `Φ*`, or an execution tree that skips a vertex shows up
//! here instead of as a silently wrong count.

use crate::{Validate, ValidationReport};
use csce_core::plan::dag::Dag;
use csce_core::plan::descendant::descendant_sizes;
use csce_core::plan::nec::nec_classes;
use csce_core::plan::ExecNode;
use csce_core::Plan;
use csce_graph::{FxHashMap, Graph, Variant, VertexId};

impl Validate for Dag {
    fn validate(&self) -> ValidationReport {
        let mut r = ValidationReport::new(format!(
            "dependency dag ({} vertices, {} arcs)",
            self.n(),
            self.edge_count()
        ));
        check_dag_structure(self, &mut r);
        let acyclic = check_acyclic(self, &mut r);
        if acyclic {
            check_descendant_sizes(self, &mut r);
        }
        r
    }
}

impl Validate for Plan {
    fn validate(&self) -> ValidationReport {
        let mut r = ValidationReport::new(format!(
            "plan ({} vertices, {})",
            self.order.len(),
            self.variant
        ));
        r.merge(self.dag.validate());
        check_order(self, &mut r);
        check_backward_neighbors(self, &mut r);
        check_exec_tree(self, &mut r);
        check_cache_slots(self, &mut r);
        check_sce_bounds(self, &mut r);
        check_induced_filter_shape(self, &mut r);
        r
    }
}

/// Pattern-aware plan validation: everything [`Validate`] checks plus the
/// properties that need the pattern itself — every pattern edge realized
/// exactly once as a dependency, NEC classes that refine the recomputed
/// neighborhood equivalence, and induced filters matching the pattern's
/// pair codes.
pub fn validate_plan(p: &Graph, plan: &Plan) -> ValidationReport {
    let mut r = plan.validate();
    r.ran("plan.pattern-size");
    if plan.dag.n() != p.n() || plan.order.len() != p.n() {
        r.violation(
            "plan.pattern-size",
            format!(
                "plan spans {} vertices (dag {}) but the pattern has {}",
                plan.order.len(),
                plan.dag.n(),
                p.n()
            ),
        );
        return r;
    }
    check_edge_dependencies(p, plan, &mut r);
    check_nec_refinement(p, plan, &mut r);
    check_induced_filter_codes(p, plan, &mut r);
    r
}

/// Adjacency mirror consistency, sortedness, vertex ranges, and the
/// containment of edge/negation parents in the plain parent lists.
fn check_dag_structure(dag: &Dag, r: &mut ValidationReport) {
    r.ran("dag.mirror");
    r.ran("dag.sorted-unique");
    r.ran("dag.vertex-range");
    r.ran("dag.parent-closure");
    let n = dag.n() as VertexId;
    for u in 0..n {
        for list in [dag.children(u), dag.parents(u)] {
            if list.windows(2).any(|w| w[0] >= w[1]) {
                r.violation(
                    "dag.sorted-unique",
                    format!("vertex {u}: adjacency list is not sorted and deduplicated"),
                );
            }
            if list.iter().any(|&w| w >= n) {
                r.violation("dag.vertex-range", format!("vertex {u} references a vertex >= {n}"));
            }
        }
        for &c in dag.children(u) {
            if c < n && dag.parents(c).binary_search(&u).is_err() {
                r.violation("dag.mirror", format!("arc {u} -> {c} missing from {c}'s parents"));
            }
        }
        for &p in dag.parents(u) {
            if p < n && dag.children(p).binary_search(&u).is_err() {
                r.violation("dag.mirror", format!("arc {p} -> {u} missing from {p}'s children"));
            }
        }
        let mut edge_set: Vec<VertexId> = dag.edge_parents(u).iter().map(|&(p, _)| p).collect();
        edge_set.sort_unstable();
        edge_set.dedup();
        for &p in &edge_set {
            if dag.parents(u).binary_search(&p).is_err() {
                r.violation(
                    "dag.parent-closure",
                    format!("vertex {u}: edge parent {p} is not a dependency parent"),
                );
            }
        }
        for &p in dag.negation_parents(u) {
            if dag.parents(u).binary_search(&p).is_err() {
                r.violation(
                    "dag.parent-closure",
                    format!("vertex {u}: negation parent {p} is not a dependency parent"),
                );
            }
            if edge_set.binary_search(&p).is_ok() {
                r.violation(
                    "dag.parent-closure",
                    format!("vertex {u}: parent {p} is both an edge and a negation dependency"),
                );
            }
        }
    }
}

/// Acyclicity by Kahn's algorithm; returns whether `H` is acyclic.
fn check_acyclic(dag: &Dag, r: &mut ValidationReport) -> bool {
    r.ran("dag.acyclic");
    let n = dag.n();
    let mut indegree: Vec<usize> = (0..n).map(|u| dag.parents(u as VertexId).len()).collect();
    let mut ready: Vec<VertexId> =
        (0..n as VertexId).filter(|&u| indegree[u as usize] == 0).collect();
    let mut done = 0usize;
    while let Some(u) = ready.pop() {
        done += 1;
        for &c in dag.children(u) {
            if (c as usize) < n {
                indegree[c as usize] -= 1;
                if indegree[c as usize] == 0 {
                    ready.push(c);
                }
            }
        }
    }
    if done != n {
        r.violation("dag.acyclic", format!("H contains a cycle through {} vertices", n - done));
        return false;
    }
    true
}

/// Algorithm 3 audited by brute force: per-vertex DFS reachability counts
/// must equal the bitset dynamic program's output.
fn check_descendant_sizes(dag: &Dag, r: &mut ValidationReport) {
    r.ran("dag.descendant-sizes");
    let fast = descendant_sizes(dag);
    let n = dag.n();
    for u in 0..n as VertexId {
        let mut seen = vec![false; n];
        let mut stack: Vec<VertexId> = dag.children(u).to_vec();
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            if seen[v as usize] {
                continue;
            }
            seen[v as usize] = true;
            count += 1;
            stack.extend_from_slice(dag.children(v));
        }
        if fast[u as usize] != count {
            r.violation(
                "dag.descendant-sizes",
                format!(
                    "vertex {u}: Algorithm 3 reports {} descendants, DFS finds {count}",
                    fast[u as usize]
                ),
            );
        }
    }
}

/// `Φ*` is a permutation, `pos_of` is its inverse, and the order is
/// topological with respect to `H` (Algorithm 4's contract).
fn check_order(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.order-permutation");
    r.ran("plan.pos-inverse");
    r.ran("plan.topological");
    let n = plan.dag.n();
    let mut seen = vec![false; n];
    for &u in &plan.order {
        if (u as usize) >= n || seen[u as usize] {
            r.violation(
                "plan.order-permutation",
                format!("Φ* is not a permutation of 0..{n}: vertex {u} repeated or out of range"),
            );
            return;
        }
        seen[u as usize] = true;
    }
    if plan.order.len() != n {
        r.violation(
            "plan.order-permutation",
            format!("Φ* has {} entries for {n} vertices", plan.order.len()),
        );
        return;
    }
    if plan.pos_of.len() != n {
        r.violation(
            "plan.pos-inverse",
            format!("pos_of has {} entries for {n}", plan.pos_of.len()),
        );
        return;
    }
    for (k, &u) in plan.order.iter().enumerate() {
        if plan.pos_of[u as usize] as usize != k {
            r.violation(
                "plan.pos-inverse",
                format!("pos_of[{u}] = {} but Φ* places it at {k}", plan.pos_of[u as usize]),
            );
        }
    }
    for &u in &plan.order {
        for &p in plan.dag.parents(u) {
            if plan.pos_of[p as usize] >= plan.pos_of[u as usize] {
                r.violation(
                    "plan.topological",
                    format!("dependency {p} -> {u} is violated by the order"),
                );
            }
        }
    }
}

/// LDSF's backward-neighbor contract for connected patterns: every vertex
/// after the first has at least one edge dependency on an earlier vertex.
fn check_backward_neighbors(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.backward-neighbors");
    for &u in plan.order.iter().skip(1) {
        if plan.dag.edge_parents(u).is_empty() {
            r.violation(
                "plan.backward-neighbors",
                format!("vertex {u} has no backward edge dependency (order not connected)"),
            );
        }
    }
}

/// The execution tree maps every pattern vertex exactly once on each
/// root-to-`Done` path, and sequencing respects `Φ*` within each branch.
fn check_exec_tree(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.exec-tree-coverage");
    r.ran("plan.exec-tree-order");
    let n = plan.dag.n();
    if plan.pos_of.len() != n {
        return; // unusable position index; reported by check_order
    }
    let mut counts = vec![0u32; n];
    visit_exec(&plan.root, plan, -1, &mut counts, r);
    for (u, &c) in counts.iter().enumerate() {
        if c != 1 {
            r.violation(
                "plan.exec-tree-coverage",
                format!("vertex {u} appears {c} times in the execution tree, expected once"),
            );
        }
    }
}

fn visit_exec(
    node: &ExecNode,
    plan: &Plan,
    last_pos: i64,
    counts: &mut [u32],
    r: &mut ValidationReport,
) {
    match node {
        ExecNode::Done => {}
        ExecNode::Seq { u, next } => {
            if (*u as usize) < counts.len() {
                counts[*u as usize] += 1;
                let pos = plan.pos_of[*u as usize] as i64;
                if pos <= last_pos {
                    r.violation(
                        "plan.exec-tree-order",
                        format!("vertex {u} is sequenced against the Φ* order"),
                    );
                }
                visit_exec(next, plan, pos, counts, r);
            } else {
                r.violation("plan.exec-tree-coverage", format!("tree references vertex {u}"));
            }
        }
        ExecNode::Split { components } => {
            for c in components {
                visit_exec(c, plan, last_pos, counts, r);
            }
        }
    }
}

/// Cache slots are dense and in bijection with
/// `(NEC class, parents, negation parents)` signatures.
fn check_cache_slots(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.cache-slots");
    let n = plan.dag.n();
    if plan.cache_slot.len() != n || plan.nec_class.len() != n {
        r.violation(
            "plan.cache-slots",
            format!(
                "cache_slot/nec_class sized {}/{} for {n} vertices",
                plan.cache_slot.len(),
                plan.nec_class.len()
            ),
        );
        return;
    }
    let mut sig_of_slot: FxHashMap<u32, (u32, Vec<VertexId>, Vec<VertexId>)> = FxHashMap::default();
    let mut slot_of_sig: FxHashMap<(u32, Vec<VertexId>, Vec<VertexId>), u32> = FxHashMap::default();
    for u in 0..n as VertexId {
        let slot = plan.cache_slot[u as usize];
        if slot as usize >= plan.slot_count {
            r.violation(
                "plan.cache-slots",
                format!("vertex {u} uses slot {slot} >= slot_count {}", plan.slot_count),
            );
            continue;
        }
        let sig = (
            plan.nec_class[u as usize],
            plan.dag.parents(u).to_vec(),
            plan.dag.negation_parents(u).to_vec(),
        );
        if let Some(prev) = sig_of_slot.get(&slot) {
            if prev != &sig {
                r.violation(
                    "plan.cache-slots",
                    format!("slot {slot} is shared by vertices with different signatures"),
                );
            }
        } else {
            sig_of_slot.insert(slot, sig.clone());
        }
        if let Some(&prev_slot) = slot_of_sig.get(&sig) {
            if prev_slot != slot {
                r.violation(
                    "plan.cache-slots",
                    format!("equal signatures split across slots {prev_slot} and {slot}"),
                );
            }
        } else {
            slot_of_sig.insert(sig, slot);
        }
    }
    if sig_of_slot.len() != plan.slot_count {
        r.violation(
            "plan.cache-slots",
            format!("{} slots in use but slot_count = {}", sig_of_slot.len(), plan.slot_count),
        );
    }
}

/// The SCE occurrence statistics are internally consistent.
fn check_sce_bounds(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.sce-bounds");
    let n = plan.order.len();
    let s = &plan.sce;
    let pair_bound = n * n.saturating_sub(1) / 2;
    if s.total_vertices != n
        || s.sce_vertices > n
        || s.cluster_sce_vertices > s.sce_vertices
        || s.cluster_sce_pairs > s.sce_pairs
        || s.sce_pairs > pair_bound
    {
        r.violation(
            "plan.sce-bounds",
            format!(
                "inconsistent SCE stats: {}/{} vertices ({} cluster), {}/{pair_bound} pairs ({} cluster)",
                s.sce_vertices, s.total_vertices, s.cluster_sce_vertices, s.sce_pairs,
                s.cluster_sce_pairs
            ),
        );
    }
}

/// Induced filters exist exactly for the vertex-induced variant, one list
/// per vertex, each filter naming a dependency parent.
fn check_induced_filter_shape(plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.induced-filters");
    let n = plan.dag.n();
    if plan.induced_filters.len() != n {
        r.violation(
            "plan.induced-filters",
            format!("{} filter lists for {n} vertices", plan.induced_filters.len()),
        );
        return;
    }
    for (u, filters) in plan.induced_filters.iter().enumerate() {
        if plan.variant != Variant::VertexInduced {
            if !filters.is_empty() {
                r.violation(
                    "plan.induced-filters",
                    format!("vertex {u} carries induced filters under {}", plan.variant),
                );
            }
            continue;
        }
        let parents: Vec<VertexId> = filters.iter().map(|f| f.parent).collect();
        if parents != plan.dag.parents(u as VertexId) {
            r.violation(
                "plan.induced-filters",
                format!("vertex {u}: filter parents do not match dependency parents"),
            );
        }
    }
}

/// Every pattern edge is realized as exactly one edge dependency, and each
/// dependency's edge index actually connects the pair it claims to.
fn check_edge_dependencies(p: &Graph, plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.edge-dependencies");
    let mut realized = vec![0u32; p.m()];
    for u in 0..p.n() as VertexId {
        for &(parent, eidx) in plan.dag.edge_parents(u) {
            let Some(e) = p.edges().get(eidx) else {
                r.violation(
                    "plan.edge-dependencies",
                    format!("vertex {u}: edge index {eidx} is out of range"),
                );
                continue;
            };
            realized[eidx] += 1;
            if (e.src, e.dst) != (parent, u) && (e.src, e.dst) != (u, parent) {
                r.violation(
                    "plan.edge-dependencies",
                    format!(
                        "dependency {parent} -> {u} cites edge {eidx} which connects ({}, {})",
                        e.src, e.dst
                    ),
                );
            }
        }
    }
    for (eidx, &c) in realized.iter().enumerate() {
        if c != 1 {
            r.violation(
                "plan.edge-dependencies",
                format!("pattern edge {eidx} realized {c} times as a dependency, expected once"),
            );
        }
    }
}

/// NEC soundness: vertices the plan places in one class must be
/// neighborhood-equivalent under a from-scratch recomputation (the plan's
/// classes may be finer — the `nec: false` preset uses identity classes —
/// but never coarser).
fn check_nec_refinement(p: &Graph, plan: &Plan, r: &mut ValidationReport) {
    r.ran("plan.nec-refinement");
    let truth = nec_classes(p);
    let mut rep_of_class: FxHashMap<u32, VertexId> = FxHashMap::default();
    for u in 0..p.n() as VertexId {
        let c = plan.nec_class[u as usize];
        match rep_of_class.get(&c) {
            Some(&rep) => {
                if truth[rep as usize] != truth[u as usize] {
                    r.violation(
                        "plan.nec-refinement",
                        format!(
                            "plan groups {rep} and {u} in NEC class {c} but they are not neighborhood-equivalent"
                        ),
                    );
                }
            }
            None => {
                rep_of_class.insert(c, u);
            }
        }
    }
}

/// Vertex-induced filters carry the pattern's pair codes verbatim.
fn check_induced_filter_codes(p: &Graph, plan: &Plan, r: &mut ValidationReport) {
    if plan.variant != Variant::VertexInduced {
        return;
    }
    r.ran("plan.induced-filter-codes");
    for (u, filters) in plan.induced_filters.iter().enumerate() {
        for f in filters {
            let expected = csce_graph::pattern::pair_code(p, f.parent, u as VertexId);
            if f.allowed != expected {
                r.violation(
                    "plan.induced-filter-codes",
                    format!(
                        "vertex {u}, parent {}: filter allows {:?}, pattern pair code is {:?}",
                        f.parent, f.allowed, expected
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::{build_ccsr, read_csr};
    use csce_core::{Catalog, Planner, PlannerConfig};
    use csce_graph::{GraphBuilder, NO_LABEL};

    fn fig1_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        for &l in &[0u32, 1, 2, 2, 1, 0, 3, 0] {
            b.add_vertex(l);
        }
        for (s, d) in [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)] {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn check_variant(variant: Variant, config: PlannerConfig) {
        let p = fig1_pattern();
        let gc = build_ccsr(&p).unwrap();
        let star = read_csr(&gc, &p, variant);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(config).plan(&catalog, variant);
        let report = validate_plan(&p, &plan);
        assert!(report.is_ok(), "{variant}: {:?}", report.details());
        assert!(report.checks_run() >= 15);
    }

    #[test]
    fn generated_plans_pass_all_variants_and_presets() {
        for variant in Variant::ALL {
            check_variant(variant, PlannerConfig::csce());
            check_variant(variant, PlannerConfig::ri_only());
            check_variant(variant, PlannerConfig::ri_cluster());
        }
    }

    #[test]
    fn cyclic_dag_is_detected() {
        // ISSUE acceptance: a cyclic dependency graph must be flagged.
        let dag = Dag::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        let report = dag.validate();
        assert!(!report.is_ok());
        assert!(report.details().iter().any(|v| v.checker == "dag.acyclic"), "{report:?}");
    }

    #[test]
    fn acyclic_hand_built_dag_passes() {
        let dag = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let report = dag.validate();
        assert!(report.is_ok(), "{:?}", report.details());
    }

    #[test]
    fn single_vertex_dag_passes() {
        assert!(Dag::from_arcs(1, &[]).validate().is_ok());
    }
}
