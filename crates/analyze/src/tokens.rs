//! Shared Rust tokenizer for the lint and call-graph passes.
//!
//! Lexes a source file into idents, punctuation, literals and lifetimes
//! while skipping comments; handles raw/byte strings (`r#"…"#`, `b"…"`),
//! char-literal vs lifetime disambiguation, and nested block comments.
//! Also provides `#[cfg(test)]` item stripping so downstream passes only
//! see production code.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

#[derive(Clone, Debug)]
pub(crate) struct Tok<'a> {
    pub(crate) kind: TokKind,
    pub(crate) text: &'a str,
    pub(crate) line: u32,
}

/// Lexer output: the token stream plus whether the file opened with an
/// inner doc comment before any real token.
pub(crate) struct Lexed<'a> {
    pub(crate) toks: Vec<Tok<'a>>,
    pub(crate) has_module_doc: bool,
}

pub(crate) fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut has_module_doc = false;
    let mut i = 0usize;
    let mut line = 1u32;
    let count_lines =
        |s: &str| u32::try_from(s.bytes().filter(|&c| c == b'\n').count()).unwrap_or(u32::MAX);
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if src[i..].starts_with("//") {
            if src[i..].starts_with("//!") && toks.is_empty() {
                has_module_doc = true;
            }
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if src[i..].starts_with("/*") {
            if src[i..].starts_with("/*!") && toks.is_empty() {
                has_module_doc = true;
            }
            let mut depth = 1usize;
            let start = i;
            i += 2;
            while i < b.len() && depth > 0 {
                if src[i..].starts_with("/*") {
                    depth += 1;
                    i += 2;
                } else if src[i..].starts_with("*/") {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&src[start..i]);
        } else if c == b'"' {
            let (end, nl) = scan_string(src, i);
            toks.push(Tok { kind: TokKind::Literal, text: &src[i..end], line });
            line += nl;
            i = end;
        } else if (c == b'r' || c == b'b') && is_raw_or_byte_string(src, i) {
            let (end, nl) = scan_prefixed_string(src, i);
            toks.push(Tok { kind: TokKind::Literal, text: &src[i..end], line });
            line += nl;
            i = end;
        } else if c == b'\'' {
            let (end, kind) = scan_quote(src, i);
            toks.push(Tok { kind, text: &src[i..end], line });
            i = end;
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: &src[start..i], line });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() {
                // A `.` continues the number only when followed by a digit
                // and not already present (so `0..n` stays a range).
                let fraction_dot = b[i] == b'.'
                    && i + 1 < b.len()
                    && b[i + 1].is_ascii_digit()
                    && !src[start..i].contains('.');
                if b[i].is_ascii_alphanumeric() || b[i] == b'_' || fraction_dot {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok { kind: TokKind::Literal, text: &src[start..i], line });
        } else {
            let w = src[i..].chars().next().map_or(1, |c| c.len_utf8());
            toks.push(Tok { kind: TokKind::Punct, text: &src[i..i + w], line });
            i += w;
        }
    }
    Lexed { toks, has_module_doc }
}

/// Whether position `i` (at `r` or `b`) starts a raw / byte string rather
/// than an identifier.
fn is_raw_or_byte_string(src: &str, i: usize) -> bool {
    let rest = &src.as_bytes()[i..];
    let mut j = 1;
    if rest[0] == b'b' && j < rest.len() && rest[j] == b'r' {
        j += 1;
    }
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    j < rest.len() && rest[j] == b'"' && (rest[0] != b'b' || j > 1 || rest[1] == b'"')
}

/// Scan a plain `"…"` string from `i`; returns (end index, newlines).
fn scan_string(src: &str, i: usize) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                if j + 1 < b.len() && b[j + 1] == b'\n' {
                    nl += 1; // line-continuation escape
                }
                j += 2;
            }
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scan a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`).
fn scan_prefixed_string(src: &str, i: usize) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return (i + 1, 0); // not actually a string; treat prefix as a char
    }
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
        } else if !raw && b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            let close = &src.as_bytes()[j + 1..];
            if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                return (j + 1 + hashes, nl);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, nl)
}

/// Disambiguate `'a'` / `'('` / `'…'` (char literals) from `'a` (lifetime)
/// at `i`.
fn scan_quote(src: &str, i: usize) -> (usize, TokKind) {
    let b = src.as_bytes();
    if i + 1 >= b.len() {
        return (i + 1, TokKind::Punct);
    }
    if b[i + 1] == b'\\' {
        // Escaped char literal: skip to the closing quote.
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Literal);
    }
    // A quote exactly one character later closes a char literal — any
    // character, including punctuation (`b'"'`) and multi-byte ones.
    let ch = src[i + 1..].chars().next().unwrap_or('\0');
    let after = i + 1 + ch.len_utf8();
    if ch != '\'' && after < b.len() && b[after] == b'\'' {
        return (after + 1, TokKind::Literal);
    }
    // Otherwise it is a lifetime or loop label.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    if j == i + 1 {
        (i + 1, TokKind::Punct) // stray quote
    } else {
        (j, TokKind::Lifetime)
    }
}

/// Remove every item annotated `#[cfg(test)]` (typically `mod tests { … }`)
/// from the token stream, so downstream passes only see production code.
pub(crate) fn strip_test_items(toks: Vec<Tok<'_>>) -> Vec<Tok<'_>> {
    let mut kept = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let (attr_end, is_test) = scan_attribute(&toks, i);
            if is_test {
                i = skip_item(&toks, attr_end);
                continue;
            }
        }
        kept.push(toks[i].clone());
        i += 1;
    }
    kept
}

/// From `#` at `i`, find the end of the attribute and whether it is
/// exactly `#[cfg(test)]` (the token run `cfg ( test )` — deliberately
/// not matching `cfg(not(test))` or other combinators).
pub(crate) fn scan_attribute(toks: &[Tok<'_>], i: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut is_cfg_test = false;
    while j < toks.len() {
        match toks[j].text {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_cfg_test);
                }
            }
            "cfg"
                if toks.get(j + 1).map(|t| t.text) == Some("(")
                    && toks.get(j + 2).map(|t| t.text) == Some("test")
                    && toks.get(j + 3).map(|t| t.text) == Some(")") =>
            {
                is_cfg_test = true;
            }
            _ => {}
        }
        j += 1;
    }
    (j, false)
}

/// Skip one item starting at `i` (past its attributes): consume any
/// further attributes, then tokens up to a `;` or through a balanced
/// `{ … }` block at nesting depth zero.
pub(crate) fn skip_item(toks: &[Tok<'_>], mut i: usize) -> usize {
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        i = scan_attribute(toks, i).0;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" => {
                let mut braces = 1usize;
                i += 1;
                while i < toks.len() && braces > 0 {
                    match toks[i].text {
                        "{" => braces += 1,
                        "}" => braces -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}
