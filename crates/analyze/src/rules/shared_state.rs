//! Rule `shared-state`: every `Arc`/`Atomic*`/`Mutex`/`RwLock` field in
//! the executor (`crates/core/src/exec/`) must appear in the committed
//! declared-ordering manifest.
//!
//! The manifest (`scripts/shared-state-manifest.txt`) lists one
//! `Struct.field` per line, in the order the fields may be acquired or
//! published, with a justification after ` — `. The rule fails in both
//! directions: an undeclared field (orphaned atomic someone added without
//! thinking about ordering) and a stale manifest entry (field removed or
//! renamed without updating the declared order).

use crate::callgraph::Workspace;
use crate::rules::{Finding, MANIFEST_PATH};

/// Directory whose shared-state fields are audited.
pub const EXEC_PREFIX: &str = "crates/core/src/exec/";

/// Parse manifest text into ordered `Struct.field` entries; `#` comments,
/// blank lines, and ` — ` justifications are stripped.
pub fn parse_manifest(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next().map(str::to_string))
        .collect()
}

/// Run the rule over the parsed workspace's shared fields.
pub fn run(ws: &Workspace, manifest: Option<&str>) -> Vec<Finding> {
    let declared = manifest.map(parse_manifest).unwrap_or_default();
    let mut findings = Vec::new();
    for f in &ws.shared_fields {
        if !f.file.starts_with(EXEC_PREFIX) {
            continue;
        }
        let key = format!("{}.{}", f.struct_name, f.field);
        if !declared.contains(&key) {
            findings.push(Finding {
                rule: "shared-state",
                fn_path: key.clone(),
                file: f.file.clone(),
                line: f.line,
                msg: format!(
                    "shared-state field `{key}: {}` is not in {MANIFEST_PATH}; declare its \
                     ordering or remove it",
                    f.type_text
                ),
            });
        }
    }
    for entry in &declared {
        let found = ws.shared_fields.iter().any(|f| {
            f.file.starts_with(EXEC_PREFIX) && format!("{}.{}", f.struct_name, f.field) == *entry
        });
        if !found {
            findings.push(Finding {
                rule: "shared-state",
                fn_path: entry.clone(),
                file: MANIFEST_PATH.to_string(),
                line: 0,
                msg: "manifest entry matches no shared-state field under \
                      crates/core/src/exec/ — stale declaration"
                    .to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec_ws() -> Workspace {
        let mut ws = Workspace::default();
        ws.parse_file(
            "crates/core/src/exec/scheduler.rs",
            "//! d\npub struct Scheduler {\n  cursor: AtomicUsize,\n  stop: AtomicBool,\n  threads: usize,\n}\n",
        );
        ws.parse_file(
            "crates/ccsr/src/csr.rs",
            "//! d\npub struct Outside { cell: Arc<AtomicU64> }\n",
        );
        ws
    }

    #[test]
    fn undeclared_fields_are_flagged() {
        let findings = run(&exec_ws(), Some("Scheduler.cursor — claim order first\n"));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].fn_path, "Scheduler.stop");
    }

    #[test]
    fn full_manifest_passes_and_ignores_non_exec_files() {
        let manifest = "# order\nScheduler.cursor — claimed first\nScheduler.stop — then stop\n";
        assert!(run(&exec_ws(), Some(manifest)).is_empty());
    }

    #[test]
    fn stale_entries_are_flagged() {
        let manifest = "Scheduler.cursor\nScheduler.stop\nScheduler.gone\n";
        let findings = run(&exec_ws(), Some(manifest));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].fn_path, "Scheduler.gone");
        assert_eq!(findings[0].file, MANIFEST_PATH);
    }

    #[test]
    fn missing_manifest_flags_every_field() {
        assert_eq!(run(&exec_ws(), None).len(), 2);
    }
}
