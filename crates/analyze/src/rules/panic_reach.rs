//! Rule `panic-reach`: panic sites transitively reachable from the
//! certified match-engine entry points.
//!
//! The entry-point list below *is* the certification surface: the WCOJ
//! recursion (`Executor::scan`/`try_candidate`/`walk` and the drivers
//! above them), the work-stealing scheduler's chunk-claim/stop/deadline
//! path, and the parallel front doors (`count/collect/enumerate_parallel`
//! and friends). Every entry is pinned to `crates/core/src/exec/` so a
//! same-named function elsewhere cannot widen or shadow the surface, and
//! an entry that no longer resolves is itself a finding — renaming a hot
//! function without updating the list fails CI instead of silently
//! un-certifying it.

use crate::callgraph::Workspace;
use crate::reach::{reach, EntryPoint, Reachability};
use crate::rules::Finding;

/// File prefix every certified entry must be defined under.
pub const ENTRY_PREFIX: &str = "crates/core/src/exec/";

/// The certified executor entry points.
pub const ENTRY_POINTS: [&str; 18] = [
    // Sequential drivers and the WCOJ recursion (Algorithm 4).
    "Executor::count",
    "Executor::drive",
    "Executor::enumerate",
    "Executor::scan",
    "Executor::try_candidate",
    "Executor::walk",
    "Executor::count_node",
    "Executor::check_deadline",
    // Work-stealing scheduler: chunk claim, stop, deadline.
    "Scheduler::claim",
    "Scheduler::request_stop",
    "Scheduler::stop_once",
    "Scheduler::stopped",
    "Scheduler::deadline",
    // Parallel front doors.
    "run_parallel",
    "count_parallel",
    "count_parallel_observed",
    "collect_parallel",
    "enumerate_parallel",
];

/// Run the rule: one finding per panic site in a reachable function, one
/// per certified entry that no longer resolves. Returns the reachability
/// result too so the driver can report call-graph scale.
pub fn run(ws: &Workspace, adj: &[Vec<usize>]) -> (Vec<Finding>, Reachability) {
    let entries: Vec<EntryPoint> =
        ENTRY_POINTS.iter().map(|q| EntryPoint { qual: q, file_prefix: ENTRY_PREFIX }).collect();
    let r = reach(ws, adj, &entries);
    let mut findings = Vec::new();
    for missing in &r.missing {
        findings.push(Finding {
            rule: "panic-reach",
            fn_path: missing.clone(),
            file: "<entry-point-list>".to_string(),
            line: 0,
            msg: "certified entry point no longer resolves to a function under \
                  crates/core/src/exec/ — update the list in rules/panic_reach.rs"
                .to_string(),
        });
    }
    for idx in r.reachable_fns() {
        let f = &ws.fns[idx];
        for site in &f.sites {
            if !site.kind.is_panic() {
                continue;
            }
            findings.push(Finding {
                rule: "panic-reach",
                fn_path: f.qual_name.clone(),
                file: f.file.clone(),
                line: site.line,
                msg: format!(
                    "{} {} reachable via {}",
                    site.kind.label(),
                    site.what,
                    r.chain(ws, idx)
                ),
            });
        }
    }
    (findings, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_sites_in_reachable_fns_only() {
        let mut ws = Workspace::default();
        ws.parse_file(
            "crates/core/src/exec/engine.rs",
            "//! d\nstruct Executor;\nimpl Executor {\n  fn walk(&mut self) { helper(); }\n}\nfn helper(v: &[u64]) -> u64 { v[0] }\nfn cold() -> u64 { Some(1).unwrap() }\n",
        );
        let adj = ws.resolve();
        let (findings, r) = run(&ws, &adj);
        // `helper` is reachable from walk; `cold` is not. The other 17
        // entries are missing in this tiny fixture.
        let site_findings: Vec<&Finding> =
            findings.iter().filter(|f| f.file != "<entry-point-list>").collect();
        assert_eq!(site_findings.len(), 1);
        assert_eq!(site_findings[0].fn_path, "helper");
        assert!(
            site_findings[0].msg.contains("Executor::walk > helper"),
            "{}",
            site_findings[0].msg
        );
        assert_eq!(r.missing.len(), ENTRY_POINTS.len() - 1);
        assert_eq!(
            findings.iter().filter(|f| f.file == "<entry-point-list>").count(),
            ENTRY_POINTS.len() - 1
        );
    }

    #[test]
    fn entries_outside_exec_do_not_certify() {
        let mut ws = Workspace::default();
        ws.parse_file(
            "crates/baselines/src/common.rs",
            "//! d\nfn count_parallel() { Some(1).unwrap(); }\n",
        );
        let adj = ws.resolve();
        let (findings, r) = run(&ws, &adj);
        assert_eq!(r.count(), 0);
        assert!(findings.iter().all(|f| f.file == "<entry-point-list>"));
    }
}
