//! Rule `hot-cast`: narrow `as` casts in *hot* code.
//!
//! The token lint's `lossy-cast` rule flags every `as u32`-style cast in
//! library code; this rule focuses the pressure where truncation corrupts
//! results instead of diagnostics — functions reachable from the engine
//! entry points or from the CCSR read path (`ReadCSR`, Algorithm 1, and
//! the decoded-cluster accessors the recursion touches per candidate).

use crate::callgraph::{SiteKind, Workspace};
use crate::reach::{reach, EntryPoint};
use crate::rules::{panic_reach, Finding};

/// Entry points of the CCSR read path, pinned to the ccsr crate.
pub const READ_ENTRY_POINTS: [&str; 4] =
    ["read_csr", "pattern_edge_key", "GcStar::get", "GcStar::cluster_for_edge"];

/// File prefix the read-path entries must be defined under.
pub const READ_PREFIX: &str = "crates/ccsr/src/";

/// Run the rule: one finding per narrow-cast site in a function reachable
/// from the engine or CCSR read paths. Missing read-path entries are not
/// findings here — `panic-reach` already certifies the engine list, and
/// the read-path names double as plain reachability seeds.
pub fn run(ws: &Workspace, adj: &[Vec<usize>]) -> Vec<Finding> {
    let mut entries: Vec<EntryPoint> = panic_reach::ENTRY_POINTS
        .iter()
        .map(|q| EntryPoint { qual: q, file_prefix: panic_reach::ENTRY_PREFIX })
        .collect();
    entries
        .extend(READ_ENTRY_POINTS.iter().map(|q| EntryPoint { qual: q, file_prefix: READ_PREFIX }));
    let r = reach(ws, adj, &entries);
    let mut findings = Vec::new();
    for idx in r.reachable_fns() {
        let f = &ws.fns[idx];
        for site in &f.sites {
            if site.kind != SiteKind::NarrowCast {
                continue;
            }
            findings.push(Finding {
                rule: "hot-cast",
                fn_path: f.qual_name.clone(),
                file: f.file.clone(),
                line: site.line,
                msg: format!("{} in hot code, reachable via {}", site.what, r.chain(ws, idx)),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_flagged_only_in_reachable_code() {
        let mut ws = Workspace::default();
        ws.parse_file(
            "crates/ccsr/src/read.rs",
            "//! d\nfn read_csr(n: usize) { narrow(n); }\nfn narrow(n: usize) -> u32 { n as u32 }\nfn cold(n: usize) -> u32 { n as u32 }\n",
        );
        let adj = ws.resolve();
        let findings = run(&ws, &adj);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].fn_path, "narrow");
        assert!(findings[0].msg.contains("read_csr > narrow"), "{}", findings[0].msg);
    }
}
