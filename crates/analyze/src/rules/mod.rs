//! Call-graph-aware static-analysis rules and their reporting formats.
//!
//! Three rules run over the parsed [`crate::callgraph::Workspace`]:
//!
//! * [`panic_reach`] — panic sites transitively reachable from the
//!   certified executor entry points;
//! * [`hot_cast`] — narrow `as` casts in functions reachable from the
//!   engine or CCSR read paths;
//! * [`shared_state`] — `Arc`/`Atomic*`/`Mutex` fields in `exec/` absent
//!   from the declared-ordering manifest.
//!
//! Findings ratchet against a committed **baseline** in the lint
//! allowlist's spirit but function-granular (`<count> <rule> <fn-path>
//! <file>` lines): CI fails when a function gains a finding *or* when a
//! ceiling goes stale, so recorded debt only shrinks. The same findings
//! export as a SARIF-style JSON document for artifact upload and as a
//! [`crate::ValidationReport`] for `csce validate --static`.

pub mod hot_cast;
pub mod panic_reach;
pub mod shared_state;

use std::fmt::Write as _;
use std::path::Path;

use crate::callgraph::Workspace;
use crate::ValidationReport;
use csce_obs::json::JsonValue;

/// Rule identifiers, in reporting order.
pub const STATIC_RULES: [&str; 3] = ["panic-reach", "hot-cast", "shared-state"];

/// Default baseline and manifest locations relative to the workspace root.
pub const BASELINE_PATH: &str = "scripts/static-baseline.txt";
pub const MANIFEST_PATH: &str = "scripts/shared-state-manifest.txt";

/// One static-analysis finding, attributed to a function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Qualified function path (`Type::name` or `name`); for manifest
    /// findings, the `Struct.field` entry.
    pub fn_path: String,
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// 1-based line (0 for whole-entity findings).
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {} — {}", self.file, self.line, self.rule, self.fn_path, self.msg)
    }
}

/// Everything one analyzer run produced, plus call-graph scale counters
/// for the run report.
#[derive(Clone, Debug, Default)]
pub struct StaticReport {
    pub findings: Vec<Finding>,
    /// Functions parsed across the workspace.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Functions reachable from the panic-certified entry points.
    pub hot_fns: usize,
    /// Certified entry points that resolved to a workspace function.
    pub entries_found: usize,
}

/// Run all rules over an already-parsed workspace. `manifest` is the
/// shared-state manifest text (`None` when the file does not exist).
pub fn run_rules(ws: &Workspace, manifest: Option<&str>) -> StaticReport {
    let adj = ws.resolve();
    let mut report = StaticReport {
        findings: Vec::new(),
        functions: ws.fns.len(),
        edges: adj.iter().map(Vec::len).sum(),
        hot_fns: 0,
        entries_found: 0,
    };
    let (panic_findings, reach) = panic_reach::run(ws, &adj);
    report.hot_fns = reach.count();
    report.entries_found = reach.entries.len();
    report.findings.extend(panic_findings);
    report.findings.extend(hot_cast::run(ws, &adj));
    report.findings.extend(shared_state::run(ws, manifest));
    report
}

/// Parse the workspace under `root` and run all rules, reading the
/// shared-state manifest from its conventional location.
pub fn run_static(root: &Path) -> std::io::Result<StaticReport> {
    let ws = Workspace::load(root)?;
    let manifest = match std::fs::read_to_string(root.join(MANIFEST_PATH)) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    Ok(run_rules(&ws, manifest.as_deref()))
}

/// Function-granular ratchet: per `(rule, fn-path, file)` ceilings.
///
/// Format, one entry per line: `<count> <rule> <fn-path> <file>`; `#`
/// comments and blank lines are ignored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticBaseline {
    entries: Vec<(String, String, &'static str, u32)>, // (file, fn_path, rule, count)
}

impl StaticBaseline {
    pub fn parse(text: &str) -> Result<StaticBaseline, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (count, rule, fn_path, file) = match (it.next(), it.next(), it.next(), it.next()) {
                (Some(c), Some(r), Some(f), Some(p)) => (c, r, f, p),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `<count> <rule> <fn-path> <file>`",
                        lineno + 1
                    ))
                }
            };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count {count:?}", lineno + 1))?;
            let rule = STATIC_RULES
                .iter()
                .find(|&&r2| r2 == rule)
                .ok_or_else(|| format!("baseline line {}: unknown rule {rule:?}", lineno + 1))?;
            entries.push((file.to_string(), fn_path.to_string(), *rule, count));
        }
        entries.sort();
        Ok(StaticBaseline { entries })
    }

    pub fn allowed(&self, file: &str, fn_path: &str, rule: &str) -> u32 {
        self.entries
            .iter()
            .find(|(p, f, r, _)| p == file && f == fn_path && *r == rule)
            .map(|&(_, _, _, c)| c)
            .unwrap_or(0)
    }

    /// Build a baseline that exactly covers `findings`.
    pub fn from_findings(findings: &[Finding]) -> StaticBaseline {
        let mut entries: Vec<(String, String, &'static str, u32)> = Vec::new();
        for f in findings {
            match entries
                .iter_mut()
                .find(|(p, fp, r, _)| *p == f.file && *fp == f.fn_path && *r == f.rule)
            {
                Some((_, _, _, c)) => *c += 1,
                None => entries.push((f.file.clone(), f.fn_path.clone(), f.rule, 1)),
            }
        }
        entries.sort();
        StaticBaseline { entries }
    }

    /// Serialize in the checked-in format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# csce static-analysis baseline: per-function finding ceilings.\n\
             # Regenerate with `cargo run -p csce-analyze --bin csce-lint -- --static\n\
             # --update-baseline` after *reducing* counts; additions require\n\
             # justification in review. Certified entry points reach zero panic\n\
             # sites beyond what this file enumerates.\n",
        );
        for (file, fn_path, rule, count) in &self.entries {
            let _ = writeln!(out, "{count} {rule} {fn_path} {file}");
        }
        out
    }

    /// Total recorded ceiling across all entries.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, _, _, c)| u64::from(c)).sum()
    }

    /// Compare findings against the ceilings: new findings (over ceiling)
    /// and stale ceilings (under) both fail, keeping the ratchet tight.
    pub fn check(&self, findings: &[Finding]) -> Vec<String> {
        let observed = StaticBaseline::from_findings(findings);
        let mut failures = Vec::new();
        for (file, fn_path, rule, count) in &observed.entries {
            let allowed = self.allowed(file, fn_path, rule);
            if *count > allowed {
                let lines: Vec<String> = findings
                    .iter()
                    .filter(|f| &f.file == file && &f.fn_path == fn_path && f.rule == *rule)
                    .map(|f| format!("  {f}"))
                    .collect();
                failures.push(format!(
                    "{fn_path} ({file}): {count} `{rule}` findings exceed the allowed \
                     {allowed}:\n{}",
                    lines.join("\n")
                ));
            }
        }
        for (file, fn_path, rule, allowed) in &self.entries {
            let count = observed.allowed(file, fn_path, rule);
            if count < *allowed {
                failures.push(format!(
                    "{fn_path} ({file}): baseline permits {allowed} `{rule}` but only {count} \
                     remain — tighten the ratchet (--static --update-baseline)"
                ));
            }
        }
        failures
    }
}

/// Export findings as a SARIF-style document (version 2.1.0 core fields:
/// one run, one driver, per-rule metadata, one result per finding).
pub fn to_sarif(report: &StaticReport) -> JsonValue {
    let rules: Vec<JsonValue> = STATIC_RULES
        .iter()
        .map(|r| {
            JsonValue::Object(vec![
                ("id".to_string(), JsonValue::Str((*r).to_string())),
                (
                    "shortDescription".to_string(),
                    JsonValue::Object(vec![(
                        "text".to_string(),
                        JsonValue::Str(rule_description(r).to_string()),
                    )]),
                ),
            ])
        })
        .collect();
    let results: Vec<JsonValue> = report
        .findings
        .iter()
        .map(|f| {
            JsonValue::Object(vec![
                ("ruleId".to_string(), JsonValue::Str(f.rule.to_string())),
                ("level".to_string(), JsonValue::Str("warning".to_string())),
                (
                    "message".to_string(),
                    JsonValue::Object(vec![(
                        "text".to_string(),
                        JsonValue::Str(format!("{}: {}", f.fn_path, f.msg)),
                    )]),
                ),
                (
                    "locations".to_string(),
                    JsonValue::Array(vec![JsonValue::Object(vec![(
                        "physicalLocation".to_string(),
                        JsonValue::Object(vec![
                            (
                                "artifactLocation".to_string(),
                                JsonValue::Object(vec![(
                                    "uri".to_string(),
                                    JsonValue::Str(f.file.clone()),
                                )]),
                            ),
                            (
                                "region".to_string(),
                                JsonValue::Object(vec![(
                                    "startLine".to_string(),
                                    JsonValue::UInt(u64::from(f.line.max(1))),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
                (
                    "properties".to_string(),
                    JsonValue::Object(vec![(
                        "functionPath".to_string(),
                        JsonValue::Str(f.fn_path.clone()),
                    )]),
                ),
            ])
        })
        .collect();
    let driver = JsonValue::Object(vec![
        ("name".to_string(), JsonValue::Str("csce-static".to_string())),
        ("informationUri".to_string(), JsonValue::Str("https://example.invalid/csce".to_string())),
        ("rules".to_string(), JsonValue::Array(rules)),
    ]);
    let run = JsonValue::Object(vec![
        ("tool".to_string(), JsonValue::Object(vec![("driver".to_string(), driver)])),
        ("results".to_string(), JsonValue::Array(results)),
        (
            "properties".to_string(),
            JsonValue::Object(vec![
                ("functions".to_string(), JsonValue::UInt(report.functions as u64)),
                ("callEdges".to_string(), JsonValue::UInt(report.edges as u64)),
                ("hotFunctions".to_string(), JsonValue::UInt(report.hot_fns as u64)),
                ("entriesFound".to_string(), JsonValue::UInt(report.entries_found as u64)),
            ]),
        ),
    ]);
    JsonValue::Object(vec![
        (
            "$schema".to_string(),
            JsonValue::Str("https://json.schemastore.org/sarif-2.1.0.json".to_string()),
        ),
        ("version".to_string(), JsonValue::Str("2.1.0".to_string())),
        ("runs".to_string(), JsonValue::Array(vec![run])),
    ])
}

fn rule_description(rule: &str) -> &'static str {
    match rule {
        "panic-reach" => "panic site reachable from a certified executor entry point",
        "hot-cast" => "narrow as-cast in code reachable from the engine/CCSR read path",
        "shared-state" => "shared-state field missing from the declared-ordering manifest",
        _ => "unknown rule",
    }
}

/// Fold an analyzer run into a [`ValidationReport`]: every rule registers
/// as a checker, and only findings *beyond the baseline* (plus stale
/// ceilings) count as violations — a clean run certifies the entry points
/// against the enumerated residue.
pub fn to_validation_report(report: &StaticReport, baseline: &StaticBaseline) -> ValidationReport {
    let mut v = ValidationReport::new("workspace static analysis");
    v.ran("static.panic-reach");
    v.ran("static.hot-cast");
    v.ran("static.shared-state");
    for failure in baseline.check(&report.findings) {
        let checker = if failure.contains("`panic-reach`") {
            "static.panic-reach"
        } else if failure.contains("`hot-cast`") {
            "static.hot-cast"
        } else {
            "static.shared-state"
        };
        v.violation(checker, failure);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, fn_path: &str, file: &str) -> Finding {
        Finding {
            rule,
            fn_path: fn_path.to_string(),
            file: file.to_string(),
            line: 3,
            msg: "m".to_string(),
        }
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let findings = vec![
            finding("panic-reach", "Executor::walk", "crates/core/src/exec/engine.rs"),
            finding("panic-reach", "Executor::walk", "crates/core/src/exec/engine.rs"),
            finding("hot-cast", "read_csr", "crates/ccsr/src/read.rs"),
        ];
        let base = StaticBaseline::from_findings(&findings);
        let parsed = StaticBaseline::parse(&base.to_text()).unwrap();
        assert_eq!(base, parsed);
        assert_eq!(parsed.total(), 3);
        assert!(parsed.check(&findings).is_empty());
        // One more finding in a covered function fails.
        let mut more = findings.clone();
        more.push(finding("panic-reach", "Executor::walk", "crates/core/src/exec/engine.rs"));
        assert_eq!(parsed.check(&more).len(), 1);
        // A fixed finding fails as a stale ceiling.
        assert_eq!(parsed.check(&findings[1..]).len(), 1);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(StaticBaseline::parse("nope").is_err());
        assert!(StaticBaseline::parse("2 bogus f x.rs").is_err());
        assert!(StaticBaseline::parse("x panic-reach f x.rs").is_err());
        assert!(StaticBaseline::parse("# comment\n\n1 hot-cast f x.rs\n").is_ok());
    }

    #[test]
    fn sarif_has_schema_results_and_properties() {
        let report = StaticReport {
            findings: vec![finding("panic-reach", "f", "a.rs")],
            functions: 10,
            edges: 20,
            hot_fns: 5,
            entries_found: 3,
        };
        let sarif = to_sarif(&report);
        assert_eq!(sarif.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let runs = sarif.get("runs").and_then(|r| r.as_array()).unwrap();
        let results = runs[0].get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("ruleId").and_then(|r| r.as_str()), Some("panic-reach"));
        // The document round-trips through the JSON parser.
        let parsed = csce_obs::json::parse(&sarif.to_pretty()).unwrap();
        assert_eq!(parsed, sarif);
    }

    #[test]
    fn validation_report_counts_only_unallowlisted() {
        let findings = vec![finding("panic-reach", "f", "a.rs")];
        let report = StaticReport { findings: findings.clone(), ..StaticReport::default() };
        let base = StaticBaseline::from_findings(&findings);
        let v = to_validation_report(&report, &base);
        assert!(v.is_ok(), "baseline-covered findings are not violations");
        let v = to_validation_report(&report, &StaticBaseline::default());
        assert_eq!(v.total_violations(), 1);
    }
}
