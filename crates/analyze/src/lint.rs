//! Zero-dependency static source lint for the CSCE workspace.
//!
//! A minimal Rust tokenizer (comments, strings, raw strings, char
//! literals, lifetimes, idents, numbers, punctuation) feeds four
//! rules over non-test library code:
//!
//! * `no-panic` — no `.unwrap()`, `.expect(…)`, or `panic!` in library
//!   code; panics belong in tests and at the CLI boundary.
//! * `lossy-cast` — no `as` casts into narrow index types (`u8`–`u32`,
//!   `i8`–`i32`, `VertexId`, `Label`); a `usize → u32` cast silently
//!   truncates on graphs past 4 billion vertices.
//! * `wildcard-variant-arm` — no `_ =>` arms in matches that involve the
//!   matching-variant (`Variant`) or cluster-direction (`Orient`) enums,
//!   so adding a variant is a compile error everywhere it matters.
//! * `module-doc` — every library file opens with `//!` or `/*!`.
//!
//! `#[cfg(test)]` items are stripped before the rules run; `tests/`,
//! `benches/`, `examples/`, and `bin/` paths are excluded wholesale.
//! Enforcement is *ratcheted* through a checked-in allowlist of per-file
//! counts: CI fails when a file gains a violation (new debt) or loses one
//! without the allowlist shrinking (stale ceiling), so the recorded debt
//! only ever goes down.

use std::fmt::Write as _;
use std::path::Path;

use crate::tokens::{lex, strip_test_items, Tok, TokKind};

/// Rule identifiers, in reporting order.
pub const RULES: [&str; 4] = ["no-panic", "lossy-cast", "wildcard-variant-arm", "module-doc"];

/// Target types of the `lossy-cast` rule: a cast *into* any of these can
/// drop high bits of a wider index.
pub(crate) const NARROW_TYPES: [&str; 8] =
    ["u8", "u16", "u32", "i8", "i16", "i32", "VertexId", "Label"];

/// Enums whose matches must stay exhaustive (`wildcard-variant-arm`).
const GUARDED_ENUMS: [&str; 2] = ["Variant", "Orient"];

/// One rule hit at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintViolation {
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number (0 for whole-file rules).
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for LintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Run all rules on one source file; `path` is only used for labeling.
pub fn lint_source(path: &str, src: &str) -> Vec<LintViolation> {
    let lexed = lex(src);
    let mut out = Vec::new();
    if !lexed.has_module_doc {
        out.push(LintViolation {
            rule: "module-doc",
            path: path.to_string(),
            line: 1,
            msg: "file does not open with a `//!` module doc comment".to_string(),
        });
    }
    let toks = strip_test_items(lexed.toks);
    rule_no_panic(path, &toks, &mut out);
    rule_lossy_cast(path, &toks, &mut out);
    rule_wildcard_arm(path, &toks, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

fn rule_no_panic(path: &str, toks: &[Tok<'_>], out: &mut Vec<LintViolation>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let next = toks.get(i + 1).map(|t| t.text);
        let hit = match t.text {
            "unwrap" | "expect" => prev_dot && next == Some("("),
            "panic" => next == Some("!"),
            _ => false,
        };
        if hit {
            out.push(LintViolation {
                rule: "no-panic",
                path: path.to_string(),
                line: t.line,
                msg: format!(
                    "`{}` in library code; return a Result or justify in the allowlist",
                    t.text
                ),
            });
        }
    }
}

fn rule_lossy_cast(path: &str, toks: &[Tok<'_>], out: &mut Vec<LintViolation>) {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "as"
            && toks[i + 1].kind == TokKind::Ident
            && NARROW_TYPES.contains(&toks[i + 1].text)
        {
            // `as` inside a use statement (`use x as y`) has an ident after
            // it too, but never one of the narrow primitive types.
            out.push(LintViolation {
                rule: "lossy-cast",
                path: path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "`as {}` can truncate; use try_into or justify in the allowlist",
                    toks[i + 1].text
                ),
            });
        }
    }
}

fn rule_wildcard_arm(path: &str, toks: &[Tok<'_>], out: &mut Vec<LintViolation>) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "match" {
            i += 1;
            continue;
        }
        // Header: up to the body `{` at bracket depth 0 (struct literals
        // are not allowed bare in a scrutinee).
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        // Body: to the matching `}`.
        let body_start = j + 1;
        let mut braces = 1usize;
        let mut k = body_start;
        while k < toks.len() && braces > 0 {
            match toks[k].text {
                "{" => braces += 1,
                "}" => braces -= 1,
                _ => {}
            }
            k += 1;
        }
        let body_end = k.saturating_sub(1);
        let involved = toks[i..body_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && GUARDED_ENUMS.contains(&t.text));
        if involved {
            // Wildcard arms live at brace depth 1 of the body, outside any
            // parens (a `_` inside `(…)` or `Foo { … }` is a sub-pattern).
            let mut bdepth = 1usize;
            let mut pdepth = 0usize;
            for a in body_start..body_end {
                match toks[a].text {
                    "{" => bdepth += 1,
                    "}" => bdepth -= 1,
                    "(" | "[" => pdepth += 1,
                    ")" | "]" => pdepth = pdepth.saturating_sub(1),
                    "_" if bdepth == 1
                        && pdepth == 0
                        && toks.get(a + 1).map(|t| t.text) == Some("=")
                        && toks.get(a + 2).map(|t| t.text) == Some(">") =>
                    {
                        out.push(LintViolation {
                            rule: "wildcard-variant-arm",
                            path: path.to_string(),
                            line: toks[a].line,
                            msg: "wildcard arm in a match involving Variant/Orient; list the variants"
                                .to_string(),
                        });
                    }
                    _ => {}
                }
            }
        }
        i = body_start;
    }
}

/// Whether a workspace-relative path is non-test library code the rules
/// apply to.
pub fn is_library_source(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
        return false;
    }
    !parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin" | "fixtures"))
        && rel.ends_with(".rs")
}

/// Collect the workspace's library sources under `root`, returning sorted
/// workspace-relative `/`-separated paths.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !matches!(name.as_ref(), "target" | "vendor" | ".git" | ".claude") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if is_library_source(&rel) {
                    found.push(rel);
                }
            }
        }
    }
    found.sort();
    Ok(found)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// The ratcheting allowlist: per `(rule, file)` violation ceilings.
///
/// Format, one entry per line: `<count> <rule> <path>`; `#` comments and
/// blank lines are ignored. Entries are kept sorted by (path, rule).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<(String, &'static str, u32)>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (count, rule, path) = match (it.next(), it.next(), it.next()) {
                (Some(c), Some(r), Some(p)) => (c, r, p),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `<count> <rule> <path>`",
                        lineno + 1
                    ))
                }
            };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("allowlist line {}: bad count {count:?}", lineno + 1))?;
            let rule = RULES
                .iter()
                .find(|&&r2| r2 == rule)
                .ok_or_else(|| format!("allowlist line {}: unknown rule {rule:?}", lineno + 1))?;
            entries.push((path.to_string(), *rule, count));
        }
        entries.sort();
        Ok(Allowlist { entries })
    }

    pub fn allowed(&self, path: &str, rule: &str) -> u32 {
        self.entries
            .iter()
            .find(|(p, r, _)| p == path && *r == rule)
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    }

    /// Build an allowlist that exactly covers `violations`.
    pub fn from_violations(violations: &[LintViolation]) -> Allowlist {
        let mut entries: Vec<(String, &'static str, u32)> = Vec::new();
        for v in violations {
            match entries.iter_mut().find(|(p, r, _)| *p == v.path && *r == v.rule) {
                Some((_, _, c)) => *c += 1,
                None => entries.push((v.path.clone(), v.rule, 1)),
            }
        }
        entries.sort();
        Allowlist { entries }
    }

    /// Serialize in the checked-in format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# csce-lint ratchet: per-file violation ceilings. Regenerate with\n\
             # `cargo run -p csce-analyze --bin csce-lint -- --update-allowlist`\n\
             # after *reducing* counts; additions require justification in review.\n",
        );
        for (path, rule, count) in &self.entries {
            let _ = writeln!(out, "{count} {rule} {path}");
        }
        out
    }

    /// Compare observed violations against the ceilings. Returns
    /// human-readable failures: new violations (count above ceiling) and
    /// stale ceilings (count below — the ratchet must be tightened).
    pub fn check(&self, violations: &[LintViolation]) -> Vec<String> {
        let observed = Allowlist::from_violations(violations);
        let mut failures = Vec::new();
        for (path, rule, count) in &observed.entries {
            let allowed = self.allowed(path, rule);
            if *count > allowed {
                let lines: Vec<String> = violations
                    .iter()
                    .filter(|v| &v.path == path && v.rule == *rule)
                    .map(|v| format!("  {v}"))
                    .collect();
                failures.push(format!(
                    "{path}: {count} `{rule}` violations exceed the allowed {allowed}:\n{}",
                    lines.join("\n")
                ));
            }
        }
        for (path, rule, allowed) in &self.entries {
            let count = observed.allowed(path, rule);
            if count < *allowed {
                failures.push(format!(
                    "{path}: allowlist permits {allowed} `{rule}` but only {count} remain — \
                     tighten the ratchet (run with --update-allowlist)"
                ));
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source("x.rs", src).into_iter().map(|v| v.rule).collect()
    }

    const DOC: &str = "//! doc\n";

    #[test]
    fn clean_file_passes() {
        let src = "//! A documented module.\npub fn f(x: u64) -> u64 { x + 1 }\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn missing_module_doc_flagged() {
        assert_eq!(rules_of("pub fn f() {}\n"), vec!["module-doc"]);
        assert!(rules_of("/*! block doc */\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn unwrap_expect_panic_flagged() {
        let src =
            format!("{DOC}fn f() {{ let x = g().unwrap(); h().expect(\"x\"); panic!(\"y\"); }}");
        assert_eq!(rules_of(&src), vec!["no-panic", "no-panic", "no-panic"]);
    }

    #[test]
    fn unwrap_in_string_or_comment_not_flagged() {
        let src = format!("{DOC}// .unwrap() here\nfn f() -> &'static str {{ \".unwrap()\" }}\n");
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = format!("{DOC}fn f(x: Option<u64>) -> u64 {{ x.unwrap_or(0) }}\n");
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = format!(
            "{DOC}pub fn f() {{}}\n#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ f(); Some(1).unwrap(); }}\n}}\n"
        );
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn lossy_casts_flagged_and_widening_ignored() {
        let src = format!("{DOC}fn f(n: usize) -> u32 {{ n as u32 }}\n");
        assert_eq!(rules_of(&src), vec!["lossy-cast"]);
        let ok = format!("{DOC}fn f(n: u32) -> usize {{ n as usize }}\n");
        assert!(lint_source("x.rs", &ok).is_empty());
        let alias = format!("{DOC}fn f(n: usize) -> VertexId {{ n as VertexId }}\n");
        assert_eq!(rules_of(&alias), vec!["lossy-cast"]);
    }

    #[test]
    fn use_as_rename_not_flagged() {
        let src = format!("{DOC}use std::io::Error as IoError;\nfn f(_: IoError) {{}}\n");
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn wildcard_arm_on_guarded_enum_flagged() {
        let src = format!(
            "{DOC}fn f(v: Variant) -> u32 {{ match v {{ Variant::EdgeInduced => 1, _ => 0 }} }}\n"
        );
        assert_eq!(rules_of(&src), vec!["wildcard-variant-arm"]);
    }

    #[test]
    fn wildcard_arm_on_other_enums_allowed() {
        let src =
            format!("{DOC}fn f(v: Option<u32>) -> u32 {{ match v {{ Some(x) => x, _ => 0 }} }}\n");
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn wildcard_subpattern_not_flagged() {
        let src = format!(
            "{DOC}fn f(v: Orient, w: u32) -> u32 {{ match (v, w) {{ (Orient::Out, _) => 1, (Orient::In, x) => x, (Orient::Und, _) => 2 }} }}\n"
        );
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = format!(
            "{DOC}fn f<'a>(x: &'a str) -> &'a str {{ let _ = r#\"panic!( .unwrap() \"#; let _ = 'x'; x }}\n"
        );
        assert!(lint_source("x.rs", &src).is_empty());
    }

    #[test]
    fn path_classification() {
        assert!(is_library_source("crates/graph/src/graph.rs"));
        assert!(is_library_source("src/lib.rs"));
        assert!(!is_library_source("crates/graph/tests/io.rs"));
        assert!(!is_library_source("src/bin/csce.rs"));
        assert!(!is_library_source("vendor/proptest/src/lib.rs"));
        assert!(!is_library_source("crates/bench/src/fixtures/x.rs"));
        assert!(!is_library_source("README.md"));
    }

    #[test]
    fn allowlist_roundtrip_and_ratchet() {
        let violations = vec![
            LintViolation { rule: "no-panic", path: "a.rs".into(), line: 3, msg: "x".into() },
            LintViolation { rule: "no-panic", path: "a.rs".into(), line: 9, msg: "y".into() },
            LintViolation { rule: "lossy-cast", path: "b.rs".into(), line: 1, msg: "z".into() },
        ];
        let list = Allowlist::from_violations(&violations);
        let parsed = Allowlist::parse(&list.to_text()).unwrap();
        assert_eq!(list, parsed);
        assert!(parsed.check(&violations).is_empty(), "exact coverage passes");
        // A new violation fails.
        let mut more = violations.clone();
        more.push(LintViolation {
            rule: "no-panic",
            path: "b.rs".into(),
            line: 2,
            msg: "w".into(),
        });
        assert_eq!(parsed.check(&more).len(), 1);
        // A removed violation fails too (stale ceiling).
        assert_eq!(parsed.check(&violations[1..]).len(), 1);
    }

    #[test]
    fn allowlist_rejects_garbage() {
        assert!(Allowlist::parse("not a line").is_err());
        assert!(Allowlist::parse("3 bogus-rule a.rs").is_err());
        assert!(Allowlist::parse("x no-panic a.rs").is_err());
        assert!(Allowlist::parse("# comment\n\n2 no-panic a.rs\n").is_ok());
    }
}
