//! Deep structural validation of [`csce_graph::Graph`].
//!
//! The graph model promises (module docs of `csce_graph::graph`): sorted
//! per-vertex adjacency, undirected edges visible from both endpoints,
//! degrees counting distinct neighbors, a label-frequency index agreeing
//! with the label array, no self loops, and `Σ` a function of the vertex
//! pair (no duplicate same-kind edges). Each promise is re-derived here
//! from the canonical edge list alone, so a desynchronized adjacency or
//! stale index shows up as a violation rather than a wrong match count.

use crate::{Validate, ValidationReport};
use csce_graph::graph::{Adj, Orient};
use csce_graph::{FxHashMap, Graph, Label, VertexId};

impl Validate for Graph {
    fn validate(&self) -> ValidationReport {
        let mut r =
            ValidationReport::new(format!("graph ({} vertices, {} edges)", self.n(), self.m()));
        check_edge_list(self, &mut r);
        check_adjacency(self, &mut r);
        check_degrees(self, &mut r);
        check_label_index(self, &mut r);
        r
    }
}

/// The canonical edge list: no self loops, undirected edges stored with
/// `src <= dst`, endpoints in range, and no duplicate same-kind edge on a
/// vertex pair.
fn check_edge_list(g: &Graph, r: &mut ValidationReport) {
    r.ran("graph.no-self-loop");
    r.ran("graph.edge-endpoints");
    r.ran("graph.undirected-canonical");
    r.ran("graph.edge-uniqueness");
    let n = g.n() as VertexId;
    // (min, max) -> bitmask: 1 fwd directed, 2 bwd directed, 4 undirected.
    let mut pair_kinds: FxHashMap<(VertexId, VertexId), u8> = FxHashMap::default();
    for (i, e) in g.edges().iter().enumerate() {
        if e.src == e.dst {
            r.violation("graph.no-self-loop", format!("edge {i} is a self loop on {}", e.src));
            continue;
        }
        if e.src >= n || e.dst >= n {
            r.violation(
                "graph.edge-endpoints",
                format!("edge {i} ({} -> {}) leaves the vertex range 0..{n}", e.src, e.dst),
            );
            continue;
        }
        if !e.directed && e.src > e.dst {
            r.violation(
                "graph.undirected-canonical",
                format!(
                    "undirected edge {i} stored as ({}, {}), expected src <= dst",
                    e.src, e.dst
                ),
            );
        }
        let key = (e.src.min(e.dst), e.src.max(e.dst));
        let kind = if !e.directed {
            4
        } else if e.src < e.dst {
            1
        } else {
            2
        };
        let entry = pair_kinds.entry(key).or_insert(0);
        if *entry & kind != 0 {
            r.violation(
                "graph.edge-uniqueness",
                format!("edge {i} duplicates an existing edge between {} and {}", e.src, e.dst),
            );
        }
        if (kind == 4 && *entry & 3 != 0) || (kind != 4 && *entry & 4 != 0) {
            r.violation(
                "graph.edge-uniqueness",
                format!(
                    "edge {i} mixes directed and undirected kinds between {} and {}",
                    e.src, e.dst
                ),
            );
        }
        *entry |= kind;
    }
}

/// Adjacency lists agree with the edge list exactly: every edge appears as
/// the right `Adj` entry at both endpoints, lists are sorted, and the two
/// views of each edge are mutual mirrors (symmetry under `Orient::flip`).
fn check_adjacency(g: &Graph, r: &mut ValidationReport) {
    r.ran("graph.adjacency-sorted");
    r.ran("graph.adjacency-symmetry");
    r.ran("graph.edge-adjacency-agreement");
    let n = g.n() as VertexId;
    for v in 0..n {
        let list = g.adj(v);
        if list.windows(2).any(|w| w[0] > w[1]) {
            r.violation("graph.adjacency-sorted", format!("adjacency of vertex {v} is not sorted"));
        }
        for a in list {
            if a.nbr >= n {
                r.violation(
                    "graph.adjacency-symmetry",
                    format!("adjacency of {v} references out-of-range vertex {}", a.nbr),
                );
                continue;
            }
            let mirror = Adj { nbr: v, orient: a.orient.flip(), elabel: a.elabel };
            if g.adj(a.nbr).binary_search(&mirror).is_err() {
                r.violation(
                    "graph.adjacency-symmetry",
                    format!(
                        "arc {v} -> {} ({:?}, label {}) has no mirror entry at {}",
                        a.nbr, a.orient, a.elabel, a.nbr
                    ),
                );
            }
        }
    }
    // Every edge contributes exactly two adjacency entries, and nothing else
    // does: count agreement plus per-edge membership.
    let total: usize = (0..n).map(|v| g.adj(v).len()).sum();
    if total != 2 * g.m() {
        r.violation(
            "graph.edge-adjacency-agreement",
            format!("adjacency holds {total} entries, expected 2|E| = {}", 2 * g.m()),
        );
    }
    for (i, e) in g.edges().iter().enumerate() {
        if e.src >= n || e.dst >= n {
            continue; // reported by check_edge_list
        }
        let (from_src, from_dst) =
            if e.directed { (Orient::Out, Orient::In) } else { (Orient::Und, Orient::Und) };
        let src_entry = Adj { nbr: e.dst, orient: from_src, elabel: e.label };
        let dst_entry = Adj { nbr: e.src, orient: from_dst, elabel: e.label };
        if g.adj(e.src).binary_search(&src_entry).is_err()
            || g.adj(e.dst).binary_search(&dst_entry).is_err()
        {
            r.violation(
                "graph.edge-adjacency-agreement",
                format!(
                    "edge {i} ({} -> {}) is missing from an endpoint's adjacency",
                    e.src, e.dst
                ),
            );
        }
    }
}

/// `degree(v)` counts distinct neighbor vertices (antiparallel arcs to the
/// same neighbor count once), recomputed from the adjacency.
fn check_degrees(g: &Graph, r: &mut ValidationReport) {
    r.ran("graph.degree");
    for v in 0..g.n() as VertexId {
        let mut distinct = 0u32;
        let mut prev = VertexId::MAX;
        for a in g.adj(v) {
            if a.nbr != prev {
                distinct += 1;
                prev = a.nbr;
            }
        }
        if distinct != g.degree(v) {
            r.violation(
                "graph.degree",
                format!(
                    "vertex {v}: stored degree {} but {} distinct neighbors",
                    g.degree(v),
                    distinct
                ),
            );
        }
    }
}

/// The label-frequency index agrees with the label array it summarizes.
fn check_label_index(g: &Graph, r: &mut ValidationReport) {
    r.ran("graph.label-index");
    let mut freq: FxHashMap<Label, u32> = FxHashMap::default();
    for &l in g.labels() {
        *freq.entry(l).or_insert(0) += 1;
    }
    if &freq != g.label_frequency() {
        r.violation(
            "graph.label-index",
            format!(
                "label frequency index has {} entries, recount has {}",
                g.label_frequency().len(),
                freq.len()
            ),
        );
    }
    for (&l, &count) in &freq {
        if g.label_count_of(l) != count {
            r.violation(
                "graph.label-index",
                format!(
                    "label {l}: indexed count {} but {} vertices carry it",
                    g.label_count_of(l),
                    count
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{GraphBuilder, NO_LABEL};

    #[test]
    fn valid_graphs_pass() {
        let mut b = GraphBuilder::new();
        for l in [0, 1, 2, 0, NO_LABEL] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(1, 0, 8).unwrap();
        b.add_undirected_edge(2, 4, NO_LABEL).unwrap();
        let g = b.build();
        let report = g.validate();
        assert!(report.is_ok(), "{:?}", report.details());
        assert!(report.checks_run() >= 8);
    }

    #[test]
    fn empty_graph_passes() {
        assert!(GraphBuilder::new().build().validate().is_ok());
    }
}
