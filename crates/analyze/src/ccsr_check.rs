//! Deep structural validation of [`csce_ccsr::Ccsr`] — the paper's `G_C`.
//!
//! Algorithm 1 and the §IV space analysis rest on structural promises the
//! production code never re-checks after construction: every cluster's
//! run-length-encoded row index starts at zero, strictly increases, covers
//! exactly `n + 1` offsets and closes over its neighbor array; cluster
//! keys agree with the vertex labels of every arc they index; directed
//! clusters carry an incoming CSR that is the exact transpose of the
//! outgoing one; undirected clusters store each edge from both endpoints.
//! This module re-derives all of it from the raw arrays, plus the
//! persist→load fixpoint that guards the binary format.

use crate::{Validate, ValidationReport};
use csce_ccsr::{persist, Ccsr, ClusterKey, CompressedCsr};
use csce_graph::{FxHashMap, Label, VertexId};

impl Validate for Ccsr {
    fn validate(&self) -> ValidationReport {
        let mut r = ValidationReport::new(format!(
            "ccsr ({} vertices, {} clusters)",
            self.n(),
            self.cluster_count()
        ));
        check_label_arrays(self, &mut r);
        for c in self.clusters() {
            check_cluster(self, c, &mut r);
        }
        check_negation_index(self, &mut r);
        check_persist_fixpoint(self, &mut r);
        r
    }
}

/// Validate a serialized `G_C` byte stream: decode errors are reported as
/// violations instead of bubbling up, then the decoded structure gets the
/// full deep check. This is what `csce validate ccsr` runs on a file.
pub fn validate_ccsr_bytes(bytes: &[u8], subject: impl Into<String>) -> ValidationReport {
    let mut r = ValidationReport::new(subject);
    r.ran("ccsr.decode");
    match persist::from_bytes(bytes) {
        Ok(ccsr) => r.merge(ccsr.validate()),
        Err(e) => r.violation("ccsr.decode", format!("persisted G_C rejected: {e}")),
    }
    r
}

/// Vertex-label array sized to `n` and the label-frequency index agreeing
/// with a recount.
fn check_label_arrays(gc: &Ccsr, r: &mut ValidationReport) {
    r.ran("ccsr.label-array");
    r.ran("ccsr.label-frequency");
    if gc.vertex_labels().len() != gc.n() {
        r.violation(
            "ccsr.label-array",
            format!("{} vertex labels for {} vertices", gc.vertex_labels().len(), gc.n()),
        );
    }
    let mut freq: FxHashMap<Label, u32> = FxHashMap::default();
    for &l in gc.vertex_labels() {
        *freq.entry(l).or_insert(0) += 1;
    }
    if &freq != gc.label_frequency() {
        r.violation(
            "ccsr.label-frequency",
            format!(
                "label frequency index has {} entries, recount has {}",
                gc.label_frequency().len(),
                freq.len()
            ),
        );
    }
}

fn check_cluster(gc: &Ccsr, c: &csce_ccsr::Cluster, r: &mut ValidationReport) {
    r.ran("ccsr.key-canonical");
    r.ran("ccsr.key-direction");
    let key = c.key;
    if !key.directed && key.src_label > key.dst_label {
        r.violation(
            "ccsr.key-canonical",
            format!("undirected cluster {key} has non-canonical label order"),
        );
    }
    if key.directed != c.inc.is_some() {
        r.violation(
            "ccsr.key-direction",
            format!(
                "cluster {key}: directed={} but incoming CSR is {}",
                key.directed,
                if c.inc.is_some() { "present" } else { "absent" }
            ),
        );
    }
    check_rle(gc, &key, "out", &c.out, r);
    if let Some(inc) = &c.inc {
        check_rle(gc, &key, "inc", inc, r);
    }
    check_arc_labels(gc, c, r);
    if key.directed {
        check_transpose(c, r);
    } else {
        check_undirected_symmetry(c, r);
    }
}

/// Algorithm 1's RLE invariants for one compressed row index, re-derived
/// from the raw runs: first offset zero, strictly increasing values,
/// non-zero repeat counts, exact `n + 1` coverage, closure over `I_C`,
/// in-range neighbors, sorted strictly-increasing rows, and the
/// decompress→recompress fixpoint (maximal runs).
fn check_rle(
    gc: &Ccsr,
    key: &ClusterKey,
    side: &str,
    csr: &CompressedCsr,
    r: &mut ValidationReport,
) {
    r.ran("ccsr.rle-monotone");
    r.ran("ccsr.rle-coverage");
    r.ran("ccsr.rle-closure");
    r.ran("ccsr.neighbor-range");
    r.ran("ccsr.rows-sorted");
    r.ran("ccsr.recompress-fixpoint");
    let runs = csr.runs();
    let who = format!("cluster {key} ({side})");
    if runs.is_empty() || runs[0].0 != 0 {
        r.violation("ccsr.rle-monotone", format!("{who}: row index does not start at offset 0"));
        return;
    }
    let mut prev = None::<u32>;
    let mut coverage = 0u64;
    for &(value, count) in runs {
        if count == 0 {
            r.violation("ccsr.rle-monotone", format!("{who}: zero-length run at offset {value}"));
        }
        if prev.is_some_and(|p| value <= p) {
            r.violation(
                "ccsr.rle-monotone",
                format!("{who}: run value {value} does not increase past {}", prev.unwrap_or(0)),
            );
        }
        prev = Some(value);
        coverage += count as u64;
    }
    if coverage != gc.n() as u64 + 1 {
        r.violation(
            "ccsr.rle-coverage",
            format!("{who}: runs cover {coverage} offsets, expected n + 1 = {}", gc.n() + 1),
        );
    }
    let closing = runs.last().map_or(0, |&(v, _)| v) as usize;
    if closing != csr.neighbors().len() {
        r.violation(
            "ccsr.rle-closure",
            format!(
                "{who}: final offset {closing} does not close over {} neighbors",
                csr.neighbors().len()
            ),
        );
        return;
    }
    let n = gc.n() as VertexId;
    for &w in csr.neighbors() {
        if w >= n {
            r.violation("ccsr.neighbor-range", format!("{who}: neighbor {w} outside 0..{n}"));
        }
    }
    let decoded = csr.decompress();
    for v in 0..decoded.row_count() as VertexId {
        if decoded.row(v).windows(2).any(|w| w[0] >= w[1]) {
            r.violation("ccsr.rows-sorted", format!("{who}: row {v} is not strictly increasing"));
        }
    }
    if &CompressedCsr::compress(&decoded) != csr {
        r.violation(
            "ccsr.recompress-fixpoint",
            format!("{who}: decompress→recompress changes the representation (non-maximal runs)"),
        );
    }
}

/// Cluster-key ↔ vertex-label agreement (§IV: a cluster key *is* the edge
/// isomorphism class): every indexed arc's endpoint labels must match the
/// key, per side for directed clusters and as an unordered pair for
/// undirected ones.
fn check_arc_labels(gc: &Ccsr, c: &csce_ccsr::Cluster, r: &mut ValidationReport) {
    r.ran("ccsr.key-label-agreement");
    if gc.vertex_labels().len() != gc.n() {
        return; // label array unusable; reported by check_label_arrays
    }
    let key = c.key;
    let d = c.decode();
    let n = gc.n() as VertexId;
    for v in 0..n {
        for &w in d.out_neighbors(v) {
            if w >= n {
                continue; // reported by check_rle
            }
            let (lv, lw) = (gc.vertex_label(v), gc.vertex_label(w));
            let ok = if key.directed {
                lv == key.src_label && lw == key.dst_label
            } else {
                (lv.min(lw), lv.max(lw)) == (key.src_label, key.dst_label)
            };
            if !ok {
                r.violation(
                    "ccsr.key-label-agreement",
                    format!(
                        "cluster {key}: arc {v} -> {w} carries labels ({lv}, {lw}) foreign to the key"
                    ),
                );
            }
        }
    }
    if key.directed {
        if let Some(inc) = &c.inc {
            let inc = inc.decompress();
            for v in 0..n {
                for &w in inc.row(v) {
                    if w >= n {
                        continue;
                    }
                    let (lv, lw) = (gc.vertex_label(v), gc.vertex_label(w));
                    if lv != key.dst_label || lw != key.src_label {
                        r.violation(
                            "ccsr.key-label-agreement",
                            format!(
                                "cluster {key}: incoming arc {v} <- {w} carries labels ({lw}, {lv}) foreign to the key"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// For directed clusters the incoming CSR must index exactly the reversed
/// arcs of the outgoing CSR.
fn check_transpose(c: &csce_ccsr::Cluster, r: &mut ValidationReport) {
    r.ran("ccsr.inc-transpose");
    let Some(inc) = &c.inc else { return }; // absence reported by key-direction
    let out = c.out.decompress();
    let inc = inc.decompress();
    let mut fwd: Vec<(VertexId, VertexId)> = Vec::with_capacity(out.arc_count());
    for v in 0..out.row_count() as VertexId {
        fwd.extend(out.row(v).iter().map(|&w| (v, w)));
    }
    let mut bwd: Vec<(VertexId, VertexId)> = Vec::with_capacity(inc.arc_count());
    for v in 0..inc.row_count() as VertexId {
        bwd.extend(inc.row(v).iter().map(|&w| (w, v)));
    }
    fwd.sort_unstable();
    bwd.sort_unstable();
    if fwd != bwd {
        r.violation(
            "ccsr.inc-transpose",
            format!(
                "cluster {}: incoming CSR is not the transpose of the outgoing CSR ({} vs {} arcs)",
                c.key,
                fwd.len(),
                bwd.len()
            ),
        );
    }
}

/// Undirected clusters store each edge from both endpoints, so the single
/// CSR must be symmetric (and hold an even number of arcs).
fn check_undirected_symmetry(c: &csce_ccsr::Cluster, r: &mut ValidationReport) {
    r.ran("ccsr.undirected-symmetry");
    let out = c.out.decompress();
    if !out.arc_count().is_multiple_of(2) {
        r.violation(
            "ccsr.undirected-symmetry",
            format!(
                "cluster {}: odd arc count {} in an undirected cluster",
                c.key,
                out.arc_count()
            ),
        );
    }
    for v in 0..out.row_count() as VertexId {
        for &w in out.row(v) {
            if (w as usize) < out.row_count() && !out.contains(w, v) {
                r.violation(
                    "ccsr.undirected-symmetry",
                    format!("cluster {}: arc {v} — {w} is missing its mirror arc", c.key),
                );
            }
        }
    }
}

/// The `(u_x, u_y)*`-clusters index (Algorithms 1–2): for every label pair
/// seen on a cluster key, `negation_keys` must return exactly the matching
/// keys, sorted.
fn check_negation_index(gc: &Ccsr, r: &mut ValidationReport) {
    r.ran("ccsr.negation-index");
    let mut expected: FxHashMap<(Label, Label), Vec<ClusterKey>> = FxHashMap::default();
    for c in gc.clusters() {
        expected.entry(c.key.label_pair()).or_default().push(c.key);
    }
    for (pair, mut keys) in expected {
        keys.sort_unstable();
        let got = gc.negation_keys(pair.0, pair.1);
        if got != keys.as_slice() {
            r.violation(
                "ccsr.negation-index",
                format!(
                    "label pair ({}, {}): index lists {} keys, clusters imply {}",
                    pair.0,
                    pair.1,
                    got.len(),
                    keys.len()
                ),
            );
        }
    }
}

/// Persist→load fixpoint: encoding, decoding, and re-encoding must
/// reproduce the byte stream exactly (the format is canonical — clusters
/// sorted by key — so equality is well-defined).
fn check_persist_fixpoint(gc: &Ccsr, r: &mut ValidationReport) {
    r.ran("ccsr.persist-fixpoint");
    let bytes = match persist::to_bytes(gc) {
        Ok(bytes) => bytes,
        Err(e) => {
            r.violation("ccsr.persist-fixpoint", format!("G_C does not encode: {e}"));
            return;
        }
    };
    match persist::from_bytes(&bytes) {
        Ok(back) => {
            if persist::to_bytes(&back).ok() != Some(bytes) {
                r.violation(
                    "ccsr.persist-fixpoint",
                    "re-encoding a decoded G_C changes the byte stream",
                );
            }
        }
        Err(e) => {
            r.violation("ccsr.persist-fixpoint", format!("own encoding fails to decode: {e}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_ccsr::build_ccsr;
    use csce_graph::{GraphBuilder, NO_LABEL};

    fn sample() -> Ccsr {
        let mut b = GraphBuilder::new();
        for l in [0, 1, 2, 0, 1, 2] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(3, 1, 7).unwrap();
        b.add_edge(1, 2, NO_LABEL).unwrap();
        b.add_undirected_edge(2, 4, NO_LABEL).unwrap();
        b.add_undirected_edge(2, 5, 3).unwrap();
        build_ccsr(&b.build()).unwrap()
    }

    #[test]
    fn built_ccsr_passes_all_checks() {
        let report = sample().validate();
        assert!(report.is_ok(), "{:?}", report.details());
        assert!(report.checks_run() >= 12);
    }

    #[test]
    fn empty_ccsr_passes() {
        let gc = build_ccsr(&GraphBuilder::new().build()).unwrap();
        assert!(gc.validate().is_ok());
    }

    #[test]
    fn valid_bytes_pass() {
        let bytes = persist::to_bytes(&sample()).unwrap();
        let report = validate_ccsr_bytes(&bytes, "bytes");
        assert!(report.is_ok(), "{:?}", report.details());
    }

    #[test]
    fn flipped_row_index_run_is_detected() {
        // ISSUE acceptance: a deliberately corrupted serialized G_C with a
        // flipped (non-monotone) row-index run must be flagged.
        let gc = sample();
        let good = persist::to_bytes(&gc).unwrap();
        let mut seen_rejection = false;
        // Walk the encoding and try swapping each adjacent pair of run
        // values we can find; at least one such flip must be caught.
        for i in (8..good.len().saturating_sub(8)).step_by(4) {
            let mut bad = good.clone();
            bad[i..i + 8].rotate_left(4);
            if bad == good {
                continue;
            }
            let report = validate_ccsr_bytes(&bad, "corrupt");
            if !report.is_ok() {
                seen_rejection = true;
                break;
            }
        }
        assert!(seen_rejection, "no corruption detected by any 4-byte swap");
    }

    #[test]
    fn label_swap_corruption_is_detected() {
        // Swapping two vertex labels desynchronizes cluster keys from arc
        // labels — from_bytes accepts the stream, the deep check must not.
        let gc = sample();
        let mut bytes = persist::to_bytes(&gc).unwrap();
        // Labels start after the 8-byte magic + 4-byte n; vertex 0 has
        // label 0, vertex 2 has label 2 — swap them.
        let base = 12;
        bytes.swap(base, base + 8);
        let report = validate_ccsr_bytes(&bytes, "label-swapped");
        assert!(!report.is_ok(), "label-swapped G_C passed: {:?}", report.checks());
    }
}
