//! Workspace call-graph construction over the shared tokenizer.
//!
//! A lightweight item parser walks each library source's token stream and
//! extracts every function (free, inherent, trait default), the calls it
//! makes, the *panic sites* and *narrow-cast sites* it contains, and
//! every struct field whose type carries shared state (`Arc`, `Atomic*`,
//! `Mutex`, `RwLock`). The result feeds the reachability pass in
//! [`crate::reach`] and the rules in [`crate::rules`].
//!
//! Resolution is **name-based and over-approximate** — no type inference:
//!
//! * `Type::method(…)` resolves only to a workspace `Type::method`.
//! * `self.method(…)` prefers a method on the enclosing impl's type and
//!   falls back to every workspace function with that simple name.
//! * `free(…)` and `recv.method(…)` resolve to every workspace function
//!   with that simple name; capitalized idents before `(` are treated as
//!   tuple-struct or enum constructors, not calls.
//! * Closure bodies are attributed to the enclosing function; nested `fn`
//!   items are parsed as their own functions; `macro_rules!` bodies are
//!   skipped entirely.
//!
//! Over-approximation errs toward *more* edges, so panic-reachability
//! certification can report false positives but not false negatives
//! within the parsed-call model (dynamic dispatch through `dyn` objects
//! is covered by the simple-name fallback).

use std::path::Path;

use crate::lint::{collect_sources, is_library_source, NARROW_TYPES};
use crate::tokens::{lex, scan_attribute, skip_item, strip_test_items, Tok, TokKind};

/// Reserved words that can precede `(` or `[` without being calls/indexing.
const KEYWORDS: [&str; 34] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "while",
];

/// Macros whose expansion can panic at runtime. `debug_assert*` is absent
/// deliberately: it compiles out of release builds, which is what the
/// certification targets.
const PANIC_MACROS: [&str; 7] =
    ["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Type markers that make a struct field shared mutable state.
const SHARED_MARKERS: [&str; 3] = ["Arc", "Mutex", "RwLock"];

/// Method names that collide with ubiquitous `std` APIs (iterators,
/// collections, atomics, formatting). An unqualified `recv.load(…)` is
/// overwhelmingly an `AtomicUsize::load`, not `Workspace::load`; letting
/// the simple-name fallback fire on these names connects the whole
/// workspace to itself and drowns real findings. Calls to same-named
/// workspace functions still resolve when written `Type::name(…)` or
/// `self.name(…)` — this list only suppresses the ambient fallback, and
/// it is a documented hole in the over-approximation (see DESIGN.md).
const AMBIENT_METHODS: [&str; 36] = [
    "chain",
    "clear",
    "clone",
    "cmp",
    "contains",
    "count",
    "drain",
    "enumerate",
    "extend",
    "find",
    "first",
    "flush",
    "fmt",
    "get",
    "insert",
    "is_empty",
    "iter",
    "join",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "position",
    "push",
    "read",
    "sort",
    "split",
    "store",
    "sum",
    "swap",
    "take",
    "write",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s) || matches!(s, "self" | "Self" | "where" | "yield" | "union")
}

/// What a potentially-panicking (or truncating) token sequence is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert*!`.
    PanicMacro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `expr[…]` slice/array indexing.
    Index,
    /// `/` or `%` with a non-literal (or zero-literal) divisor.
    Div,
    /// `as` cast into a narrow index type.
    NarrowCast,
}

impl SiteKind {
    /// Whether this site can abort the process (a narrow cast truncates
    /// silently instead).
    pub fn is_panic(self) -> bool {
        !matches!(self, SiteKind::NarrowCast)
    }

    pub fn label(self) -> &'static str {
        match self {
            SiteKind::PanicMacro => "panic-macro",
            SiteKind::Unwrap => "unwrap",
            SiteKind::Expect => "expect",
            SiteKind::Index => "index",
            SiteKind::Div => "div",
            SiteKind::NarrowCast => "narrow-cast",
        }
    }
}

/// One panic/cast site inside a function body.
#[derive(Clone, Debug)]
pub struct Site {
    pub kind: SiteKind,
    /// 1-based source line.
    pub line: u32,
    /// Short source excerpt, e.g. `` `panic!` `` or `` `as u32` ``.
    pub what: String,
}

/// How a call expression named its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// `Type::name(…)` — resolves only within that type's impls.
    Qualified { qual: String, name: String },
    /// `self.name(…)` — prefers the enclosing impl's method.
    SelfMethod { name: String },
    /// `name(…)` or `recv.name(…)` — resolves by simple name.
    Named { name: String },
}

#[derive(Clone, Debug)]
pub struct Call {
    pub target: CallTarget,
    pub line: u32,
}

/// One parsed function: identity, outgoing calls, and contained sites.
#[derive(Clone, Debug)]
pub struct Function {
    /// `Type::name` for inherent/trait methods, bare `name` otherwise.
    pub qual_name: String,
    pub simple_name: String,
    /// Enclosing impl/trait type, for `self.method` resolution.
    pub owner: Option<String>,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub calls: Vec<Call>,
    pub sites: Vec<Site>,
}

/// A struct field whose type carries shared mutable state.
#[derive(Clone, Debug)]
pub struct SharedField {
    pub struct_name: String,
    pub field: String,
    /// The field's type, space-joined tokens.
    pub type_text: String,
    pub file: String,
    pub line: u32,
}

/// Every function and shared-state field in the parsed sources.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    pub fns: Vec<Function>,
    pub shared_fields: Vec<SharedField>,
}

impl Workspace {
    /// Parse one source file into the workspace. `rel` labels locations.
    pub fn parse_file(&mut self, rel: &str, src: &str) {
        let lexed = lex(src);
        let toks = strip_test_items(lexed.toks);
        let mut p = Parser { toks: &toks, file: rel, ws: self };
        p.items(0, toks.len(), None);
    }

    /// Parse every library source under `root` (same file set as the lint
    /// pass), in sorted path order.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut ws = Workspace::default();
        for rel in collect_sources(root)? {
            let src = std::fs::read_to_string(root.join(&rel))?;
            ws.parse_file(&rel, &src);
        }
        Ok(ws)
    }

    /// Indices of every function whose `qual_name` matches, restricted to
    /// files under `prefix` when given.
    pub fn find(&self, qual: &str, prefix: Option<&str>) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.qual_name == qual && prefix.is_none_or(|p| f.file.starts_with(p)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Resolve every call to workspace function indices, producing the
    /// call-graph adjacency (deduplicated, per function).
    pub fn resolve(&self) -> Vec<Vec<usize>> {
        use std::collections::HashMap;
        let mut by_simple: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_simple.entry(&f.simple_name).or_default().push(i);
            by_qual.entry(&f.qual_name).or_default().push(i);
        }
        let empty: Vec<usize> = Vec::new();
        let mut adj = Vec::with_capacity(self.fns.len());
        for f in &self.fns {
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                let targets: &[usize] = match &call.target {
                    CallTarget::Qualified { qual, name } => {
                        let qual = if qual == "Self" {
                            f.owner.clone().unwrap_or_else(|| qual.clone())
                        } else {
                            qual.clone()
                        };
                        let key = format!("{qual}::{name}");
                        by_qual.get(key.as_str()).unwrap_or(&empty)
                    }
                    CallTarget::SelfMethod { name } => {
                        let owned = f
                            .owner
                            .as_ref()
                            .map(|o| format!("{o}::{name}"))
                            .and_then(|k| by_qual.get(k.as_str()));
                        match owned {
                            Some(v) => v,
                            None if AMBIENT_METHODS.contains(&name.as_str()) => &empty,
                            None => by_simple.get(name.as_str()).unwrap_or(&empty),
                        }
                    }
                    CallTarget::Named { name } => {
                        if AMBIENT_METHODS.contains(&name.as_str()) {
                            &empty
                        } else {
                            by_simple.get(name.as_str()).unwrap_or(&empty)
                        }
                    }
                };
                out.extend_from_slice(targets);
            }
            out.sort_unstable();
            out.dedup();
            adj.push(out);
        }
        adj
    }

    /// Total resolved call edges.
    pub fn edge_count(&self, adj: &[Vec<usize>]) -> usize {
        adj.iter().map(Vec::len).sum()
    }
}

/// Re-export of the lint pass's path filter, so callers assembling custom
/// file sets apply the same test-code exclusion.
pub fn is_analyzable(rel: &str) -> bool {
    is_library_source(rel)
}

struct Parser<'w, 't> {
    toks: &'t [Tok<'t>],
    file: &'t str,
    ws: &'w mut Workspace,
}

impl Parser<'_, '_> {
    /// Parse items in `[i, end)` with `owner` as the enclosing impl/trait
    /// type (for method qualification).
    fn items(&mut self, mut i: usize, end: usize, owner: Option<&str>) {
        while i < end {
            let t = &self.toks[i];
            if t.text == "#" && i + 1 < end && self.toks[i + 1].text == "[" {
                let (attr_end, is_cfg_test) = scan_attribute(self.toks, i);
                if is_cfg_test || self.is_test_attr(i) {
                    i = skip_item(self.toks, attr_end).min(end);
                } else {
                    i = attr_end.min(end);
                }
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match t.text {
                "fn" => i = self.function(i, end, owner),
                "mod" => {
                    // `mod name { … }` recurses without an owner;
                    // `mod name;` is just skipped.
                    match self.toks.get(i + 2).map(|t| t.text) {
                        Some("{") => {
                            let close = matching_brace(self.toks, i + 2, end);
                            self.items(i + 3, close, None);
                            i = close + 1;
                        }
                        _ => i += 2,
                    }
                }
                "impl" => i = self.impl_or_trait(i, end, false),
                "trait" => i = self.impl_or_trait(i, end, true),
                "struct" => i = self.structure(i, end),
                "macro_rules" => i = skip_item(self.toks, i).min(end),
                "enum" | "union" | "use" | "extern" | "static" => {
                    i = skip_item(self.toks, i).min(end);
                }
                "type" => i = skip_item(self.toks, i).min(end),
                "const" => {
                    // `const fn` falls through to the `fn` arm next turn;
                    // `const NAME: … = …;` is skipped whole.
                    if self.toks.get(i + 1).map(|t| t.text) == Some("fn") {
                        i += 1;
                    } else {
                        i = skip_item(self.toks, i).min(end);
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Whether the attribute starting at `#` at `i` is exactly `#[test]`.
    fn is_test_attr(&self, i: usize) -> bool {
        self.toks.get(i + 2).map(|t| t.text) == Some("test")
            && self.toks.get(i + 3).map(|t| t.text) == Some("]")
    }

    /// Parse an `impl`/`trait` item header, extract the self type, and
    /// recurse into the body with it as owner.
    fn impl_or_trait(&mut self, i: usize, end: usize, is_trait: bool) -> usize {
        // Find the body `{` at bracket/angle depth zero.
        let mut j = i + 1;
        let (mut paren, mut angle) = (0usize, 0usize);
        let mut body = None;
        while j < end {
            let txt = self.toks[j].text;
            match txt {
                "(" | "[" => paren += 1,
                ")" | "]" => paren = paren.saturating_sub(1),
                "<" => angle += 1,
                // `->` is a return arrow, not a generic close.
                ">" if j == 0 || self.toks[j - 1].text != "-" => {
                    angle = angle.saturating_sub(1);
                }
                "{" if paren == 0 && angle == 0 => {
                    body = Some(j);
                    break;
                }
                ";" if paren == 0 && angle == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        let Some(body) = body else { return end };
        let owner = if is_trait {
            self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.to_string())
        } else {
            impl_self_type(&self.toks[i + 1..body])
        };
        let close = matching_brace(self.toks, body, end);
        self.items(body + 1, close, owner.as_deref());
        close + 1
    }

    /// Parse `struct Name { fields… }`, recording shared-state fields.
    fn structure(&mut self, i: usize, end: usize) -> usize {
        let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return i + 1;
        };
        let name = name.text.to_string();
        // Find `{` (record fields), `;` (unit), or `(` (tuple — skip).
        let mut j = i + 2;
        let (mut paren, mut angle) = (0usize, 0usize);
        while j < end {
            match self.toks[j].text {
                "(" | "[" => paren += 1,
                ")" | "]" => paren = paren.saturating_sub(1),
                "<" => angle += 1,
                ">" if self.toks[j - 1].text != "-" => angle = angle.saturating_sub(1),
                "{" if paren == 0 && angle == 0 => {
                    let close = matching_brace(self.toks, j, end);
                    self.fields(j + 1, close, &name);
                    return close + 1;
                }
                ";" if paren == 0 && angle == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Scan named struct fields in `[i, end)` for shared-state types.
    fn fields(&mut self, mut i: usize, end: usize, struct_name: &str) {
        while i < end {
            // Attributes and visibility before the field name.
            if self.toks[i].text == "#" && i + 1 < end && self.toks[i + 1].text == "[" {
                i = scan_attribute(self.toks, i).0.min(end);
                continue;
            }
            if self.toks[i].text == "pub" {
                i += 1;
                if i < end && self.toks[i].text == "(" {
                    while i < end && self.toks[i].text != ")" {
                        i += 1;
                    }
                    i += 1;
                }
                continue;
            }
            if self.toks[i].kind != TokKind::Ident
                || self.toks.get(i + 1).map(|t| t.text) != Some(":")
            {
                i += 1;
                continue;
            }
            let field = self.toks[i].text.to_string();
            let line = self.toks[i].line;
            // Type tokens run to the `,` at depth zero (or the end).
            let mut j = i + 2;
            let (mut depth, mut angle) = (0usize, 0usize);
            let mut ty = Vec::new();
            while j < end {
                let txt = self.toks[j].text;
                match txt {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "<" => angle += 1,
                    ">" if self.toks[j - 1].text != "-" => angle = angle.saturating_sub(1),
                    "," if depth == 0 && angle == 0 => break,
                    _ => {}
                }
                ty.push(txt);
                j += 1;
            }
            let shared = ty.iter().any(|t| SHARED_MARKERS.contains(t) || t.starts_with("Atomic"));
            if shared {
                self.ws.shared_fields.push(SharedField {
                    struct_name: struct_name.to_string(),
                    field,
                    type_text: ty.join(" "),
                    file: self.file.to_string(),
                    line,
                });
            }
            i = j + 1;
        }
    }

    /// Parse one `fn` item starting at the `fn` keyword; returns the index
    /// after the item.
    fn function(&mut self, i: usize, end: usize, owner: Option<&str>) -> usize {
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            // `fn(…)` pointer type or malformed — not an item.
            return i + 1;
        };
        let simple = name_tok.text.to_string();
        // Scan the signature for the body `{` or a terminating `;`.
        let mut j = i + 2;
        let (mut paren, mut angle) = (0usize, 0usize);
        let mut body = None;
        while j < end {
            match self.toks[j].text {
                "(" | "[" => paren += 1,
                ")" | "]" => paren = paren.saturating_sub(1),
                "<" => angle += 1,
                ">" if self.toks[j - 1].text != "-" => angle = angle.saturating_sub(1),
                "{" if paren == 0 && angle == 0 => {
                    body = Some(j);
                    break;
                }
                ";" if paren == 0 && angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let qual_name = match owner {
            Some(o) => format!("{o}::{simple}"),
            None => simple.clone(),
        };
        let mut f = Function {
            qual_name,
            simple_name: simple,
            owner: owner.map(str::to_string),
            file: self.file.to_string(),
            line: self.toks[i].line,
            calls: Vec::new(),
            sites: Vec::new(),
        };
        let after = match body {
            Some(b) => {
                let close = matching_brace(self.toks, b, end);
                self.body(b + 1, close, &mut f);
                close + 1
            }
            None => (j + 1).min(end), // trait method signature without body
        };
        self.ws.fns.push(f);
        after
    }

    /// Scan a function body in `[i, end)` for calls and sites. Nested `fn`
    /// items become their own functions; closures stay attributed here.
    fn body(&mut self, mut i: usize, end: usize, f: &mut Function) {
        while i < end {
            let t = &self.toks[i];
            // Inner attributes / attributes on statements.
            if t.text == "#" && i + 1 < end && self.toks[i + 1].text == "[" {
                i = scan_attribute(self.toks, i).0.min(end);
                continue;
            }
            if t.kind == TokKind::Ident {
                if t.text == "fn" {
                    if self.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
                        i = self.function(i, end, None);
                        continue;
                    }
                    i += 1; // `fn(…)` pointer type
                    continue;
                }
                let next = self.toks.get(i + 1).map(|t| t.text);
                // Panicking macros.
                if next == Some("!") && PANIC_MACROS.contains(&t.text) {
                    f.sites.push(Site {
                        kind: SiteKind::PanicMacro,
                        line: t.line,
                        what: format!("`{}!`", t.text),
                    });
                    i += 2;
                    continue;
                }
                // `.unwrap()` / `.expect(…)`.
                if (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && self.toks[i - 1].text == "."
                    && next == Some("(")
                {
                    let kind = if t.text == "unwrap" { SiteKind::Unwrap } else { SiteKind::Expect };
                    f.sites.push(Site { kind, line: t.line, what: format!("`.{}(…)`", t.text) });
                    i += 2;
                    continue;
                }
                // Narrow `as` casts.
                if t.text == "as" {
                    if let Some(ty) = self.toks.get(i + 1) {
                        if ty.kind == TokKind::Ident && NARROW_TYPES.contains(&ty.text) {
                            f.sites.push(Site {
                                kind: SiteKind::NarrowCast,
                                line: t.line,
                                what: format!("`as {}`", ty.text),
                            });
                        }
                    }
                    i += 2;
                    continue;
                }
                // Call expressions: `name(` with a lowercase-initial name.
                if next == Some("(") && !is_keyword(t.text) {
                    if let Some(target) = self.call_target(i) {
                        f.calls.push(Call { target, line: t.line });
                    }
                    i += 1;
                    continue;
                }
            }
            // `expr[…]` indexing: `[` after a value-producing token.
            if t.text == "[" && i > 0 {
                let prev = &self.toks[i - 1];
                let value_prev = (prev.kind == TokKind::Ident && !is_keyword(prev.text))
                    || prev.text == "]"
                    || prev.text == ")";
                if value_prev {
                    f.sites.push(Site {
                        kind: SiteKind::Index,
                        line: t.line,
                        what: format!("`{}[…]`", self.toks[i - 1].text),
                    });
                }
            }
            // Integer division/remainder; a nonzero literal divisor cannot
            // panic (only MIN/-1 overflow, which the lint ignores as the
            // workspace indexes with unsigned types).
            if (t.text == "/" || t.text == "%") && i > 0 {
                let safe = self
                    .toks
                    .get(i + 1)
                    .is_some_and(|d| d.kind == TokKind::Literal && nonzero_int(d.text));
                if !safe {
                    f.sites.push(Site {
                        kind: SiteKind::Div,
                        line: t.line,
                        what: format!("`{}` non-literal divisor", t.text),
                    });
                }
            }
            i += 1;
        }
    }

    /// Classify the call at ident `i` (known to be followed by `(`).
    /// Returns `None` for constructors (capitalized names).
    fn call_target(&self, i: usize) -> Option<CallTarget> {
        let name = self.toks[i].text;
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return None; // tuple struct / enum variant constructor
        }
        let prev = i.checked_sub(1).map(|p| self.toks[p].text);
        let prev2 = i.checked_sub(2).map(|p| &self.toks[p]);
        if prev == Some(":") && i >= 2 && self.toks[i - 2].text == ":" {
            // `…::name(` — qualified when the segment before `::` is a
            // capitalized ident (a type); module paths and turbofish fall
            // back to simple-name resolution.
            let seg = i.checked_sub(3).map(|p| &self.toks[p]);
            if let Some(seg) = seg {
                if seg.kind == TokKind::Ident
                    && seg.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    return Some(CallTarget::Qualified {
                        qual: seg.text.to_string(),
                        name: name.to_string(),
                    });
                }
            }
            return Some(CallTarget::Named { name: name.to_string() });
        }
        if prev == Some(".") {
            if prev2.is_some_and(|t| t.text == "self") && (i < 3 || self.toks[i - 3].text != ".") {
                return Some(CallTarget::SelfMethod { name: name.to_string() });
            }
            return Some(CallTarget::Named { name: name.to_string() });
        }
        Some(CallTarget::Named { name: name.to_string() })
    }
}

/// Index of the `}` matching the `{` at `open` (or `end` if unbalanced).
fn matching_brace(toks: &[Tok<'_>], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match toks[i].text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Extract the self type from an impl header's tokens (between `impl` and
/// the body `{`): the last path segment of the type after `for` when
/// present, of the whole header otherwise, at angle depth zero.
fn impl_self_type(header: &[Tok<'_>]) -> Option<String> {
    let mut angle = 0usize;
    let mut for_at = None;
    for (k, t) in header.iter().enumerate() {
        match t.text {
            "<" => angle += 1,
            ">" if k == 0 || header[k - 1].text != "-" => angle = angle.saturating_sub(1),
            "for" if angle == 0 => for_at = Some(k),
            _ => {}
        }
    }
    let slice = match for_at {
        Some(k) => &header[k + 1..],
        None => header,
    };
    let mut angle = 0usize;
    let mut last = None;
    for (k, t) in slice.iter().enumerate() {
        match t.text {
            "<" => angle += 1,
            ">" if k == 0 || slice[k - 1].text != "-" => angle = angle.saturating_sub(1),
            "where" if angle == 0 => break,
            _ => {
                if angle == 0 && t.kind == TokKind::Ident && !is_keyword(t.text) {
                    last = Some(t.text.to_string());
                }
            }
        }
    }
    last
}

/// Whether a numeric literal is a nonzero integer (so division by it
/// cannot panic).
fn nonzero_int(text: &str) -> bool {
    let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
    !digits.is_empty() && digits.chars().any(|c| c != '0') && !text.contains('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        ws.parse_file("x.rs", src);
        ws
    }

    fn fn_named<'a>(ws: &'a Workspace, qual: &str) -> &'a Function {
        ws.fns
            .iter()
            .find(|f| f.qual_name == qual)
            .unwrap_or_else(|| panic!("no fn {qual} in {:?}", quals(ws)))
    }

    fn quals(ws: &Workspace) -> Vec<&str> {
        ws.fns.iter().map(|f| f.qual_name.as_str()).collect()
    }

    #[test]
    fn free_fn_and_calls() {
        let ws = parse("//! d\nfn a() { b(); c(1) + 2; }\nfn b() {}\nfn c(x: u64) -> u64 { x }\n");
        assert_eq!(quals(&ws), vec!["a", "b", "c"]);
        let a = fn_named(&ws, "a");
        let names: Vec<_> = a
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Named { name } => name.as_str(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn impl_methods_are_qualified_and_self_calls_resolve() {
        let src = "//! d\nstruct S;\nimpl S {\n  fn outer(&self) { self.inner(); }\n  fn inner(&self) {}\n}\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["S::outer", "S::inner"]);
        let adj = ws.resolve();
        let outer = ws.find("S::outer", None)[0];
        let inner = ws.find("S::inner", None)[0];
        assert_eq!(adj[outer], vec![inner]);
    }

    #[test]
    fn trait_impl_owner_is_the_self_type() {
        let src = "//! d\nimpl<'a> fmt::Display for Foo<'a> {\n  fn fmt(&self) {}\n}\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["Foo::fmt"]);
    }

    #[test]
    fn trait_default_methods_qualify_under_the_trait() {
        let src = "//! d\ntrait Sink {\n  fn push(&mut self);\n  fn push_all(&mut self) { self.push(); }\n}\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["Sink::push", "Sink::push_all"]);
        let adj = ws.resolve();
        let all = ws.find("Sink::push_all", None)[0];
        let one = ws.find("Sink::push", None)[0];
        assert_eq!(adj[all], vec![one]);
    }

    #[test]
    fn qualified_calls_do_not_leak_across_types() {
        let src = "//! d\nstruct A;\nstruct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn f() { A::go(); }\n";
        let ws = parse(src);
        let adj = ws.resolve();
        let f = ws.find("f", None)[0];
        assert_eq!(adj[f], ws.find("A::go", None));
    }

    #[test]
    fn raw_string_containing_fn_is_not_an_item() {
        let src = "//! d\nfn real() { let _ = r#\"fn fake() { panic!(\"x\") }\"#; }\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["real"]);
        assert!(fn_named(&ws, "real").sites.is_empty());
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src =
            "//! d\nmacro_rules! m {\n  () => { fn generated() { panic!() } };\n}\nfn real() {}\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["real"]);
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn() {
        let src = "//! d\nfn outer(v: Vec<u64>) -> u64 { v.iter().map(|x| x / zero()).sum() }\nfn zero() -> u64 { 0 }\n";
        let ws = parse(src);
        let outer = fn_named(&ws, "outer");
        assert!(outer.sites.iter().any(|s| s.kind == SiteKind::Div), "{:?}", outer.sites);
        assert!(outer.calls.iter().any(|c| c.target == CallTarget::Named { name: "zero".into() }));
    }

    #[test]
    fn nested_fn_is_its_own_function() {
        let src = "//! d\nfn outer() { fn helper() { panic!() } helper(); }\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["helper", "outer"]);
        assert!(fn_named(&ws, "outer").sites.is_empty());
        assert_eq!(fn_named(&ws, "helper").sites.len(), 1);
    }

    #[test]
    fn test_items_are_excluded() {
        let src = "//! d\nfn real() {}\n#[cfg(test)]\nmod tests { fn t() { panic!() } }\n#[test]\nfn unit() { panic!() }\n";
        let ws = parse(src);
        assert_eq!(quals(&ws), vec!["real"]);
    }

    #[test]
    fn panic_sites_are_classified() {
        let src = "//! d\nfn f(v: &[u64], i: usize, d: u64) -> u64 {\n  let x = v[i];\n  let y = x / d;\n  let z = x / 2;\n  assert!(y > 0);\n  Some(z).unwrap()\n}\n";
        let ws = parse(src);
        let kinds: Vec<_> = fn_named(&ws, "f").sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SiteKind::Index, SiteKind::Div, SiteKind::PanicMacro, SiteKind::Unwrap]
        );
    }

    #[test]
    fn debug_assert_and_literal_divisors_are_not_sites() {
        let src = "//! d\nfn f(x: u64) -> u64 { debug_assert!(x > 0); x / 4096 + x % 2 }\n";
        let ws = parse(src);
        assert!(fn_named(&ws, "f").sites.is_empty(), "{:?}", fn_named(&ws, "f").sites);
    }

    #[test]
    fn attribute_and_array_type_brackets_are_not_indexing() {
        let src = "//! d\nfn f() -> [u64; 2] { #[allow(dead_code)] let x: [u64; 2] = [1, 2]; x }\n";
        let ws = parse(src);
        assert!(fn_named(&ws, "f").sites.is_empty(), "{:?}", fn_named(&ws, "f").sites);
    }

    #[test]
    fn narrow_cast_sites_recorded() {
        let src = "//! d\nfn f(n: usize) -> u32 { n as u32 }\n";
        let ws = parse(src);
        let sites = &fn_named(&ws, "f").sites;
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, SiteKind::NarrowCast);
        assert!(!sites[0].kind.is_panic());
    }

    #[test]
    fn constructors_are_not_calls() {
        let src = "//! d\nfn f() { let _ = Some(1); let _ = Variant::EdgeInduced; }\n";
        let ws = parse(src);
        assert!(fn_named(&ws, "f").calls.is_empty());
    }

    #[test]
    fn shared_fields_detected() {
        let src = "//! d\nuse std::sync::{Arc, Mutex};\npub struct S {\n  pub cursor: AtomicUsize,\n  stop: Arc<AtomicBool>,\n  data: Vec<u64>,\n  guard: Mutex<u64>,\n}\n";
        let ws = parse(src);
        let names: Vec<_> =
            ws.shared_fields.iter().map(|f| format!("{}.{}", f.struct_name, f.field)).collect();
        assert_eq!(names, vec!["S.cursor", "S.stop", "S.guard"]);
    }
}
