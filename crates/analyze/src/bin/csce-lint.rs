//! Workspace lint driver: scans library sources, applies the `csce-lint`
//! rules, and ratchets against the checked-in allowlist. With `--static`
//! it instead runs the call-graph analyzer (panic-reachability, hot-path
//! casts, shared-state manifest) against the function-granular baseline.
//!
//! ```text
//! csce-lint [--root DIR] [--allowlist FILE] [--update-allowlist]
//! csce-lint --static [--root DIR] [--baseline FILE] [--update-baseline]
//!           [--sarif FILE]
//! ```
//!
//! Exit status 0 when every file is at or under its recorded ceiling and
//! no ceiling is stale; 1 on lint failure; 2 on usage or I/O errors.

use csce_analyze::lint::{collect_sources, lint_source, Allowlist, LintViolation, RULES};
use csce_analyze::rules::{run_static, to_sarif, StaticBaseline, BASELINE_PATH, STATIC_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    allowlist: PathBuf,
    update: bool,
    static_mode: bool,
    baseline: PathBuf,
    update_baseline: bool,
    sarif: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut update = false;
    let mut static_mode = false;
    let mut baseline: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut sarif = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().ok_or("--root needs a directory")?),
            "--allowlist" => {
                allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--update-allowlist" => update = true,
            "--static" => static_mode = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--update-baseline" => update_baseline = true,
            "--sarif" => sarif = Some(PathBuf::from(it.next().ok_or("--sarif needs a file")?)),
            "--help" | "-h" => {
                return Err("usage: csce-lint [--root DIR] [--allowlist FILE] \
                            [--update-allowlist] [--static [--baseline FILE] \
                            [--update-baseline] [--sarif FILE]]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let allowlist = allowlist.unwrap_or_else(|| root.join("scripts/lint-allowlist.txt"));
    let baseline = baseline.unwrap_or_else(|| root.join(BASELINE_PATH));
    Ok(Args { root, allowlist, update, static_mode, baseline, update_baseline, sarif })
}

fn run(args: &Args) -> Result<bool, String> {
    let sources = collect_sources(&args.root)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;
    if sources.is_empty() {
        return Err(format!("no library sources found under {}", args.root.display()));
    }
    let mut violations: Vec<LintViolation> = Vec::new();
    for rel in &sources {
        let full = args.root.join(rel);
        let src = std::fs::read_to_string(&full)
            .map_err(|e| format!("reading {}: {e}", full.display()))?;
        violations.extend(lint_source(rel, &src));
    }
    let mut per_rule = [0usize; RULES.len()];
    for v in &violations {
        if let Some(k) = RULES.iter().position(|&r| r == v.rule) {
            per_rule[k] += 1;
        }
    }
    let summary: Vec<String> =
        RULES.iter().zip(per_rule).map(|(r, c)| format!("{r}: {c}")).collect();
    eprintln!(
        "csce-lint: {} files, {} hits ({})",
        sources.len(),
        violations.len(),
        summary.join(", ")
    );

    if args.update {
        let text = Allowlist::from_violations(&violations).to_text();
        std::fs::write(&args.allowlist, text)
            .map_err(|e| format!("writing {}: {e}", args.allowlist.display()))?;
        eprintln!("csce-lint: wrote {}", args.allowlist.display());
        return Ok(true);
    }

    let allowlist = match std::fs::read_to_string(&args.allowlist) {
        Ok(text) => {
            Allowlist::parse(&text).map_err(|e| format!("{}: {e}", args.allowlist.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("reading {}: {e}", args.allowlist.display())),
    };
    let failures = allowlist.check(&violations);
    for f in &failures {
        eprintln!("csce-lint: FAIL {f}");
    }
    if failures.is_empty() {
        eprintln!("csce-lint: OK (debt ceiling respected)");
    }
    Ok(failures.is_empty())
}

fn run_static_mode(args: &Args) -> Result<bool, String> {
    let report = run_static(&args.root)
        .map_err(|e| format!("static analysis under {}: {e}", args.root.display()))?;
    let mut per_rule = [0usize; STATIC_RULES.len()];
    for f in &report.findings {
        if let Some(k) = STATIC_RULES.iter().position(|&r| r == f.rule) {
            per_rule[k] += 1;
        }
    }
    let summary: Vec<String> =
        STATIC_RULES.iter().zip(per_rule).map(|(r, c)| format!("{r}: {c}")).collect();
    eprintln!(
        "csce-static: {} fns, {} call edges, {} hot fns ({} entries), {} findings ({})",
        report.functions,
        report.edges,
        report.hot_fns,
        report.entries_found,
        report.findings.len(),
        summary.join(", ")
    );

    if let Some(path) = &args.sarif {
        std::fs::write(path, to_sarif(&report).to_pretty())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("csce-static: wrote {}", path.display());
    }

    if args.update_baseline {
        let text = StaticBaseline::from_findings(&report.findings).to_text();
        std::fs::write(&args.baseline, text)
            .map_err(|e| format!("writing {}: {e}", args.baseline.display()))?;
        eprintln!("csce-static: wrote {}", args.baseline.display());
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => {
            StaticBaseline::parse(&text).map_err(|e| format!("{}: {e}", args.baseline.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => StaticBaseline::default(),
        Err(e) => return Err(format!("reading {}: {e}", args.baseline.display())),
    };
    let failures = baseline.check(&report.findings);
    for f in &failures {
        eprintln!("csce-static: FAIL {f}");
    }
    if failures.is_empty() {
        eprintln!("csce-static: OK (certified entry points reach 0 unallowlisted panic sites)");
    }
    Ok(failures.is_empty())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("csce-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = if args.static_mode { run_static_mode(&args) } else { run(&args) };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("csce-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
