//! Transitive reachability over the workspace call graph.
//!
//! Breadth-first search from a set of *certified entry points* (function
//! qual-names pinned to a file prefix, so a `count` in a baseline crate
//! cannot shadow `Executor::count`). The BFS keeps parent pointers, so
//! every reachable function can explain *how* the hot path reaches it —
//! the call chain is printed in findings and is the difference between an
//! actionable report and a wall of names.

use crate::callgraph::Workspace;

/// One certified entry point: a function qual-name plus the file prefix
/// its definition must live under.
#[derive(Clone, Copy, Debug)]
pub struct EntryPoint {
    pub qual: &'static str,
    pub file_prefix: &'static str,
}

/// Result of a reachability pass.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Per-function: reachable from any entry point?
    pub reachable: Vec<bool>,
    /// BFS tree parent (caller) for each reachable non-entry function.
    parent: Vec<Option<usize>>,
    /// Function indices that matched the entry-point list.
    pub entries: Vec<usize>,
    /// Entry quals that matched no workspace function — drift between the
    /// certified list and the code, itself a reportable finding.
    pub missing: Vec<String>,
}

/// BFS from `entries` over the resolved call graph `adj`.
pub fn reach(ws: &Workspace, adj: &[Vec<usize>], entries: &[EntryPoint]) -> Reachability {
    let mut r = Reachability {
        reachable: vec![false; ws.fns.len()],
        parent: vec![None; ws.fns.len()],
        entries: Vec::new(),
        missing: Vec::new(),
    };
    let mut queue = std::collections::VecDeque::new();
    for e in entries {
        let found = ws.find(e.qual, Some(e.file_prefix));
        if found.is_empty() {
            r.missing.push(e.qual.to_string());
        }
        for idx in found {
            if !r.reachable[idx] {
                r.reachable[idx] = true;
                r.entries.push(idx);
                queue.push_back(idx);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !r.reachable[v] {
                r.reachable[v] = true;
                r.parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    r
}

impl Reachability {
    /// Indices of all reachable functions, ascending.
    pub fn reachable_fns(&self) -> impl Iterator<Item = usize> + '_ {
        self.reachable.iter().enumerate().filter(|(_, &r)| r).map(|(i, _)| i)
    }

    /// Number of reachable functions.
    pub fn count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }

    /// The BFS call chain from the nearest entry point to `idx`, rendered
    /// as `entry > … > callee` (shortest in hops, capped for readability).
    pub fn chain(&self, ws: &Workspace, idx: usize) -> String {
        const MAX_HOPS: usize = 12;
        let mut names = vec![ws.fns[idx].qual_name.clone()];
        let mut cur = idx;
        while let Some(p) = self.parent[cur] {
            names.push(ws.fns[p].qual_name.clone());
            cur = p;
            if names.len() > MAX_HOPS {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" > ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        let mut w = Workspace::default();
        w.parse_file("crates/x/src/lib.rs", src);
        w
    }

    #[test]
    fn transitive_closure_and_chain() {
        let w = ws(
            "//! d\nfn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        );
        let adj = w.resolve();
        let r = reach(&w, &adj, &[EntryPoint { qual: "entry", file_prefix: "crates/x/" }]);
        assert_eq!(r.count(), 3);
        let leaf = w.find("leaf", None)[0];
        assert!(r.reachable[leaf]);
        assert_eq!(r.chain(&w, leaf), "entry > mid > leaf");
        let island = w.find("island", None)[0];
        assert!(!r.reachable[island]);
    }

    #[test]
    fn file_prefix_pins_the_entry() {
        let w = ws("//! d\nfn entry() {}\n");
        let adj = w.resolve();
        let r = reach(&w, &adj, &[EntryPoint { qual: "entry", file_prefix: "crates/other/" }]);
        assert_eq!(r.count(), 0);
        assert_eq!(r.missing, vec!["entry"]);
    }

    #[test]
    fn cycles_terminate() {
        let w = ws("//! d\nfn a() { b(); }\nfn b() { a(); }\n");
        let adj = w.resolve();
        let r = reach(&w, &adj, &[EntryPoint { qual: "a", file_prefix: "" }]);
        assert_eq!(r.count(), 2);
    }
}
