//! # csce-analyze
//!
//! Structural invariant checking and static source analysis for the CSCE
//! workspace — the validation layer the paper's correctness arguments
//! assume but the production code never re-checks.
//!
//! Three parts:
//!
//! * **Runtime structural analysis** — the [`Validate`] trait plus deep,
//!   from-scratch checkers for every core structure: [`csce_graph::Graph`]
//!   (adjacency symmetry, label-index agreement), [`csce_ccsr::Ccsr`]
//!   (Algorithm 1's RLE row-index invariants, cluster-key ↔ label
//!   agreement, persist→load fixpoint) and [`csce_core::Plan`] /
//!   dependency DAGs (Algorithms 2–4: acyclicity, descendant sizes
//!   recomputed independently, LDSF coverage, NEC class soundness). The
//!   checkers deliberately re-derive every property from first principles
//!   rather than calling the production code paths they audit.
//! * **Static source lint** — [`lint`], a zero-dependency Rust tokenizer
//!   and rule engine enforcing repo-wide source policies (no panics in
//!   library code, no lossy index casts, no wildcard arms on the matching
//!   variant enums, module docs), driven by the `csce-lint` binary with a
//!   checked-in allowlist so CI fails only on *new* violations.
//! * **Call-graph static analysis** — [`callgraph`], [`reach`] and
//!   [`rules`]: a workspace-wide call graph built on the same tokenizer,
//!   certifying panic-freedom of the executor entry points
//!   ([`rules::panic_reach`]), flagging narrow casts on the hot path
//!   ([`rules::hot_cast`]) and auditing shared-state fields against the
//!   declared-ordering manifest ([`rules::shared_state`]); findings
//!   ratchet per function against `scripts/static-baseline.txt` and
//!   export as SARIF through `csce-lint --static` /
//!   `csce validate --static`.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod ccsr_check;
pub mod graph_check;
pub mod lint;
pub mod plan_check;
pub mod reach;
pub mod rules;
pub mod sched_check;
mod tokens;

/// Cap on the number of per-violation detail strings a report retains;
/// counts stay exact beyond it, details are dropped (a badly corrupted
/// structure can otherwise produce millions of identical messages).
pub const MAX_DETAILS: usize = 64;

/// One broken invariant, attributed to the checker that found it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Dotted checker identifier, e.g. `"ccsr.rle-monotone"`.
    pub checker: &'static str,
    /// Human-readable description with enough context to locate the damage.
    pub detail: String,
}

/// Outcome of validating one structure: which checkers ran and what each
/// found. A structure is valid iff every checker found zero violations.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// What was validated (e.g. a file path or a structure description).
    pub subject: String,
    /// `(checker, violation count)` for every checker that ran, in run
    /// order — zero-count entries prove the check happened.
    checks: Vec<(&'static str, u64)>,
    /// Detailed messages, capped at [`MAX_DETAILS`].
    details: Vec<Violation>,
}

impl ValidationReport {
    pub fn new(subject: impl Into<String>) -> ValidationReport {
        ValidationReport { subject: subject.into(), checks: Vec::new(), details: Vec::new() }
    }

    /// Register a checker as having run (idempotent).
    pub fn ran(&mut self, checker: &'static str) {
        if !self.checks.iter().any(|(name, _)| *name == checker) {
            self.checks.push((checker, 0));
        }
    }

    /// Record one violation found by `checker`.
    pub fn violation(&mut self, checker: &'static str, detail: impl Into<String>) {
        self.ran(checker);
        for (name, count) in &mut self.checks {
            if *name == checker {
                *count += 1;
            }
        }
        if self.details.len() < MAX_DETAILS {
            self.details.push(Violation { checker, detail: detail.into() });
        }
    }

    /// Whether every checker passed.
    pub fn is_ok(&self) -> bool {
        self.total_violations() == 0
    }

    /// Total violations across all checkers (exact even past the detail cap).
    pub fn total_violations(&self) -> u64 {
        self.checks.iter().map(|(_, c)| c).sum()
    }

    /// Number of distinct checkers that ran.
    pub fn checks_run(&self) -> usize {
        self.checks.len()
    }

    /// `(checker, violation count)` pairs in run order.
    pub fn checks(&self) -> &[(&'static str, u64)] {
        &self.checks
    }

    /// Retained violation details (capped at [`MAX_DETAILS`]).
    pub fn details(&self) -> &[Violation] {
        &self.details
    }

    /// Fold another report's checks and details into this one.
    pub fn merge(&mut self, other: ValidationReport) {
        for (checker, count) in other.checks {
            self.ran(checker);
            for (name, total) in &mut self.checks {
                if *name == checker {
                    *total += count;
                }
            }
        }
        for v in other.details {
            if self.details.len() < MAX_DETAILS {
                self.details.push(v);
            }
        }
    }

    /// Export as a `csce-obs` run report: metadata identifies the subject
    /// and verdict, counters carry per-checker violation counts, and the
    /// retained details ride along as numbered metadata entries.
    pub fn to_run_report(&self) -> csce_obs::RunReport {
        let mut report = csce_obs::RunReport::new();
        report
            .meta("tool", "csce-analyze")
            .meta("subject", &self.subject)
            .meta("verdict", if self.is_ok() { "PASS" } else { "FAIL" })
            .meta("checks_run", self.checks_run())
            .meta("violations", self.total_violations());
        for (i, v) in self.details.iter().enumerate() {
            report.meta(&format!("violation.{i}"), format!("[{}] {}", v.checker, v.detail));
        }
        let dropped = self.total_violations() as i128 - self.details.len() as i128;
        if dropped > 0 {
            report.meta("violations_dropped", dropped);
        }
        for (checker, count) in &self.checks {
            report.metrics.set_counter(&format!("violations.{checker}"), *count);
        }
        report
    }
}

/// Deep structural validation: re-derive every invariant the structure is
/// supposed to maintain and report what holds.
pub trait Validate {
    /// Run every applicable checker and collect the findings.
    fn validate(&self) -> ValidationReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_checks_and_violations() {
        let mut r = ValidationReport::new("unit");
        r.ran("a.one");
        r.ran("a.one");
        assert!(r.is_ok());
        assert_eq!(r.checks_run(), 1);
        r.violation("a.two", "broke");
        assert!(!r.is_ok());
        assert_eq!(r.checks_run(), 2);
        assert_eq!(r.total_violations(), 1);
        assert_eq!(r.details()[0].checker, "a.two");
    }

    #[test]
    fn detail_cap_keeps_counts_exact() {
        let mut r = ValidationReport::new("unit");
        for i in 0..(MAX_DETAILS + 10) {
            r.violation("x", format!("v{i}"));
        }
        assert_eq!(r.total_violations(), (MAX_DETAILS + 10) as u64);
        assert_eq!(r.details().len(), MAX_DETAILS);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ValidationReport::new("a");
        a.violation("c1", "x");
        let mut b = ValidationReport::new("b");
        b.violation("c1", "y");
        b.ran("c2");
        a.merge(b);
        assert_eq!(a.total_violations(), 2);
        assert_eq!(a.checks_run(), 2);
    }

    #[test]
    fn run_report_exports_verdict() {
        let mut r = ValidationReport::new("unit");
        r.ran("ok.check");
        let text = r.to_run_report().to_text();
        assert!(text.contains("PASS"), "{text}");
        r.violation("bad.check", "boom");
        let text = r.to_run_report().to_text();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }
}
