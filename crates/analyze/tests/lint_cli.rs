//! End-to-end tests of the `csce-lint` binary: the ratchet must pass a
//! clean tree, fail on a seeded violation, and fail on a stale ceiling.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_csce-lint");

/// A miniature workspace with one clean library file.
fn write_fixture(root: &Path) {
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "//! Demo module documentation.\n\npub fn double(x: u64) -> u64 {\n    x * 2\n}\n",
    )
    .unwrap();
    std::fs::create_dir_all(root.join("scripts")).unwrap();
}

fn run_lint(root: &Path, extra: &[&str]) -> (bool, String) {
    let out =
        Command::new(BIN).arg("--root").arg(root).args(extra).output().expect("spawn csce-lint");
    (out.status.success(), String::from_utf8_lossy(&out.stderr).into_owned())
}

fn temp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("csce_lint_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_fixture(&root);
    root
}

#[test]
fn clean_tree_passes_without_allowlist() {
    let root = temp_root("clean");
    let (ok, err) = run_lint(&root, &[]);
    assert!(ok, "clean fixture should pass: {err}");
    assert!(err.contains("OK"), "expected OK verdict: {err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn seeded_violation_fails_then_allowlist_ratchets() {
    let root = temp_root("seeded");
    let bad = root.join("crates/demo/src/risky.rs");
    std::fs::write(
        &bad,
        "//! Risky helper.\n\npub fn first(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    )
    .unwrap();

    // Without an allowlist the new violation is a hard failure.
    let (ok, err) = run_lint(&root, &[]);
    assert!(!ok, "seeded unwrap must fail the lint");
    assert!(err.contains("no-panic"), "failure names the rule: {err}");
    assert!(err.contains("risky.rs"), "failure names the file: {err}");

    // Recording the debt makes the same tree pass...
    let (ok, err) = run_lint(&root, &["--update-allowlist"]);
    assert!(ok, "--update-allowlist should succeed: {err}");
    let (ok, err) = run_lint(&root, &[]);
    assert!(ok, "recorded debt should pass: {err}");

    // ...but any NEW violation in the same file still fails (ceiling, not
    // a blanket exemption).
    std::fs::write(
        &bad,
        "//! Risky helper.\n\npub fn first(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n\npub fn last(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n",
    )
    .unwrap();
    let (ok, err) = run_lint(&root, &[]);
    assert!(!ok, "new debt above the ceiling must fail: {err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn stale_ceiling_fails_until_tightened() {
    let root = temp_root("stale");
    let bad = root.join("crates/demo/src/risky.rs");
    std::fs::write(
        &bad,
        "//! Risky helper.\n\npub fn first(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    )
    .unwrap();
    let (ok, _) = run_lint(&root, &["--update-allowlist"]);
    assert!(ok);

    // Fixing the unwrap makes the recorded ceiling stale: the lint fails
    // until the allowlist is tightened, so ratchet progress is locked in.
    std::fs::write(
        &bad,
        "//! Risky helper.\n\npub fn first(v: &[u32]) -> Option<u32> {\n    v.first().copied()\n}\n",
    )
    .unwrap();
    let (ok, err) = run_lint(&root, &[]);
    assert!(!ok, "stale ceiling must fail: {err}");
    assert!(err.contains("stale") || err.contains("tighten"), "explains staleness: {err}");
    let (ok, _) = run_lint(&root, &["--update-allowlist"]);
    assert!(ok);
    let (ok, err) = run_lint(&root, &[]);
    assert!(ok, "tightened allowlist passes: {err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn workspace_tree_passes_checked_in_allowlist() {
    // The real repository must be lint-clean against its own allowlist.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (ok, err) = run_lint(&repo_root, &[]);
    assert!(ok, "workspace lint must pass with checked-in allowlist: {err}");
}
