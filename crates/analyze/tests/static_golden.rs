//! Golden-file test for the call-graph static analyzer: the SARIF
//! document produced over the `tests/fixtures/mini` workspace is pinned
//! byte-for-byte, so any change to parsing, reachability, rule logic or
//! the SARIF encoding shows up as a reviewable golden diff.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p csce-analyze --test static_golden`.

use csce_analyze::rules::{run_static, to_sarif, StaticBaseline};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini.sarif.json")
}

#[test]
fn mini_fixture_findings_are_the_designed_five() {
    let report = run_static(&fixture_root()).unwrap();
    // All 18 certified entry points resolve in the fixture, so there are
    // no missing-entry findings — only the planted defects.
    assert_eq!(report.entries_found, 18);
    let by_rule = |rule: &str| report.findings.iter().filter(|f| f.rule == rule).count();
    assert_eq!(by_rule("panic-reach"), 2, "lookup[] and chunk's division");
    assert_eq!(by_rule("hot-cast"), 1, "narrow's `as u32`");
    assert_eq!(by_rule("shared-state"), 2, "Executor.budget + stale Scheduler.gone");
    // The unreachable decoys stay unflagged.
    assert!(report.findings.iter().all(|f| f.fn_path != "cold" && f.fn_path != "cold_cast"));
    // Reachability chains name the certified entry they start from.
    let lookup = report.findings.iter().find(|f| f.fn_path == "lookup").unwrap();
    assert!(lookup.msg.contains("Executor::try_candidate > lookup"), "{}", lookup.msg);
}

#[test]
fn mini_fixture_sarif_matches_golden() {
    let report = run_static(&fixture_root()).unwrap();
    let got = to_sarif(&report).to_pretty();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path()).unwrap();
    assert_eq!(
        got, want,
        "SARIF output drifted from tests/fixtures/mini.sarif.json; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn mini_fixture_baseline_roundtrip_certifies() {
    // A baseline generated from the findings makes the run pass, and the
    // serialized form parses back to the same ceilings.
    let report = run_static(&fixture_root()).unwrap();
    let baseline = StaticBaseline::from_findings(&report.findings);
    assert!(baseline.check(&report.findings).is_empty());
    let reparsed = StaticBaseline::parse(&baseline.to_text()).unwrap();
    assert_eq!(reparsed, baseline);
    // An empty baseline reports every planted defect.
    assert_eq!(StaticBaseline::default().check(&report.findings).len(), 5);
}
