//! Mini match engine: the certified executor entry points plus helpers
//! with known, pinned defects for the static-analyzer golden test.
//!
//! This file is analyzer input, not compiled Rust — it lives under
//! `tests/fixtures/` so the workspace lint and cargo both skip it.

pub struct Executor {
    progress: Arc<AtomicU64>,
    budget: AtomicUsize,
}

impl Executor {
    pub fn count(&self) {
        self.scan();
    }

    pub fn drive(&self) {
        self.scan();
    }

    pub fn enumerate(&self) {
        self.scan();
    }

    pub fn scan(&self) {
        self.walk(0);
    }

    pub fn walk(&self, d: usize) {
        self.try_candidate();
        self.count_node(d);
    }

    pub fn try_candidate(&self) {
        lookup(&[], 1);
    }

    pub fn count_node(&self, _d: usize) {}

    pub fn check_deadline(&self) {}
}

/// Reachable from `Executor::try_candidate`: the index is a panic site.
fn lookup(v: &[u64], k: usize) -> u64 {
    v[k]
}

/// NOT reachable from any certified entry: its panic must not be flagged.
fn cold() {
    panic!("unreachable from the certified entries");
}
