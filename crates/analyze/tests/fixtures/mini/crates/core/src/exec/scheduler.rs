//! Mini scheduler: the remaining certified entries, one reachable panic
//! site (non-literal division), and shared-state fields for the manifest
//! rule — one declared, one not, with one stale manifest entry.

pub struct Scheduler {
    cursor: AtomicUsize,
    stop: AtomicBool,
}

impl Scheduler {
    pub fn claim(&self) -> usize {
        chunk(8, 2)
    }

    pub fn request_stop(&self) {}

    pub fn stop_once(&self) {}

    pub fn stopped(&self) -> bool {
        false
    }

    pub fn deadline(&self) {}
}

pub fn run_parallel() {
    count_parallel();
}

pub fn count_parallel() {
    count_parallel_observed();
}

pub fn count_parallel_observed() {
    collect_parallel();
}

pub fn collect_parallel() {
    enumerate_parallel();
}

pub fn enumerate_parallel() {}

/// Reachable from `Scheduler::claim`: dividing by a non-literal divisor
/// is a panic site (divide-by-zero).
fn chunk(n: usize, d: usize) -> usize {
    n / d
}
