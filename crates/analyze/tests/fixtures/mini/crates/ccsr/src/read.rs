//! Mini CCSR read path: one hot narrow cast (reachable from `read_csr`)
//! and one cold narrow cast that must not be flagged.

pub fn read_csr(row: usize) -> u32 {
    narrow(row)
}

/// Reachable from `read_csr`: the `as u32` is a hot-cast finding.
fn narrow(row: usize) -> u32 {
    row as u32
}

/// NOT reachable from the read path: its cast must not be flagged.
fn cold_cast(row: usize) -> u32 {
    row as u32
}
