//! Deterministic random-graph generators.
//!
//! These produce the synthetic stand-ins for the paper's data graphs (the
//! dataset presets live in `csce-datasets`; this module has the underlying
//! models). All generators take an explicit seed and are fully
//! deterministic for a given seed, so benchmarks and tests are reproducible.

use crate::graph::{Graph, GraphBuilder};
use crate::{Label, VertexId, NO_LABEL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assign a uniform random label from `0..label_count` to each vertex;
/// `label_count == 0` means unlabeled ([`NO_LABEL`]).
fn random_label(rng: &mut StdRng, label_count: u32) -> Label {
    if label_count == 0 {
        NO_LABEL
    } else {
        rng.gen_range(0..label_count)
    }
}

/// G(n, m) Erdős–Rényi graph with uniform random vertex and edge labels.
///
/// Directed graphs sample ordered pairs, undirected graphs unordered pairs;
/// duplicate pairs are re-drawn. Panics if `m` exceeds the number of
/// available pairs.
pub fn erdos_renyi(
    n: usize,
    m: usize,
    vertex_labels: u32,
    edge_labels: u32,
    directed: bool,
    seed: u64,
) -> Graph {
    let max_pairs = if directed { n * (n - 1) } else { n * (n - 1) / 2 };
    assert!(m <= max_pairs, "requested {m} edges but only {max_pairs} pairs exist");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let l = random_label(&mut rng, vertex_labels);
        b.add_vertex(l);
    }
    let mut added = 0usize;
    while added < m {
        let a = rng.gen_range(0..n) as VertexId;
        let c = rng.gen_range(0..n) as VertexId;
        if a == c {
            continue;
        }
        let el = if edge_labels == 0 { NO_LABEL } else { rng.gen_range(0..edge_labels) };
        let res = if directed { b.add_edge(a, c, el) } else { b.add_undirected_edge(a, c, el) };
        if res.is_ok() {
            added += 1;
        }
    }
    b.build()
}

/// Chung–Lu power-law graph: vertex `i` gets expected-degree weight
/// `(i+1)^(-1/(γ-1))` and endpoints are drawn proportionally to weight.
/// Models the social / citation graphs of Table IV (Orkut, LiveJournal,
/// Patent, Subcategory) whose degree distributions are heavy-tailed.
pub fn chung_lu(
    n: usize,
    m: usize,
    gamma: f64,
    vertex_labels: u32,
    edge_labels: u32,
    directed: bool,
    seed: u64,
) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..n {
        let l = random_label(&mut rng, vertex_labels);
        b.add_vertex(l);
    }
    // Cumulative weights for proportional sampling by binary search.
    let exponent = -1.0 / (gamma - 1.0);
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let draw = |rng: &mut StdRng| -> VertexId {
        let x = rng.gen_range(0.0..total);
        cumulative.partition_point(|&c| c <= x) as VertexId
    };
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(50).max(1000);
    while added < m && attempts < max_attempts {
        attempts += 1;
        let a = draw(&mut rng);
        let c = draw(&mut rng);
        if a == c {
            continue;
        }
        let el = if edge_labels == 0 { NO_LABEL } else { rng.gen_range(0..edge_labels) };
        let res = if directed { b.add_edge(a, c, el) } else { b.add_undirected_edge(a, c, el) };
        if res.is_ok() {
            added += 1;
        }
    }
    b.build()
}

/// A road-network-like lattice: a `rows × cols` grid where each edge is kept
/// with probability `keep`, yielding the low, near-constant degrees of
/// RoadCA (average degree ≈ 2.8 at `keep ≈ 0.7`). Undirected, unlabeled.
pub fn road_grid(rows: usize, cols: usize, keep: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    b.add_unlabeled_vertices(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen_bool(keep) {
                b.add_undirected_edge(id(r, c), id(r, c + 1), NO_LABEL).unwrap();
            }
            if r + 1 < rows && rng.gen_bool(keep) {
                b.add_undirected_edge(id(r, c), id(r + 1, c), NO_LABEL).unwrap();
            }
        }
    }
    b.build()
}

/// Planted-partition community graph: `n` vertices in `k` equal groups;
/// each vertex gets ~`d_in` expected intra-group and ~`d_out` inter-group
/// undirected neighbors. Returns the graph and the ground-truth group of
/// each vertex. Models the EMAIL-EU case-study network (§VII-G).
pub fn planted_partition(
    n: usize,
    k: usize,
    d_in: f64,
    d_out: f64,
    seed: u64,
) -> (Graph, Vec<usize>) {
    assert!(k >= 1 && n >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * (d_in + d_out).ceil() as usize);
    b.add_unlabeled_vertices(n);
    let groups: Vec<usize> = (0..n).map(|i| i % k).collect();
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for (i, &g) in groups.iter().enumerate() {
        members[g].push(i as VertexId);
    }
    // Expected intra edges per group: |group| * d_in / 2.
    for group in &members {
        let target = ((group.len() as f64) * d_in / 2.0).round() as usize;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < target && attempts < target * 30 + 100 {
            attempts += 1;
            let a = group[rng.gen_range(0..group.len())];
            let c = group[rng.gen_range(0..group.len())];
            if a != c && b.add_undirected_edge(a, c, NO_LABEL).is_ok() {
                added += 1;
            }
        }
    }
    let inter_target = ((n as f64) * d_out / 2.0).round() as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < inter_target && attempts < inter_target * 30 + 100 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if groups[a] != groups[c]
            && b.add_undirected_edge(a as VertexId, c as VertexId, NO_LABEL).is_ok()
        {
            added += 1;
        }
    }
    (b.build(), groups)
}

/// Barabási–Albert preferential attachment: each new vertex attaches `m0`
/// undirected edges to existing vertices chosen proportionally to degree.
/// An alternative heavy-tail model to [`chung_lu`] with guaranteed
/// connectivity, useful for workload robustness checks.
pub fn barabasi_albert(n: usize, m0: usize, vertex_labels: u32, seed: u64) -> Graph {
    assert!(m0 >= 1 && n > m0, "need n > m0 >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m0);
    for _ in 0..n {
        let l = random_label(&mut rng, vertex_labels);
        b.add_vertex(l);
    }
    // Endpoint pool: each vertex appears once per incident edge, so a
    // uniform draw from the pool is a degree-proportional draw.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m0);
    // Seed clique over the first m0 + 1 vertices.
    for i in 0..=m0 {
        for j in i + 1..=m0 {
            b.add_undirected_edge(i as VertexId, j as VertexId, NO_LABEL).unwrap();
            pool.push(i as VertexId);
            pool.push(j as VertexId);
        }
    }
    for v in (m0 + 1)..n {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m0 && guard < 50 * m0 {
            guard += 1;
            let target = pool[rng.gen_range(0..pool.len())];
            if b.add_undirected_edge(v as VertexId, target, NO_LABEL).is_ok() {
                pool.push(v as VertexId);
                pool.push(target);
                attached += 1;
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects
/// its `k/2` nearest neighbors per side and each edge rewires with
/// probability `beta`. Models high-clustering low-diameter networks.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, vertex_labels: u32, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2) && n > k, "need even k >= 2 and n > k");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for _ in 0..n {
        let l = random_label(&mut rng, vertex_labels);
        b.add_vertex(l);
    }
    for v in 0..n {
        for offset in 1..=(k / 2) {
            let mut target = ((v + offset) % n) as VertexId;
            if rng.gen_bool(beta) {
                // Rewire to a uniform random endpoint.
                target = rng.gen_range(0..n) as VertexId;
            }
            if target != v as VertexId {
                let _ = b.add_undirected_edge(v as VertexId, target, NO_LABEL);
            }
        }
    }
    b.build()
}

/// Replace all vertex labels with uniform random labels from
/// `0..label_count` (used to vary heterogeneity for Fig. 10/11).
pub fn randomize_vertex_labels(g: &Graph, label_count: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = (0..g.n()).map(|_| random_label(&mut rng, label_count)).collect();
    g.with_vertex_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_counts_and_determinism() {
        let g1 = erdos_renyi(50, 100, 5, 2, false, 42);
        let g2 = erdos_renyi(50, 100, 5, 2, false, 42);
        assert_eq!(g1.n(), 50);
        assert_eq!(g1.m(), 100);
        assert_eq!(g1.edges(), g2.edges(), "same seed, same graph");
        assert!(g1.vertex_label_count() <= 5);
        let g3 = erdos_renyi(50, 100, 5, 2, false, 43);
        assert_ne!(g1.edges(), g3.edges(), "different seed, different graph");
    }

    #[test]
    fn erdos_renyi_directed() {
        let g = erdos_renyi(30, 200, 0, 0, true, 7);
        assert!(g.has_directed_edges());
        assert_eq!(g.m(), 200);
        assert_eq!(g.vertex_label_count(), 0);
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let g = chung_lu(2000, 6000, 2.5, 10, 0, false, 1);
        assert!(g.m() > 5000, "should reach close to target edges, got {}", g.m());
        let max_deg = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap();
        let avg = g.average_degree();
        assert!(
            (max_deg as f64) > 6.0 * avg,
            "power-law hub expected: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    fn road_grid_is_sparse_and_low_degree() {
        let g = road_grid(40, 40, 0.7, 3);
        assert_eq!(g.n(), 1600);
        let max_deg = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg <= 4);
        let avg = g.average_degree();
        assert!(avg > 2.0 && avg < 3.2, "road-like average degree, got {avg:.2}");
    }

    #[test]
    fn planted_partition_prefers_intra_edges() {
        let (g, groups) = planted_partition(300, 6, 8.0, 2.0, 5);
        assert_eq!(groups.len(), 300);
        let (mut intra, mut inter) = (0usize, 0usize);
        for e in g.edges() {
            if groups[e.src as usize] == groups[e.dst as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 2 * inter, "intra={intra} inter={inter}");
    }

    #[test]
    fn barabasi_albert_grows_hubs_and_stays_connected() {
        let g = barabasi_albert(500, 3, 0, 4);
        assert_eq!(g.n(), 500);
        assert!(g.is_connected(), "preferential attachment yields one component");
        let max_deg = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap();
        assert!((max_deg as f64) > 4.0 * g.average_degree(), "hub exists: {max_deg}");
        // Deterministic.
        assert_eq!(g.edges(), barabasi_albert(500, 3, 0, 4).edges());
    }

    #[test]
    fn watts_strogatz_degrees_and_rewiring() {
        let regular = watts_strogatz(100, 4, 0.0, 0, 5);
        // beta = 0: exact ring lattice, all degrees k.
        assert!((0..100u32).all(|v| regular.degree(v) == 4));
        let rewired = watts_strogatz(100, 4, 0.3, 2, 5);
        assert!(rewired.m() <= regular.m(), "rewiring can only drop collisions");
        assert_ne!(rewired.edges(), regular.edges());
    }

    #[test]
    fn relabel_changes_only_labels() {
        let g = erdos_renyi(40, 80, 0, 0, false, 9);
        let h = randomize_vertex_labels(&g, 16, 11);
        assert_eq!(g.edges(), h.edges());
        assert!(h.vertex_label_count() > 1);
    }
}
