//! Automorphism counting for patterns.
//!
//! The paper multiplies symmetry-broken result counts by the pattern's
//! automorphism count to compare against engines that enumerate all
//! mappings (§VII-B). This module counts automorphisms with a signature-
//! pruned backtracking search: candidates must agree on label, degree, and
//! the sorted multiset of `(neighbor label, neighbor degree)` pairs, which
//! keeps even 100-vertex patterns fast.

use crate::graph::Graph;
use crate::pattern::pair_code;
use crate::util::FxHashMap;
use crate::{Label, VertexId};

/// A cheap isomorphism-invariant vertex signature: label, degree, and
/// the sorted multiset of (neighbor label, neighbor degree, orientation).
type Signature = (Label, u32, Vec<(Label, u32, u8)>);

fn signature(g: &Graph, v: VertexId) -> Signature {
    let mut nbrs: Vec<(Label, u32, u8)> =
        g.adj(v).iter().map(|a| (g.label(a.nbr), g.degree(a.nbr), a.orient as u8)).collect();
    nbrs.sort_unstable();
    (g.label(v), g.degree(v), nbrs)
}

/// Enumerate all automorphisms of `p` as mapping arrays (`σ[u]` is the
/// image of `u`). Includes the identity. Used by symmetry-breaking
/// baselines, whose restriction sets are derived from the full group.
pub fn automorphisms(p: &Graph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    enumerate(p, &mut |f| out.push(f.to_vec()));
    out
}

/// Count the automorphisms of `p` (mappings `p ≅ p`, including identity).
pub fn automorphism_count(p: &Graph) -> u64 {
    let mut count = 0u64;
    enumerate(p, &mut |_| count += 1);
    count
}

/// Stabilizer-chain symmetry-breaking restrictions (Grochow–Kellis):
/// ordering constraints `f(a) < f(b)` such that exactly one member of
/// each automorphism orbit of embeddings survives, plus `|Aut(p)|`.
///
/// For each vertex `u` in id order, every other vertex in `u`'s orbit
/// under the remaining group yields a restriction, then the group shrinks
/// to `u`'s stabilizer. Used by the GraphPi-style baseline and by
/// distinct-subgraph counting (`count * |Aut| = mapping count`).
pub fn stabilizer_restrictions(p: &Graph) -> (Vec<(VertexId, VertexId)>, u64) {
    let mut group = automorphisms(p);
    let aut = group.len() as u64;
    let mut restrictions = Vec::new();
    for u in 0..p.n() as VertexId {
        let mut orbit: Vec<VertexId> = group.iter().map(|s| s[u as usize]).collect();
        orbit.sort_unstable();
        orbit.dedup();
        for &w in &orbit {
            if w != u {
                restrictions.push((u, w));
            }
        }
        group.retain(|s| s[u as usize] == u);
    }
    (restrictions, aut)
}

fn enumerate(p: &Graph, emit: &mut dyn FnMut(&[VertexId])) {
    let n = p.n();
    if n == 0 {
        emit(&[]);
        return;
    }
    // Group vertices by signature; a vertex can only map onto vertices in
    // its own signature class.
    let mut class_of: Vec<u32> = Vec::with_capacity(n);
    let mut classes: FxHashMap<Signature, u32> = FxHashMap::default();
    let mut members: Vec<Vec<VertexId>> = Vec::new();
    for v in 0..n as VertexId {
        let sig = signature(p, v);
        let next = members.len() as u32;
        let id = *classes.entry(sig).or_insert(next);
        if id == next {
            members.push(Vec::new());
        }
        class_of.push(id);
        members[id as usize].push(v);
    }
    let mut f: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut used = vec![false; n];
    descend(p, &class_of, &members, 0, &mut f, &mut used, emit);
}

fn descend(
    p: &Graph,
    class_of: &[u32],
    members: &[Vec<VertexId>],
    u: VertexId,
    f: &mut Vec<VertexId>,
    used: &mut Vec<bool>,
    emit: &mut dyn FnMut(&[VertexId]),
) {
    if u as usize == p.n() {
        emit(f);
        return;
    }
    'cands: for &v in &members[class_of[u as usize] as usize] {
        if used[v as usize] {
            continue;
        }
        for prev in 0..u {
            if pair_code(p, prev, u) != pair_code(p, f[prev as usize], v) {
                continue 'cands;
            }
        }
        f[u as usize] = v;
        used[v as usize] = true;
        descend(p, class_of, members, u + 1, f, used, emit);
        used[v as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::NO_LABEL;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n {
            b.add_undirected_edge(i as u32, ((i + 1) % n) as u32, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn clique(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n {
            for j in i + 1..n {
                b.add_undirected_edge(i as u32, j as u32, NO_LABEL).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn known_groups() {
        assert_eq!(automorphism_count(&cycle(5)), 10); // dihedral D5
        assert_eq!(automorphism_count(&cycle(8)), 16); // dihedral D8
        assert_eq!(automorphism_count(&clique(4)), 24); // S4
        assert_eq!(automorphism_count(&clique(5)), 120); // S5
    }

    #[test]
    fn labels_break_symmetry() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1); // different labels on a 2-cycle-free edge
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        assert_eq!(automorphism_count(&b.build()), 1);
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(0);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        assert_eq!(automorphism_count(&b.build()), 2);
    }

    #[test]
    fn direction_breaks_symmetry() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(1, 2, NO_LABEL).unwrap();
        // Directed path has only the identity (reversal flips directions).
        assert_eq!(automorphism_count(&b.build()), 1);
    }

    #[test]
    fn paper_s3_has_two_automorphisms() {
        // S3 = path on {u1,u6,u8}, all label A: f1 identity, f2 reversal.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(0);
        b.add_vertex(0);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        assert_eq!(automorphism_count(&b.build()), 2);
    }

    #[test]
    fn moderate_pattern_is_fast() {
        // A 40-cycle: 80 automorphisms, must terminate quickly thanks to
        // signature classes.
        assert_eq!(automorphism_count(&cycle(40)), 80);
    }

    #[test]
    fn empty_graph_identity_only() {
        assert_eq!(automorphism_count(&GraphBuilder::new().build()), 1);
    }

    #[test]
    fn enumeration_returns_valid_permutations() {
        let c = cycle(4);
        let autos = automorphisms(&c);
        assert_eq!(autos.len(), 8);
        assert!(autos.contains(&vec![0, 1, 2, 3]), "identity present");
        for sigma in &autos {
            // Each is a permutation preserving edges.
            let mut sorted = sigma.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            for e in c.edges() {
                assert!(c.connected(sigma[e.src as usize], sigma[e.dst as usize]));
            }
        }
    }
}
