//! Brute-force subgraph matching oracle.
//!
//! A deliberately simple backtracking matcher whose only goal is obvious
//! correctness: it is the ground truth against which the CSCE engine and
//! every baseline are validated in the test suite. It supports all three
//! variants, vertex labels, edge labels and mixed edge directions. Only
//! suitable for small inputs.

use crate::graph::Graph;
use crate::pattern::{code_subset, pair_code};
use crate::{Variant, VertexId};

/// An embedding as a mapping array: `f[i]` is the data vertex mapped to
/// pattern vertex `i`.
pub type Embedding = Vec<VertexId>;

/// Enumerate all embeddings of `p` in `g` under `variant`, sorted.
pub fn oracle_embeddings(g: &Graph, p: &Graph, variant: Variant) -> Vec<Embedding> {
    let mut out = Vec::new();
    run(g, p, variant, &mut |f| out.push(f.to_vec()));
    out.sort_unstable();
    out
}

/// Count embeddings of `p` in `g` under `variant`.
pub fn oracle_count(g: &Graph, p: &Graph, variant: Variant) -> u64 {
    let mut count = 0u64;
    run(g, p, variant, &mut |_| count += 1);
    count
}

fn run(g: &Graph, p: &Graph, variant: Variant, emit: &mut dyn FnMut(&[VertexId])) {
    if p.n() == 0 {
        return;
    }
    let mut f: Vec<VertexId> = vec![VertexId::MAX; p.n()];
    let mut used = vec![false; g.n()];
    descend(g, p, variant, 0, &mut f, &mut used, emit);
}

fn descend(
    g: &Graph,
    p: &Graph,
    variant: Variant,
    u: VertexId,
    f: &mut Vec<VertexId>,
    used: &mut Vec<bool>,
    emit: &mut dyn FnMut(&[VertexId]),
) {
    if u as usize == p.n() {
        emit(f);
        return;
    }
    'candidates: for v in 0..g.n() as VertexId {
        if variant.injective() && used[v as usize] {
            continue;
        }
        if g.label(v) != p.label(u) {
            continue;
        }
        // Check every pair (earlier pattern vertex, u).
        for prev in 0..u {
            let pcode = pair_code(p, prev, u);
            let gcode = pair_code(g, f[prev as usize], v);
            let ok = match variant {
                // Induced: the pair's edges must match exactly.
                Variant::VertexInduced => pcode == gcode,
                // Non-induced / homomorphic: pattern edges must be present.
                Variant::EdgeInduced | Variant::Homomorphic => code_subset(&pcode, &gcode),
            };
            if !ok {
                continue 'candidates;
            }
        }
        f[u as usize] = v;
        if variant.injective() {
            used[v as usize] = true;
        }
        descend(g, p, variant, u + 1, f, used, emit);
        if variant.injective() {
            used[v as usize] = false;
        }
        f[u as usize] = VertexId::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::NO_LABEL;

    /// A triangle plus a pendant: 0-1, 1-2, 2-0, 2-3 (undirected, unlabeled).
    fn paw() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        for (a, c) in [(0, 1), (1, 2), (2, 0)] {
            b.add_undirected_edge(a, c, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn path3() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn triangle_in_paw() {
        let g = paw();
        // One triangle subgraph, 6 mappings (3! automorphisms of a triangle).
        assert_eq!(oracle_count(&g, &triangle(), Variant::EdgeInduced), 6);
        assert_eq!(oracle_count(&g, &triangle(), Variant::VertexInduced), 6);
        // Homomorphism adds nothing for a triangle pattern (no two pattern
        // vertices can share an image: they are all adjacent).
        assert_eq!(oracle_count(&g, &triangle(), Variant::Homomorphic), 6);
    }

    #[test]
    fn path_counts_differ_across_variants() {
        let g = paw();
        // Edge-induced paths of length 2: middle vertex with >=2 neighbors:
        // ordered pairs of distinct neighbors. Degrees: d0=2, d1=2, d2=3, d3=1
        // -> 2 + 2 + 6 = 10 mappings.
        assert_eq!(oracle_count(&g, &path3(), Variant::EdgeInduced), 10);
        // Vertex-induced excludes the triangle's paths (extra closing edge):
        // only paths through vertex 2 using the pendant 3 survive:
        // (0,2,3),(3,2,0),(1,2,3),(3,2,1) -> 4.
        assert_eq!(oracle_count(&g, &path3(), Variant::VertexInduced), 4);
        // Homomorphism also allows endpoints to coincide (v-u-v): for every
        // directed data arc pair. Each vertex contributes d(v)^2 walks:
        // 4 + 4 + 9 + 1 = 18.
        assert_eq!(oracle_count(&g, &path3(), Variant::Homomorphic), 18);
    }

    #[test]
    fn labels_constrain_matches() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(0, 2, NO_LABEL).unwrap();
        let g = b.build();
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(1);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let p = pb.build();
        assert_eq!(oracle_count(&g, &p, Variant::EdgeInduced), 2);
        let embs = oracle_embeddings(&g, &p, Variant::EdgeInduced);
        assert_eq!(embs, vec![vec![0, 1], vec![0, 2]]);
    }

    #[test]
    fn direction_and_edge_labels_matter() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(2);
        b.add_edge(0, 1, 5).unwrap();
        let g = b.build();

        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(2);
        pb.add_edge(0, 1, 5).unwrap();
        let p_fwd = pb.build();
        assert_eq!(oracle_count(&g, &p_fwd, Variant::EdgeInduced), 1);

        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(2);
        pb.add_edge(0, 1, 6).unwrap();
        let p_wrong_label = pb.build();
        assert_eq!(oracle_count(&g, &p_wrong_label, Variant::EdgeInduced), 0);

        let mut pb = GraphBuilder::new();
        pb.add_unlabeled_vertices(2);
        pb.add_undirected_edge(0, 1, 5).unwrap();
        let p_und = pb.build();
        assert_eq!(
            oracle_count(&g, &p_und, Variant::EdgeInduced),
            0,
            "an undirected pattern edge does not match a directed data edge"
        );
    }

    #[test]
    fn fig1_s3_automorphism_example() {
        // The paper: S3 (path A-A-A from {u1,u6,u8}) has 2 automorphisms and
        // is homomorphic to a single edge.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(0);
        pb.add_vertex(0);
        pb.add_edge(0, 1, NO_LABEL).unwrap();
        pb.add_edge(1, 2, NO_LABEL).unwrap();
        let s3 = pb.build();
        // Against itself, edge-induced: only the identity — reversal would
        // flip the arc directions of the directed path.
        assert_eq!(oracle_count(&s3, &s3, Variant::EdgeInduced), 1);
        // Against a single directed edge between A vertices, homomorphic
        // mapping folds u1,u8 onto one endpoint... but our s3 is a directed
        // path 0->1->2, an edge A->A: hom requires image edges 0->1,1->2 both
        // map to arcs; with data = single arc a->b there is no arc b->a, so 0.
        let mut gb = GraphBuilder::new();
        gb.add_vertex(0);
        gb.add_vertex(0);
        gb.add_edge(0, 1, NO_LABEL).unwrap();
        let edge = gb.build();
        assert_eq!(oracle_count(&edge, &s3, Variant::Homomorphic), 0);
        // With an undirected path pattern and undirected single edge, the
        // paper's fold f3 exists: u1,u8 -> one endpoint, u6 -> the other.
        let mut pb = GraphBuilder::new();
        pb.add_vertex(0);
        pb.add_vertex(0);
        pb.add_vertex(0);
        pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        pb.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let s3u = pb.build();
        let mut gb = GraphBuilder::new();
        gb.add_vertex(0);
        gb.add_vertex(0);
        gb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let edge_u = gb.build();
        assert_eq!(oracle_count(&edge_u, &s3u, Variant::Homomorphic), 2);
    }

    #[test]
    fn empty_pattern_yields_nothing() {
        let g = paw();
        let p = GraphBuilder::new().build();
        assert_eq!(oracle_count(&g, &p, Variant::EdgeInduced), 0);
    }
}
