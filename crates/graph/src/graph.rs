//! The heterogeneous graph model.
//!
//! A [`Graph`] follows the paper's definition `G = (V_G, E_G, L_G, Σ_G)`:
//! vertices carry labels, edges carry labels, and each edge is either
//! directed (`v_a → v_b`) or undirected (`v_a — v_b`, conceptually the two
//! arcs `(v_a, v_b)` and `(v_b, v_a)` that always travel together). Patterns
//! and data graphs share this one type.
//!
//! Vertices are dense `u32` ids. Construction goes through
//! [`GraphBuilder`], which enforces the paper's structural requirements
//! (no self loops; the edge label is a function of the vertex pair, so no
//! parallel edges of the same kind).

use crate::util::FxHashMap;
use crate::{Label, VertexId, NO_LABEL};

/// How an incident edge relates to the vertex whose adjacency list it is in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Orient {
    /// The edge leaves this vertex (`this → nbr`).
    Out,
    /// The edge enters this vertex (`nbr → this`).
    In,
    /// The edge is undirected (`this — nbr`).
    Und,
}

impl Orient {
    /// The orientation the same edge has from the other endpoint's view.
    #[inline]
    pub fn flip(self) -> Orient {
        match self {
            Orient::Out => Orient::In,
            Orient::In => Orient::Out,
            Orient::Und => Orient::Und,
        }
    }
}

/// One edge of the canonical edge list. Undirected edges are stored once
/// with `src <= dst` (enforced by the builder).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    pub src: VertexId,
    pub dst: VertexId,
    pub label: Label,
    pub directed: bool,
}

/// One entry of a vertex's adjacency list.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Adj {
    /// The neighbor vertex.
    pub nbr: VertexId,
    /// Orientation of the connecting edge relative to the owning vertex.
    pub orient: Orient,
    /// Label of the connecting edge ([`NO_LABEL`] when unlabeled).
    pub elabel: Label,
}

/// An immutable heterogeneous graph (data graph or pattern).
#[derive(Clone, Debug)]
pub struct Graph {
    labels: Vec<Label>,
    adj: Vec<Vec<Adj>>,
    edges: Vec<Edge>,
    degree: Vec<u32>,
    label_freq: FxHashMap<Label, u32>,
    vertex_label_count: usize,
    edge_label_count: usize,
    directed_edge_count: usize,
}

impl Graph {
    /// Number of vertices `|V_G|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E_G|`; undirected edges count once, as in Table IV.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The canonical edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Full adjacency of `v`, sorted by `(nbr, orient, elabel)`.
    #[inline]
    pub fn adj(&self, v: VertexId) -> &[Adj] {
        &self.adj[v as usize]
    }

    /// Degree of `v` — the number of *distinct neighbor vertices*, matching
    /// the paper's `d(v)` (two antiparallel arcs to the same neighbor count
    /// once).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.degree[v as usize]
    }

    /// Number of incident arcs leaving `v` (Out + Und), for Table IV's
    /// max-out-degree column.
    pub fn out_arcs(&self, v: VertexId) -> usize {
        self.adj[v as usize].iter().filter(|a| a.orient != Orient::In).count()
    }

    /// Number of incident arcs entering `v` (In + Und).
    pub fn in_arcs(&self, v: VertexId) -> usize {
        self.adj[v as usize].iter().filter(|a| a.orient != Orient::Out).count()
    }

    /// The incident edges between `a` and `b`, seen from `a`'s side.
    /// Empty when not adjacent. Because adjacency is sorted by neighbor id,
    /// this is a binary search plus a short scan.
    pub fn edges_between(&self, a: VertexId, b: VertexId) -> &[Adj] {
        let list = &self.adj[a as usize];
        let lo = list.partition_point(|x| x.nbr < b);
        let hi = lo + list[lo..].partition_point(|x| x.nbr == b);
        &list[lo..hi]
    }

    /// Whether `a` and `b` are connected by any edge, ignoring direction —
    /// the paper's `⟨u_i, u_j⟩ ∈ E_P` predicate.
    #[inline]
    pub fn connected(&self, a: VertexId, b: VertexId) -> bool {
        !self.edges_between(a, b).is_empty()
    }

    /// Whether there is an edge `a → b` (directed) or `a — b` (undirected)
    /// with the given label and directedness.
    pub fn has_edge(&self, src: VertexId, dst: VertexId, label: Label, directed: bool) -> bool {
        self.edges_between(src, dst).iter().any(|a| {
            a.elabel == label
                && match a.orient {
                    Orient::Out => directed,
                    Orient::Und => !directed,
                    Orient::In => false,
                }
        })
    }

    /// Frequency of each vertex label.
    #[inline]
    pub fn label_frequency(&self) -> &FxHashMap<Label, u32> {
        &self.label_freq
    }

    /// Frequency of one vertex label (0 if absent).
    #[inline]
    pub fn label_count_of(&self, l: Label) -> u32 {
        self.label_freq.get(&l).copied().unwrap_or(0)
    }

    /// Number of distinct vertex labels (`l_v`). An unlabeled graph — all
    /// vertices carrying [`NO_LABEL`] — reports zero, matching Table IV.
    pub fn vertex_label_count(&self) -> usize {
        if self.vertex_label_count == 1 && self.label_freq.contains_key(&NO_LABEL) {
            0
        } else {
            self.vertex_label_count
        }
    }

    /// Number of distinct edge labels (`l_e`), with the same `NO_LABEL`
    /// convention as [`Self::vertex_label_count`].
    pub fn edge_label_count(&self) -> usize {
        self.edge_label_count
    }

    /// Whether the graph is heterogeneous per the paper's `l_v + l_e > 2`
    /// criterion (counting `NO_LABEL` as a single label).
    pub fn is_heterogeneous(&self) -> bool {
        self.vertex_label_count + self.edge_label_count.max(1) > 2
    }

    /// Whether any edge is directed.
    #[inline]
    pub fn has_directed_edges(&self) -> bool {
        self.directed_edge_count > 0
    }

    /// Average degree `2|E| / |V|` (each undirected edge contributes two
    /// endpoints, each directed edge also two).
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// Vertices carrying a given label, in ascending id order.
    pub fn vertices_with_label(&self, l: Label) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n() as VertexId).filter(move |&v| self.labels[v as usize] == l)
    }

    /// Whether the graph is connected when directions are ignored.
    /// Patterns are required to be connected by the planner.
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let mut seen = vec![false; self.n()];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for a in self.adj(v) {
                if !seen[a.nbr as usize] {
                    seen[a.nbr as usize] = true;
                    count += 1;
                    stack.push(a.nbr);
                }
            }
        }
        count == self.n()
    }

    /// Rebuild with new vertex labels (same structure). Used to vary the
    /// label count of a dataset, e.g. "Patent with 2000 randomly assigned
    /// vertex labels" in Fig. 10/11.
    pub fn with_vertex_labels(&self, labels: Vec<Label>) -> Graph {
        assert_eq!(labels.len(), self.n(), "label vector must cover all vertices");
        // Relabelling cannot invalidate the (already validated) structure, so
        // copy it directly instead of replaying edges through the builder;
        // only the label-derived statistics need recomputing.
        let mut label_freq = FxHashMap::default();
        for &l in &labels {
            *label_freq.entry(l).or_insert(0) += 1;
        }
        let vertex_label_count = label_freq.len();
        Graph {
            labels,
            adj: self.adj.clone(),
            edges: self.edges.clone(),
            degree: self.degree.clone(),
            label_freq,
            vertex_label_count,
            edge_label_count: self.edge_label_count,
            directed_edge_count: self.directed_edge_count,
        }
    }
}

/// Errors raised by [`GraphBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// The paper requires `G` to have no self-loops.
    SelfLoop(VertexId),
    /// Edge endpoint does not exist.
    UnknownVertex(VertexId),
    /// `Σ` is a function of the vertex pair: a second edge of the same kind
    /// between the same pair was added.
    DuplicateEdge(VertexId, VertexId),
    /// An undirected edge cannot coexist with a directed edge on the same
    /// vertex pair (the direction of `Σ`'s argument would be ambiguous).
    MixedEdgeKinds(VertexId, VertexId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v}"),
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge between {a} and {b}"),
            GraphError::MixedEdgeKinds(a, b) => {
                write!(f, "directed and undirected edges mixed between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental, validated construction of a [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<Edge>,
    // (min, max) pair -> bitmask: 1 = fwd directed, 2 = bwd directed, 4 = undirected
    pair_kinds: FxHashMap<(VertexId, VertexId), u8>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size internal storage for `n` vertices and `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
            pair_kinds: FxHashMap::default(),
        }
    }

    /// Add a vertex with the given label; returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        id
    }

    /// Add `n` vertices all carrying [`NO_LABEL`]; returns the first new id.
    pub fn add_unlabeled_vertices(&mut self, n: usize) -> VertexId {
        let first = self.labels.len() as VertexId;
        self.labels.resize(self.labels.len() + n, NO_LABEL);
        first
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn check_pair(&mut self, a: VertexId, b: VertexId, kind: u8) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let n = self.labels.len() as VertexId;
        if a >= n {
            return Err(GraphError::UnknownVertex(a));
        }
        if b >= n {
            return Err(GraphError::UnknownVertex(b));
        }
        let key = (a.min(b), a.max(b));
        let entry = self.pair_kinds.entry(key).or_insert(0);
        if *entry & kind != 0 {
            return Err(GraphError::DuplicateEdge(a, b));
        }
        let mixing = (kind == 4 && *entry & 3 != 0) || (kind != 4 && *entry & 4 != 0);
        if mixing {
            return Err(GraphError::MixedEdgeKinds(a, b));
        }
        *entry |= kind;
        Ok(())
    }

    /// Add a directed edge `src → dst` with an edge label
    /// (use [`NO_LABEL`] for unlabeled edges).
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        label: Label,
    ) -> Result<(), GraphError> {
        let kind = if src < dst { 1 } else { 2 };
        self.check_pair(src, dst, kind)?;
        self.edges.push(Edge { src, dst, label, directed: true });
        Ok(())
    }

    /// Add an undirected edge `a — b` with an edge label.
    pub fn add_undirected_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
        label: Label,
    ) -> Result<(), GraphError> {
        self.check_pair(a, b, 4)?;
        let (src, dst) = (a.min(b), a.max(b));
        self.edges.push(Edge { src, dst, label, directed: false });
        Ok(())
    }

    /// Finalize into an immutable [`Graph`] with sorted adjacency.
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut adj: Vec<Vec<Adj>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.directed {
                adj[e.src as usize].push(Adj { nbr: e.dst, orient: Orient::Out, elabel: e.label });
                adj[e.dst as usize].push(Adj { nbr: e.src, orient: Orient::In, elabel: e.label });
            } else {
                adj[e.src as usize].push(Adj { nbr: e.dst, orient: Orient::Und, elabel: e.label });
                adj[e.dst as usize].push(Adj { nbr: e.src, orient: Orient::Und, elabel: e.label });
            }
        }
        let mut degree = Vec::with_capacity(n);
        for list in &mut adj {
            list.sort_unstable();
            let mut d = 0u32;
            let mut prev = VertexId::MAX;
            for a in list.iter() {
                if a.nbr != prev {
                    d += 1;
                    prev = a.nbr;
                }
            }
            degree.push(d);
        }
        let mut label_freq = FxHashMap::default();
        for &l in &self.labels {
            *label_freq.entry(l).or_insert(0) += 1;
        }
        let vertex_label_count = label_freq.len();
        let mut edge_labels: Vec<Label> =
            self.edges.iter().map(|e| e.label).filter(|&l| l != NO_LABEL).collect();
        edge_labels.sort_unstable();
        edge_labels.dedup();
        let directed_edge_count = self.edges.iter().filter(|e| e.directed).count();
        // Boundary invariant (deep form in `csce-analyze`): each edge
        // contributes exactly two adjacency entries and lists are strictly
        // sorted — equal entries would mean an undetected duplicate edge.
        debug_assert!(
            adj.iter().map(Vec::len).sum::<usize>() == 2 * self.edges.len()
                && adj.iter().all(|list| list.windows(2).all(|w| w[0] < w[1])),
            "adjacency must mirror the edge list with strictly sorted rows"
        );
        Graph {
            labels: self.labels,
            adj,
            edges: self.edges,
            degree,
            label_freq,
            vertex_label_count,
            edge_label_count: edge_labels.len(),
            directed_edge_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper's Fig. 1: 8-vertex pattern P.
    /// Labels: A=0, B=1, C=2, D=3.
    pub(crate) fn fig1_pattern() -> Graph {
        let mut b = GraphBuilder::new();
        // u1..u8 -> ids 0..7
        let labels = [0, 1, 2, 2, 1, 0, 3, 0]; // A B C C B A D A
        for &l in &labels {
            b.add_vertex(l);
        }
        // Directed edges of P (Fig. 1): u1→u2, u1→u3, u1→u6, u7→u1,
        // u2→u4, u5→u2, u6→u5, u6→u8.
        let edges = [(0, 1), (0, 2), (0, 5), (6, 0), (1, 3), (4, 1), (5, 4), (5, 7)];
        for (s, d) in edges {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn builds_fig1_pattern() {
        let p = fig1_pattern();
        assert_eq!(p.n(), 8);
        assert_eq!(p.m(), 8);
        assert_eq!(p.label(0), 0);
        assert_eq!(p.label(6), 3);
        assert!(p.is_connected());
        assert!(p.has_directed_edges());
        assert!(p.is_heterogeneous());
        assert_eq!(p.degree(0), 4); // u1 connects u2, u3, u6, u7
    }

    #[test]
    fn adjacency_is_sorted_and_queryable() {
        let p = fig1_pattern();
        let adj0 = p.adj(0);
        assert!(adj0.windows(2).all(|w| w[0] <= w[1]));
        assert!(p.connected(0, 1));
        assert!(!p.connected(0, 3));
        assert!(p.has_edge(0, 1, NO_LABEL, true));
        assert!(!p.has_edge(1, 0, NO_LABEL, true)); // direction matters
        assert!(!p.has_edge(0, 1, 7, true)); // label matters
    }

    #[test]
    fn undirected_edges_visible_from_both_sides() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_undirected_edge(1, 0, 5).unwrap();
        let g = b.build();
        assert!(g.has_edge(0, 1, 5, false));
        assert!(g.has_edge(1, 0, 5, false));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edges()[0].src, 0, "undirected edges canonicalize src<dst");
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(0);
        assert_eq!(b.add_edge(0, 0, NO_LABEL), Err(GraphError::SelfLoop(0)));
        assert_eq!(b.add_edge(0, 5, NO_LABEL), Err(GraphError::UnknownVertex(5)));
        b.add_edge(0, 1, NO_LABEL).unwrap();
        assert_eq!(b.add_edge(0, 1, 3), Err(GraphError::DuplicateEdge(0, 1)));
        // Antiparallel directed edge is allowed...
        b.add_edge(1, 0, NO_LABEL).unwrap();
        // ...but an undirected edge on the same pair is not.
        assert_eq!(b.add_undirected_edge(0, 1, 0), Err(GraphError::MixedEdgeKinds(0, 1)));
    }

    #[test]
    fn rejects_directed_over_undirected() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(0);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        assert_eq!(b.add_edge(0, 1, NO_LABEL), Err(GraphError::MixedEdgeKinds(0, 1)));
        assert_eq!(b.add_undirected_edge(1, 0, NO_LABEL), Err(GraphError::DuplicateEdge(1, 0)));
    }

    #[test]
    fn degree_counts_distinct_neighbors() {
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(0);
        }
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(1, 0, NO_LABEL).unwrap(); // antiparallel: same neighbor
        b.add_edge(0, 2, NO_LABEL).unwrap();
        let g = b.build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.adj(0).len(), 3);
        assert_eq!(g.out_arcs(0), 2);
        assert_eq!(g.in_arcs(0), 1);
    }

    #[test]
    fn unlabeled_graph_reports_zero_labels() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(2, 3, NO_LABEL).unwrap();
        let g = b.build();
        assert_eq!(g.vertex_label_count(), 0);
        assert_eq!(g.edge_label_count(), 0);
        assert!(!g.is_heterogeneous());
        assert!(!g.is_connected());
    }

    #[test]
    fn relabeling_preserves_structure() {
        let p = fig1_pattern();
        let g = p.with_vertex_labels(vec![9; 8]);
        assert_eq!(g.n(), p.n());
        assert_eq!(g.m(), p.m());
        assert_eq!(g.label(3), 9);
        assert_eq!(g.vertex_label_count(), 1);
    }

    #[test]
    fn edges_between_finds_all_parallel_arcs() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_edge(0, 1, 10).unwrap();
        b.add_edge(1, 0, 11).unwrap();
        let g = b.build();
        let between = g.edges_between(0, 1);
        assert_eq!(between.len(), 2);
        assert_eq!(g.edges_between(1, 0).len(), 2);
        assert!(between.iter().any(|a| a.orient == Orient::Out && a.elabel == 10));
        assert!(between.iter().any(|a| a.orient == Orient::In && a.elabel == 11));
    }

    #[test]
    fn average_degree() {
        let p = fig1_pattern();
        assert!((p.average_degree() - 2.0).abs() < 1e-9);
    }
}
