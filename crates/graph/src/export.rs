//! Graphviz DOT export, for eyeballing patterns and small data graphs.

use crate::graph::Graph;
use crate::NO_LABEL;
use std::fmt::Write as _;

/// Render a graph in DOT format. Vertex labels become `label="id:l"`;
/// edge labels annotate edges; undirected edges use `dir=none` so one
/// digraph carries both kinds.
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for v in 0..g.n() as u32 {
        let l = g.label(v);
        if l == NO_LABEL {
            let _ = writeln!(out, "  v{v} [label=\"{v}\"];");
        } else {
            let _ = writeln!(out, "  v{v} [label=\"{v}:{l}\"];");
        }
    }
    for e in g.edges() {
        let mut attrs: Vec<String> = Vec::new();
        if e.label != NO_LABEL {
            attrs.push(format!("label=\"{}\"", e.label));
        }
        if !e.directed {
            attrs.push("dir=none".to_string());
        }
        let attr_str =
            if attrs.is_empty() { String::new() } else { format!(" [{}]", attrs.join(", ")) };
        let _ = writeln!(out, "  v{} -> v{}{attr_str};", e.src, e.dst);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn dot_includes_all_elements() {
        let mut b = GraphBuilder::new();
        b.add_vertex(3);
        b.add_vertex(NO_LABEL);
        b.add_edge(0, 1, 7).unwrap();
        let g1 = b.build();
        let dot = to_dot(&g1, "p");
        assert!(dot.starts_with("digraph p {"));
        assert!(dot.contains("v0 [label=\"0:3\"];"));
        assert!(dot.contains("v1 [label=\"1\"];"));
        assert!(dot.contains("v0 -> v1 [label=\"7\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn undirected_edges_marked_dir_none() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(2);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        let dot = to_dot(&b.build(), "u");
        assert!(dot.contains("v0 -> v1 [dir=none];"));
    }
}
