//! A tiny textual pattern language, so queries can be written inline
//! instead of as edge-list files.
//!
//! ```text
//! (a:0)-[5]->(b:1), (b)--(c:2), (c)<-(a)
//! ```
//!
//! * `(name)` or `(name:label)` declares a pattern vertex; the label is a
//!   non-negative integer, omitted means unlabeled ([`NO_LABEL`]). A name
//!   is declared once with its label and referenced afterwards.
//! * `->` / `<-` are directed edges, `--` undirected.
//! * an optional `[elabel]` between the dashes labels the edge:
//!   `-[3]->`, `<-[3]-`, `-[3]-`.
//! * edges are separated by commas; whitespace is free.
//!
//! The grammar is deliberately close to Cypher's ASCII-art patterns, the
//! lingua franca of the graph databases (Kùzu, Neo4j) the paper situates
//! itself against.

use crate::graph::{Graph, GraphBuilder};
use crate::util::FxHashMap;
use crate::{Label, VertexId, NO_LABEL};

/// Errors from [`parse_pattern`].
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern expression into a [`Graph`].
pub fn parse_pattern(input: &str) -> Result<Graph, ParseError> {
    let mut p = ParserImpl::new(input);
    p.parse()
}

/// Render a graph back into the pattern language: every vertex is first
/// declared in id order (pinning the id assignment, which follows first
/// appearance), then one clause per edge. Parsing the output reproduces
/// the graph exactly — labels, edge labels, directions, and ids.
pub fn to_query_string(g: &Graph) -> String {
    let mut out = String::new();
    for v in 0..g.n() as VertexId {
        if v > 0 {
            out.push_str(", ");
        }
        let l = g.label(v);
        if l == NO_LABEL {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("(v{v})"));
        } else {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("(v{v}:{l})"));
        }
    }
    for e in g.edges() {
        let label_part = if e.label == NO_LABEL { String::new() } else { format!("[{}]", e.label) };
        let arrow = if e.directed { format!("-{label_part}->") } else { format!("-{label_part}-") };
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(", (v{}){}(v{})", e.src, arrow, e.dst),
        );
    }
    out
}

/// Actual parser implementation (see module docs for the grammar).
struct ParserImpl<'a> {
    input: &'a str,
    pos: usize,
    builder: GraphBuilder,
    names: FxHashMap<String, VertexId>,
    labels: Vec<Label>,
}

impl<'a> ParserImpl<'a> {
    fn new(input: &'a str) -> Self {
        ParserImpl {
            input,
            pos: 0,
            builder: GraphBuilder::new(),
            names: FxHashMap::default(),
            labels: Vec::new(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_number(&mut self) -> Result<Label, ParseError> {
        let digits: String = self.rest().chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            return self.err("expected a number");
        }
        self.pos += digits.len();
        digits.parse::<Label>().map_err(|_| ParseError {
            at: self.pos,
            message: format!("label {digits:?} out of range"),
        })
    }

    fn parse_vertex(&mut self) -> Result<VertexId, ParseError> {
        self.skip_ws();
        if !self.eat("(") {
            return self.err("expected '(' starting a vertex");
        }
        self.skip_ws();
        let name: String =
            self.rest().chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            return self.err("expected a vertex name");
        }
        self.pos += name.len();
        self.skip_ws();
        let label = if self.eat(":") {
            self.skip_ws();
            Some(self.parse_number()?)
        } else {
            None
        };
        self.skip_ws();
        if !self.eat(")") {
            return self.err("expected ')' closing a vertex");
        }
        match (self.names.get(&name).copied(), label) {
            (Some(id), None) => Ok(id),
            (Some(id), Some(l)) if self.labels[id as usize] == l => Ok(id),
            (Some(_), Some(_)) => {
                self.err(format!("vertex {name:?} re-declared with a different label"))
            }
            (None, label) => {
                let l = label.unwrap_or(NO_LABEL);
                let id = self.builder.add_vertex(l);
                self.labels.push(l);
                self.names.insert(name, id);
                Ok(id)
            }
        }
    }

    /// One of `-[l]->`, `<-[l]-`, `-[l]-` (label part optional).
    /// Returns `(elabel, direction)`: direction -1 = left, 0 = undirected,
    /// 1 = right.
    fn parse_edge(&mut self) -> Result<(Label, i8), ParseError> {
        self.skip_ws();
        let leftward = self.eat("<-");
        if !leftward && !self.eat("-") {
            return self.err("expected an edge ('-', '<-')");
        }
        self.skip_ws();
        let elabel = if self.eat("[") {
            self.skip_ws();
            let l = self.parse_number()?;
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']' closing an edge label");
            }
            self.skip_ws();
            l
        } else {
            NO_LABEL
        };
        if leftward {
            // `<--` / `<-[l]-`, or the single-dash `<-` directly before a
            // vertex.
            if !self.eat("-") && !self.rest().starts_with('(') {
                return self.err("expected '-' or a vertex completing '<-'");
            }
            return Ok((elabel, -1));
        }
        if self.eat("->") {
            Ok((elabel, 1))
        } else if self.eat("-") || self.rest().starts_with('(') {
            // '--' form, or a single '-' directly before a vertex.
            Ok((elabel, 0))
        } else {
            self.err("expected '->', '-' or a vertex completing an edge")
        }
    }

    fn parse(&mut self) -> Result<Graph, ParseError> {
        loop {
            let mut prev = self.parse_vertex()?;
            // A chain: (a)-(b)->(c)...
            loop {
                self.skip_ws();
                if self.rest().starts_with(',') || self.rest().is_empty() {
                    break;
                }
                let (elabel, dir) = self.parse_edge()?;
                let next = self.parse_vertex()?;
                let result = match dir {
                    1 => self.builder.add_edge(prev, next, elabel),
                    -1 => self.builder.add_edge(next, prev, elabel),
                    _ => self.builder.add_undirected_edge(prev, next, elabel),
                };
                if let Err(e) = result {
                    return self.err(e.to_string());
                }
                prev = next;
            }
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        self.skip_ws();
        if !self.rest().is_empty() {
            return self.err("trailing input");
        }
        Ok(std::mem::take(&mut self.builder).build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Orient;

    #[test]
    fn parses_labeled_directed_chain() {
        let p = parse_pattern("(a:0)-[5]->(b:1)-[6]->(c:2)").unwrap();
        assert_eq!(p.n(), 3);
        assert_eq!(p.m(), 2);
        assert_eq!(p.label(0), 0);
        assert_eq!(p.label(2), 2);
        assert!(p.has_edge(0, 1, 5, true));
        assert!(p.has_edge(1, 2, 6, true));
    }

    #[test]
    fn parses_undirected_and_leftward() {
        let p = parse_pattern("(a)--(b), (c)<-(a)").unwrap();
        assert_eq!(p.n(), 3);
        assert!(p.has_edge(0, 1, NO_LABEL, false));
        assert!(p.has_edge(0, 2, NO_LABEL, true), "(c)<-(a) is a -> c");
    }

    #[test]
    fn leftward_with_edge_label() {
        let p = parse_pattern("(x:1)<-[9]-(y:2)").unwrap();
        assert!(p.has_edge(1, 0, 9, true));
        assert_eq!(p.adj(0)[0].orient, Orient::In);
    }

    #[test]
    fn reuses_named_vertices_to_close_cycles() {
        let p = parse_pattern("(a)-(b)-(c)-(a)").unwrap();
        assert_eq!(p.n(), 3);
        assert_eq!(p.m(), 3);
        assert!(p.connected(0, 2));
    }

    #[test]
    fn relabeling_conflicts_rejected() {
        assert!(parse_pattern("(a:1)-(b), (a:2)-(b)").is_err());
        // Same label re-declared is fine.
        assert!(parse_pattern("(a:1)--(b), (a:1)--(c)").is_ok());
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse_pattern("(a:1)-").unwrap_err();
        assert!(e.message.contains("expected"), "{e}");
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("(a)-(a)").is_err(), "self loop rejected by builder");
        assert!(parse_pattern("(a)-(b) trailing").is_err());
        assert!(parse_pattern("(a)-(b)-(a)-(b)").is_err(), "duplicate edge");
    }

    #[test]
    fn writer_roundtrips() {
        let inputs = [
            "(a:0)-[5]->(b:1)-[6]->(c:2)",
            "(a)--(b), (b)--(c), (c)--(a)",
            "(x:1)<-[9]-(y:2)",
            "(a:3)-->(b:3), (b)-[1]-(c:4)",
        ];
        for input in inputs {
            let g = parse_pattern(input).unwrap();
            let rendered = to_query_string(&g);
            let back = parse_pattern(&rendered)
                .unwrap_or_else(|e| panic!("rendered {rendered:?} failed to parse: {e}"));
            assert_eq!(back.labels(), g.labels(), "{input} -> {rendered}");
            assert_eq!(back.edges(), g.edges(), "{input} -> {rendered}");
        }
    }

    #[test]
    fn writer_emits_isolated_vertices() {
        let mut b = GraphBuilder::new();
        b.add_vertex(7);
        let g = b.build();
        let rendered = to_query_string(&g);
        assert_eq!(rendered, "(v0:7)");
        let back = parse_pattern(&rendered).unwrap();
        assert_eq!(back.labels(), g.labels());
    }

    #[test]
    fn whitespace_is_free() {
        let p = parse_pattern("  ( a : 3 )  - [ 7 ] ->  ( b )  ").unwrap();
        assert_eq!(p.label(0), 3);
        assert!(p.has_edge(0, 1, 7, true));
    }
}
