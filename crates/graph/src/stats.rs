//! Dataset statistics — the columns of Table IV in the paper.

use crate::graph::Graph;

/// Summary statistics of a data graph, matching Table IV's columns.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `U` (all edges undirected) or `D` (some edge directed).
    pub directed: bool,
    pub vertex_count: usize,
    pub edge_count: usize,
    /// Distinct vertex labels; zero for unlabeled graphs.
    pub label_count: usize,
    pub average_degree: f64,
    pub max_in_degree: usize,
    pub max_out_degree: usize,
}

impl GraphStats {
    /// Compute the Table IV row for a graph.
    pub fn of(g: &Graph) -> GraphStats {
        let mut max_in = 0usize;
        let mut max_out = 0usize;
        for v in 0..g.n() as u32 {
            max_in = max_in.max(g.in_arcs(v));
            max_out = max_out.max(g.out_arcs(v));
        }
        GraphStats {
            directed: g.has_directed_edges(),
            vertex_count: g.n(),
            edge_count: g.m(),
            label_count: g.vertex_label_count(),
            average_degree: g.average_degree(),
            max_in_degree: max_in,
            max_out_degree: max_out,
        }
    }

    /// The `U`/`D` edge-direction tag used by Table IV.
    pub fn direction_tag(&self) -> &'static str {
        if self.directed {
            "D"
        } else {
            "U"
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} |V|={} |E|={} labels={} avg_deg={:.1} max_in={} max_out={}",
            self.direction_tag(),
            self.vertex_count,
            self.edge_count,
            self.label_count,
            self.average_degree,
            self.max_in_degree,
            self.max_out_degree,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::NO_LABEL;

    #[test]
    fn undirected_star_stats() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(5);
        for i in 1..5 {
            b.add_undirected_edge(0, i, NO_LABEL).unwrap();
        }
        let s = GraphStats::of(&b.build());
        assert_eq!(s.direction_tag(), "U");
        assert_eq!(s.vertex_count, 5);
        assert_eq!(s.edge_count, 4);
        assert_eq!(s.label_count, 0);
        // For undirected graphs max in == max out, as in Table IV.
        assert_eq!(s.max_in_degree, 4);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.average_degree - 1.6).abs() < 1e-9);
    }

    #[test]
    fn directed_stats_distinguish_in_out() {
        let mut b = GraphBuilder::new();
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_vertex(2);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(0, 2, NO_LABEL).unwrap();
        b.add_edge(1, 2, NO_LABEL).unwrap();
        let s = GraphStats::of(&b.build());
        assert_eq!(s.direction_tag(), "D");
        assert_eq!(s.label_count, 2);
        assert_eq!(s.max_out_degree, 2); // vertex 0
        assert_eq!(s.max_in_degree, 2); // vertex 2
        let display = s.to_string();
        assert!(display.contains("|V|=3"));
    }
}
