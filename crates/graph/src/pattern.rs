//! Pattern-graph analysis helpers.
//!
//! Patterns are ordinary [`Graph`]s; this module adds the derived views the
//! planner and the evaluation need: density classification (RapidMatch's
//! dense/sparse split used throughout the paper's workloads), undirected
//! neighbor lists, and the pair code used for exact variant checks.

use crate::graph::{Graph, Orient};
use crate::{Label, VertexId};

/// RapidMatch / CSCE density classes: a pattern is *dense* when its average
/// degree is greater than two, otherwise *sparse* (§VII, "Patterns").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Density {
    Dense,
    Sparse,
}

impl Density {
    /// The letter used in workload names such as `D32` / `S16`.
    pub fn letter(self) -> char {
        match self {
            Density::Dense => 'D',
            Density::Sparse => 'S',
        }
    }
}

/// Classify a pattern per the paper's density definition.
pub fn classify_density(p: &Graph) -> Density {
    if p.average_degree() > 2.0 {
        Density::Dense
    } else {
        Density::Sparse
    }
}

/// Distinct neighbors of `u` ignoring edge direction, ascending.
pub fn undirected_neighbors(p: &Graph, u: VertexId) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = p.adj(u).iter().map(|a| a.nbr).collect();
    out.dedup(); // adjacency is sorted by nbr
    out
}

/// A direction- and label-normalized description of the edges between an
/// *ordered* pair `(a, b)`: one entry per edge, `(relative orient, label)`
/// where the orientation is seen from `a`. Sorted so pair codes compare
/// structurally.
///
/// Two vertex pairs match under isomorphism exactly when their codes are
/// equal; under edge-induced / homomorphic semantics the pattern pair's code
/// must be a subset of the data pair's code.
pub fn pair_code(g: &Graph, a: VertexId, b: VertexId) -> Vec<(Orient, Label)> {
    let mut code: Vec<(Orient, Label)> =
        g.edges_between(a, b).iter().map(|x| (x.orient, x.elabel)).collect();
    code.sort_unstable();
    code
}

/// `true` when every edge in `sub` also appears in `sup` (both produced by
/// [`pair_code`], i.e. sorted).
pub fn code_subset(sub: &[(Orient, Label)], sup: &[(Orient, Label)]) -> bool {
    let mut j = 0usize;
    for item in sub {
        while j < sup.len() && sup[j] < *item {
            j += 1;
        }
        if j >= sup.len() || sup[j] != *item {
            return false;
        }
        j += 1;
    }
    true
}

/// The core number of every vertex (the largest `k` such that the vertex
/// belongs to the `k`-core — the maximal subgraph with all degrees ≥ k),
/// via the standard peeling algorithm. Dense regions (high core numbers)
/// are where dense patterns live, which guides sampling and the paper's
/// density discussion (Fig. 14 (b)).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut degree: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let mut core = vec![0u32; n];
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    // Peel minimum-degree vertices; a simple binary-heap-free variant
    // using bucket sort over degrees.
    order.sort_unstable_by_key(|&v| degree[v as usize]);
    let mut removed = vec![false; n];
    let mut k = 0u32;
    // Re-sorted simple peel: O(n^2) worst via repeated min-scan is too
    // slow; use bucket queues.
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as VertexId {
        buckets[degree[v as usize] as usize].push(v);
    }
    let mut cursor = 0usize;
    let mut processed = 0usize;
    while processed < n {
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Every unprocessed vertex sits in some bucket at or above the
        // cursor, so this only misses if the invariant is broken — stop
        // with the peel done so far rather than panicking.
        let Some(v) = buckets.get_mut(cursor).and_then(Vec::pop) else { break };
        if removed[v as usize] {
            continue;
        }
        // Stale entry check: the vertex may have been re-bucketed.
        if (degree[v as usize] as usize) != cursor {
            continue;
        }
        removed[v as usize] = true;
        processed += 1;
        k = k.max(degree[v as usize]);
        core[v as usize] = k;
        let mut seen_nbrs: Vec<VertexId> = g.adj(v).iter().map(|a| a.nbr).collect();
        seen_nbrs.dedup();
        for w in seen_nbrs {
            if !removed[w as usize] && degree[w as usize] > 0 {
                degree[w as usize] -= 1;
                let d = degree[w as usize] as usize;
                buckets[d].push(w);
                cursor = cursor.min(d);
            }
        }
    }
    let _ = order;
    core
}

/// Extract the vertex-induced subgraph over `vertices` (all data edges
/// among them), with vertices renumbered densely in the given order.
/// Returns the subgraph and the mapping `local id -> original id`.
pub fn induced_subgraph(g: &Graph, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
    use crate::graph::{GraphBuilder, Orient};
    let mut local: crate::FxHashMap<VertexId, VertexId> = crate::FxHashMap::default();
    let mut b = GraphBuilder::with_capacity(vertices.len(), vertices.len() * 2);
    for (i, &v) in vertices.iter().enumerate() {
        assert!(local.insert(v, i as VertexId).is_none(), "duplicate vertex {v} in induced set");
        b.add_vertex(g.label(v));
    }
    for &v in vertices {
        let lv = local[&v];
        for a in g.adj(v) {
            let Some(&lw) = local.get(&a.nbr) else { continue };
            match a.orient {
                Orient::Out => {
                    let _ = b.add_edge(lv, lw, a.elabel);
                }
                Orient::Und if lv < lw => {
                    let _ = b.add_undirected_edge(lv, lw, a.elabel);
                }
                _ => {} // In / second undirected endpoint: seen from the other side
            }
        }
    }
    (b.build(), vertices.to_vec())
}

/// An isomorphism-invariant code of a graph via 1-WL color refinement.
///
/// Isomorphic graphs always produce equal codes; unequal codes therefore
/// prove non-isomorphism. The converse does not hold in general (1-WL
/// cannot separate some regular graphs), so this is a *dedup key* for
/// sampled pattern workloads — not a complete canonical form. Labels,
/// edge labels and directions all feed the refinement.
pub fn wl_code(g: &Graph, rounds: usize) -> Vec<u64> {
    use crate::util::FxHasher;
    use std::hash::{Hash, Hasher};
    let n = g.n();
    let hash_one = |value: &dyn Fn(&mut FxHasher)| -> u64 {
        let mut h = FxHasher::default();
        value(&mut h);
        h.finish()
    };
    // Initial colors: vertex labels.
    let mut color: Vec<u64> =
        (0..n as VertexId).map(|v| hash_one(&|h: &mut FxHasher| g.label(v).hash(h))).collect();
    for _ in 0..rounds.max(1) {
        let mut next = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            let mut nbr_sig: Vec<(u8, Label, u64)> = g
                .adj(v)
                .iter()
                .map(|a| (a.orient as u8, a.elabel, color[a.nbr as usize]))
                .collect();
            nbr_sig.sort_unstable();
            next.push(hash_one(&|h: &mut FxHasher| {
                color[v as usize].hash(h);
                nbr_sig.hash(h);
            }));
        }
        color = next;
    }
    color.sort_unstable();
    color
}

/// Deduplicate a pattern list up to (1-WL-detectable) isomorphism,
/// keeping first occurrences. Used to keep sampled workloads diverse.
pub fn dedup_patterns(patterns: Vec<Graph>, rounds: usize) -> Vec<Graph> {
    let mut seen: crate::FxHashSet<Vec<u64>> = crate::FxHashSet::default();
    patterns.into_iter().filter(|p| seen.insert(wl_code(p, rounds))).collect()
}

/// The number of unconnected vertex pairs `h = |V|(|V|-1)/2 - (pairs with an
/// edge)`, which bounds the negation clusters needed for vertex-induced SM
/// (§IV).
pub fn unconnected_pair_count(p: &Graph) -> usize {
    let n = p.n();
    let mut connected_pairs = 0usize;
    for a in 0..n as VertexId {
        connected_pairs += undirected_neighbors(p, a).iter().filter(|&&b| b > a).count();
    }
    n * n.saturating_sub(1) / 2 - connected_pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::NO_LABEL;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n - 1 {
            b.add_undirected_edge(i as VertexId, i as VertexId + 1, NO_LABEL).unwrap();
        }
        b.build()
    }

    fn clique(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(n);
        for i in 0..n {
            for j in i + 1..n {
                b.add_undirected_edge(i as VertexId, j as VertexId, NO_LABEL).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn density_classification() {
        assert_eq!(classify_density(&path(8)), Density::Sparse);
        assert_eq!(classify_density(&clique(4)), Density::Dense);
        assert_eq!(Density::Dense.letter(), 'D');
        assert_eq!(Density::Sparse.letter(), 'S');
    }

    #[test]
    fn undirected_neighbors_dedupes_antiparallel() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(1, 0, NO_LABEL).unwrap();
        b.add_edge(2, 0, NO_LABEL).unwrap();
        let g = b.build();
        assert_eq!(undirected_neighbors(&g, 0), vec![1, 2]);
    }

    #[test]
    fn pair_codes_and_subset() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(2);
        b.add_edge(0, 1, 3).unwrap();
        b.add_edge(1, 0, 4).unwrap();
        let g = b.build();
        let fwd = pair_code(&g, 0, 1);
        let bwd = pair_code(&g, 1, 0);
        assert_eq!(fwd, vec![(Orient::Out, 3), (Orient::In, 4)]);
        assert_eq!(bwd, vec![(Orient::Out, 4), (Orient::In, 3)]);
        assert!(code_subset(&[(Orient::Out, 3)], &fwd));
        assert!(!code_subset(&[(Orient::Out, 4)], &fwd));
        assert!(code_subset(&[], &fwd));
        assert!(!code_subset(&fwd, &[]));
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        // A clique K4 is its own 3-core.
        assert_eq!(core_numbers(&clique(4)), vec![3, 3, 3, 3]);
        // A path: everything is 1-core.
        assert_eq!(core_numbers(&path(5)), vec![1; 5]);
        // Triangle with a pendant: triangle vertices core 2, pendant 1.
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(4);
        for (x, y) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let cores = core_numbers(&b.build());
        assert_eq!(cores, vec![2, 2, 2, 1]);
    }

    #[test]
    fn core_numbers_satisfy_the_core_property_on_random_graphs() {
        for seed in 0..5 {
            let g = crate::generate::erdos_renyi(60, 150, 0, 0, false, seed);
            let core = core_numbers(&g);
            // Defining property: within the subgraph of vertices with
            // core >= k, every vertex has >= k neighbors.
            for v in 0..g.n() as VertexId {
                let k = core[v as usize];
                let strong_nbrs =
                    undirected_neighbors(&g, v).iter().filter(|&&w| core[w as usize] >= k).count();
                assert!(
                    strong_nbrs as u32 >= k,
                    "seed {seed}: v{v} core {k} but only {strong_nbrs} strong neighbors"
                );
            }
        }
    }

    #[test]
    fn core_numbers_on_empty_and_isolated() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        assert_eq!(core_numbers(&b.build()), vec![1, 1, 0]);
    }

    #[test]
    fn induced_subgraph_extraction() {
        // Paw: triangle 0-1-2 plus pendant 3 on vertex 2.
        let mut b = GraphBuilder::new();
        for l in [5u32, 6, 7, 8] {
            b.add_vertex(l);
        }
        for (x, y) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            b.add_undirected_edge(x, y, NO_LABEL).unwrap();
        }
        let g = b.build();
        let (sub, map) = induced_subgraph(&g, &[2, 0, 1]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3, "the triangle's edges survive");
        assert_eq!(sub.label(0), 7, "vertex order respected");
        assert_eq!(map, vec![2, 0, 1]);
        let (pendant, _) = induced_subgraph(&g, &[0, 3]);
        assert_eq!(pendant.m(), 0, "0 and 3 are not adjacent");
    }

    #[test]
    fn induced_subgraph_keeps_directions() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_edge(0, 1, 4).unwrap();
        b.add_edge(2, 0, 5).unwrap();
        let g = b.build();
        let (sub, _) = induced_subgraph(&g, &[1, 0]);
        assert_eq!(sub.m(), 1);
        assert!(sub.has_edge(1, 0, 4, true), "direction and label preserved");
    }

    #[test]
    fn wl_code_is_isomorphism_invariant() {
        // The same labeled wedge built with two different vertex orders.
        let mut a = GraphBuilder::new();
        a.add_vertex(1);
        a.add_vertex(2);
        a.add_vertex(1);
        a.add_edge(0, 1, 7).unwrap();
        a.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let a = a.build();
        let mut b = GraphBuilder::new();
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(1, 2, 7).unwrap();
        b.add_undirected_edge(2, 0, NO_LABEL).unwrap();
        let b = b.build();
        assert_eq!(wl_code(&a, 3), wl_code(&b, 3));
    }

    #[test]
    fn wl_code_separates_structures() {
        assert_ne!(wl_code(&path(4), 3), wl_code(&clique(4), 3));
        assert_ne!(wl_code(&path(4), 3), wl_code(&path(5), 3));
        // Direction matters: a->b vs b->a with distinct labels.
        let mut f = GraphBuilder::new();
        f.add_vertex(1);
        f.add_vertex(2);
        f.add_edge(0, 1, NO_LABEL).unwrap();
        let mut r = GraphBuilder::new();
        r.add_vertex(1);
        r.add_vertex(2);
        r.add_edge(1, 0, NO_LABEL).unwrap();
        assert_ne!(wl_code(&f.build(), 2), wl_code(&r.build(), 2));
    }

    #[test]
    fn dedup_drops_isomorphic_duplicates() {
        let patterns = vec![path(4), clique(3), path(4), path(3)];
        let unique = dedup_patterns(patterns, 3);
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn unconnected_pairs() {
        assert_eq!(unconnected_pair_count(&clique(4)), 0);
        assert_eq!(unconnected_pair_count(&path(4)), 3); // (0,2),(0,3),(1,3)
    }
}
