//! The FxHash algorithm (as used by rustc): extremely fast for the small
//! integer keys (vertex ids, cluster keys) that dominate this workspace.
//! Implemented here so the workspace only depends on the sanctioned crate
//! set; semantics match the `rustc-hash` crate.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, DoS-unsafe hasher for in-memory indexes.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn byte_tail_handled() {
        // Writes that are not multiples of 8 bytes must still hash.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9]), hash_of(&[0u8; 10]));
    }
}
