//! Small utilities shared across the workspace: a fast non-cryptographic
//! hasher (the FxHash algorithm used throughout rustc) and sorted-slice
//! set operations that the matching engines lean on.

mod fxhash;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

/// Intersect two ascending sorted slices into `out` (cleared first).
///
/// Uses galloping when the sizes are lopsided, which matters when
/// intersecting a small candidate set against a large adjacency list.
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    // Galloping pays off roughly when one side is 8x+ larger.
    if large.len() / small.len().max(1) >= 8 {
        let mut lo = 0usize;
        for &x in small {
            lo += gallop(&large[lo..], x);
            if lo < large.len() && large[lo] == x {
                out.push(x);
                lo += 1;
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Remove from the ascending sorted `a` (in place) every element present in
/// the ascending sorted `b`. Used for vertex-induced negation.
pub fn subtract_sorted(a: &mut Vec<u32>, b: &[u32]) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let mut j = 0usize;
    a.retain(|&x| {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        !(j < b.len() && b[j] == x)
    });
}

/// Index of the first element `>= x` in the ascending sorted slice, found by
/// exponential probing followed by binary search.
fn gallop(slice: &[u32], x: u32) -> usize {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi - 1] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(slice.len());
    lo + slice[lo..hi].partition_point(|&v| v < x)
}

/// Binary-search membership test on an ascending sorted slice.
#[inline]
pub fn contains_sorted(slice: &[u32], x: u32) -> bool {
    slice.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn intersect_basic() {
        let mut out = Vec::new();
        intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn intersect_empty_sides() {
        let mut out = vec![99];
        intersect_sorted(&[], &[1, 2], &mut out);
        assert!(out.is_empty());
        intersect_sorted(&[1, 2], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_galloping_path() {
        let small = [5u32, 500, 5000, 50_000];
        let large: Vec<u32> = (0..60_000).collect();
        let mut out = Vec::new();
        intersect_sorted(&small, &large, &mut out);
        assert_eq!(out, small);
        // And with a miss at each end.
        let small = [0u32, 70_000];
        let large: Vec<u32> = (1..60_000).collect();
        intersect_sorted(&small, &large, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_matches_naive_on_random_inputs() {
        let mut seed = 0x9e3779b9u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..100).map(|_| next() % 200).collect();
            let mut b: Vec<u32> = (0..30).map(|_| next() % 200).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut out = Vec::new();
            intersect_sorted(&a, &b, &mut out);
            assert_eq!(out, naive_intersect(&a, &b));
        }
    }

    #[test]
    fn subtract_basic() {
        let mut a = vec![1, 2, 3, 4, 5];
        subtract_sorted(&mut a, &[2, 4, 6]);
        assert_eq!(a, vec![1, 3, 5]);
    }

    #[test]
    fn subtract_disjoint_and_superset() {
        let mut a = vec![1, 3];
        subtract_sorted(&mut a, &[0, 2, 4]);
        assert_eq!(a, vec![1, 3]);
        subtract_sorted(&mut a, &[1, 3]);
        assert!(a.is_empty());
    }

    #[test]
    fn contains_sorted_works() {
        assert!(contains_sorted(&[1, 4, 9], 4));
        assert!(!contains_sorted(&[1, 4, 9], 5));
        assert!(!contains_sorted(&[], 5));
    }
}
