//! # csce-graph
//!
//! Heterogeneous graph substrate for the CSCE subgraph matching engine.
//!
//! This crate provides everything the engine and its evaluation need from a
//! graph library, built from scratch:
//!
//! * [`Graph`] — an immutable heterogeneous graph with vertex labels, edge
//!   labels, and per-edge direction (an undirected edge is modelled, as in
//!   the paper, as a pair of directed arcs that always travel together);
//! * [`GraphBuilder`] — validated construction (no self loops, no duplicate
//!   edges) from edge lists;
//! * [`io`] — plain-text readers/writers for our labeled format and the
//!   `.graph` format used by VEQ / RapidMatch;
//! * [`generate`] — deterministic random-graph generators (Erdős–Rényi,
//!   Chung–Lu power law, road lattices, planted partitions) used by the
//!   dataset crate;
//! * [`sample`] — pattern sampling from data graphs with density control,
//!   mirroring how RapidMatch / VEQ / GuP produce query workloads;
//! * [`oracle`] — a brute-force matcher for all three subgraph matching
//!   variants, used as the ground-truth oracle in tests;
//! * [`automorphism`] — automorphism counting for symmetry-breaking
//!   comparisons;
//! * [`stats`] — the dataset statistics reported in Table IV of the paper.

#![forbid(unsafe_code)]

pub mod automorphism;
pub mod export;
pub mod generate;
pub mod graph;
pub mod io;
pub mod oracle;
pub mod pattern;
pub mod query;
pub mod sample;
pub mod stats;
pub mod util;

pub use graph::{Adj, Edge, Graph, GraphBuilder, Orient};
pub use oracle::{oracle_count, oracle_embeddings};
pub use pattern::{classify_density, Density};
pub use stats::GraphStats;
pub use util::{FxHashMap, FxHashSet};

/// Identifier of a vertex within a [`Graph`]. Vertices are dense integers
/// `0..n`, which lets every index structure in the engine be a flat array.
pub type VertexId = u32;

/// A vertex or edge label. Labels are dense small integers managed by the
/// caller; [`NO_LABEL`] stands for the paper's `NULL` (unlabeled) edge label.
pub type Label = u32;

/// The `NULL` label: unlabeled edges and unlabeled vertices carry this value
/// in cluster identifiers. Stored as the maximum label id so real labels can
/// stay dense starting from zero.
pub const NO_LABEL: Label = u32::MAX;

/// The three subgraph matching variants the engine supports (θ in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Variant {
    /// Non-induced / monomorphism: injective mapping, pattern edges must be
    /// present, extra data edges among mapped vertices are allowed.
    #[default]
    EdgeInduced,
    /// Induced: injective mapping and the mapped vertices' induced subgraph
    /// must be exactly isomorphic to the pattern (no extra data edges).
    VertexInduced,
    /// Homomorphism: pattern edges must be present but the mapping need not
    /// be injective.
    Homomorphic,
}

impl Variant {
    /// Whether this variant requires the mapping to be injective.
    #[inline]
    pub fn injective(self) -> bool {
        !matches!(self, Variant::Homomorphic)
    }

    /// All variants, for exhaustive test sweeps.
    pub const ALL: [Variant; 3] =
        [Variant::EdgeInduced, Variant::VertexInduced, Variant::Homomorphic];

    /// The single-letter tag the paper uses in Table III.
    pub fn tag(self) -> &'static str {
        match self {
            Variant::EdgeInduced => "E",
            Variant::VertexInduced => "V",
            Variant::Homomorphic => "H",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Variant::EdgeInduced => "edge-induced",
            Variant::VertexInduced => "vertex-induced",
            Variant::Homomorphic => "homomorphic",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_tags_match_paper_table3() {
        assert_eq!(Variant::EdgeInduced.tag(), "E");
        assert_eq!(Variant::VertexInduced.tag(), "V");
        assert_eq!(Variant::Homomorphic.tag(), "H");
    }

    #[test]
    fn injectivity_only_relaxed_for_homomorphism() {
        assert!(Variant::EdgeInduced.injective());
        assert!(Variant::VertexInduced.injective());
        assert!(!Variant::Homomorphic.injective());
    }

    #[test]
    fn display_names() {
        assert_eq!(Variant::EdgeInduced.to_string(), "edge-induced");
        assert_eq!(Variant::VertexInduced.to_string(), "vertex-induced");
        assert_eq!(Variant::Homomorphic.to_string(), "homomorphic");
    }
}
