//! Pattern sampling from data graphs.
//!
//! The paper follows RapidMatch / VEQ / GuP and generates query workloads by
//! sampling connected subgraphs of the data graph (§VII "Patterns"):
//! *dense* patterns (average degree > 2) keep all induced edges of a random
//! walk region, *sparse* patterns keep a spanning tree. Sampling from the
//! data graph guarantees at least one embedding exists.

use crate::graph::{Graph, GraphBuilder};
use crate::pattern::{classify_density, Density};
use crate::util::FxHashMap;
use crate::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled pattern together with the data vertices it was lifted from
/// (`image[i]` is the data vertex behind pattern vertex `i`), which is
/// itself an embedding witness.
#[derive(Clone, Debug)]
pub struct SampledPattern {
    pub pattern: Graph,
    pub image: Vec<VertexId>,
}

/// Samples patterns of requested size and density from a data graph.
pub struct PatternSampler<'g> {
    g: &'g Graph,
    rng: StdRng,
    /// Attempts before giving up on one `sample` call.
    pub max_attempts: usize,
}

impl<'g> PatternSampler<'g> {
    pub fn new(g: &'g Graph, seed: u64) -> Self {
        PatternSampler { g, rng: StdRng::seed_from_u64(seed), max_attempts: 200 }
    }

    /// Sample one connected pattern with `size` vertices of the requested
    /// density class. Returns `None` when the data graph cannot yield one
    /// (e.g. dense patterns from a tree-like region) within the attempt
    /// budget.
    pub fn sample(&mut self, size: usize, density: Density) -> Option<SampledPattern> {
        assert!(size >= 2, "patterns need at least two vertices");
        for _ in 0..self.max_attempts {
            if let Some(result) = self.try_once(size, density) {
                return Some(result);
            }
        }
        None
    }

    /// Sample `count` patterns (each may fail independently; failures are
    /// skipped, so fewer may come back).
    pub fn sample_many(
        &mut self,
        count: usize,
        size: usize,
        density: Density,
    ) -> Vec<SampledPattern> {
        (0..count).filter_map(|_| self.sample(size, density)).collect()
    }

    fn try_once(&mut self, size: usize, density: Density) -> Option<SampledPattern> {
        let g = self.g;
        if g.n() < size {
            return None;
        }
        let start = self.rng.gen_range(0..g.n()) as VertexId;
        if g.degree(start) == 0 {
            return None;
        }
        // Grow a connected region; remember the tree edge that discovered
        // each vertex for the sparse case.
        let mut region: Vec<VertexId> = vec![start];
        let mut in_region: FxHashMap<VertexId, u32> = FxHashMap::default();
        in_region.insert(start, 0);
        let mut tree_edges: Vec<(u32, u32)> = Vec::new(); // pattern-local ids
        while region.len() < size {
            // Pick a random frontier expansion: random region vertex, then a
            // random unvisited neighbor.
            let mut expanded = false;
            for _ in 0..4 * size {
                let from_idx = self.rng.gen_range(0..region.len());
                let from = region[from_idx];
                let adj = g.adj(from);
                if adj.is_empty() {
                    continue;
                }
                let pick = adj[self.rng.gen_range(0..adj.len())].nbr;
                if let std::collections::hash_map::Entry::Vacant(slot) = in_region.entry(pick) {
                    let local = region.len() as u32;
                    slot.insert(local);
                    region.push(pick);
                    tree_edges.push((from_idx as u32, local));
                    expanded = true;
                    break;
                }
            }
            if !expanded {
                return None; // stuck in a small component
            }
        }

        let mut b = GraphBuilder::with_capacity(size, size * 2);
        for &v in &region {
            b.add_vertex(g.label(v));
        }
        match density {
            Density::Dense => {
                // Keep every induced data edge, preserving direction/labels.
                for (local_a, &va) in region.iter().enumerate() {
                    for adj in g.adj(va) {
                        let Some(&local_b) = in_region.get(&adj.nbr) else { continue };
                        match adj.orient {
                            crate::graph::Orient::Out => {
                                let _ = b.add_edge(local_a as u32, local_b, adj.elabel);
                            }
                            crate::graph::Orient::Und => {
                                if (local_a as u32) < local_b {
                                    let _ =
                                        b.add_undirected_edge(local_a as u32, local_b, adj.elabel);
                                }
                            }
                            crate::graph::Orient::In => {} // captured from the other side
                        }
                    }
                }
            }
            Density::Sparse => {
                for &(la, lb) in &tree_edges {
                    // Copy the concrete data edge between the two region
                    // vertices (first one if parallel arcs exist).
                    let (va, vb) = (region[la as usize], region[lb as usize]);
                    let adj = g.edges_between(va, vb)[0];
                    match adj.orient {
                        crate::graph::Orient::Out => b.add_edge(la, lb, adj.elabel).unwrap(),
                        crate::graph::Orient::In => b.add_edge(lb, la, adj.elabel).unwrap(),
                        crate::graph::Orient::Und => {
                            b.add_undirected_edge(la, lb, adj.elabel).unwrap()
                        }
                    }
                }
            }
        }
        let pattern = b.build();
        if classify_density(&pattern) != density {
            return None;
        }
        debug_assert!(pattern.is_connected());
        Some(SampledPattern { pattern, image: region })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{chung_lu, road_grid};

    #[test]
    fn sparse_pattern_is_a_tree_from_grid() {
        let g = road_grid(30, 30, 0.8, 1);
        let mut s = PatternSampler::new(&g, 2);
        let sp = s.sample(8, Density::Sparse).expect("grid yields sparse patterns");
        assert_eq!(sp.pattern.n(), 8);
        assert_eq!(sp.pattern.m(), 7, "spanning tree edge count");
        assert!(sp.pattern.is_connected());
        assert_eq!(classify_density(&sp.pattern), Density::Sparse);
    }

    #[test]
    fn dense_pattern_from_power_law_graph() {
        let g = chung_lu(500, 4000, 2.2, 4, 0, false, 3);
        let mut s = PatternSampler::new(&g, 4);
        let sp = s.sample(8, Density::Dense).expect("dense region exists");
        assert_eq!(sp.pattern.n(), 8);
        assert!(sp.pattern.m() > 8, "dense needs avg degree > 2");
        assert_eq!(classify_density(&sp.pattern), Density::Dense);
    }

    #[test]
    fn image_is_a_witness_embedding() {
        let g = chung_lu(500, 4000, 2.2, 4, 0, false, 7);
        let mut s = PatternSampler::new(&g, 8);
        let sp = s.sample(10, Density::Dense).expect("sample");
        // Every pattern edge must exist between the image vertices.
        for e in sp.pattern.edges() {
            let (a, b) = (sp.image[e.src as usize], sp.image[e.dst as usize]);
            assert!(g.has_edge(a, b, e.label, e.directed));
        }
        // Labels carry over.
        for (i, &v) in sp.image.iter().enumerate() {
            assert_eq!(sp.pattern.label(i as u32), g.label(v));
        }
    }

    #[test]
    fn labels_preserved_and_deterministic() {
        let g = chung_lu(300, 1500, 2.5, 6, 0, false, 11);
        let mut s1 = PatternSampler::new(&g, 5);
        let mut s2 = PatternSampler::new(&g, 5);
        let a = s1.sample(6, Density::Sparse).unwrap();
        let b = s2.sample(6, Density::Sparse).unwrap();
        assert_eq!(a.pattern.edges(), b.pattern.edges());
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn impossible_requests_return_none() {
        // A 2x2 grid has only 4 vertices; a 10-vertex pattern cannot exist.
        let g = road_grid(2, 2, 1.0, 1);
        let mut s = PatternSampler::new(&g, 1);
        assert!(s.sample(10, Density::Sparse).is_none());
        // Dense patterns cannot be sampled from a path (a 20x1 grid).
        let g = road_grid(20, 1, 1.0, 1);
        let mut s = PatternSampler::new(&g, 1);
        s.max_attempts = 50;
        assert!(s.sample(12, Density::Dense).is_none());
    }
}
