//! Plain-text graph I/O.
//!
//! Two formats are supported:
//!
//! * the **CSCE format**, which round-trips every feature of [`Graph`]
//!   (vertex labels, edge labels, per-edge direction):
//!
//!   ```text
//!   t <n> <m>
//!   v <id> <label>        # label "-" means unlabeled
//!   e <src> <dst> <elabel> <d|u>
//!   ```
//!
//! * the **VEQ / RapidMatch `.graph` format** used by the paper's public
//!   datasets (undirected, vertex-labeled, unlabeled edges):
//!
//!   ```text
//!   t <n> <m>
//!   v <id> <label> <degree>
//!   e <u> <v>
//!   ```

use crate::graph::{Graph, GraphBuilder};
use crate::{Label, VertexId, NO_LABEL};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors raised when parsing a graph file.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Parse failure with 1-based line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err<T>(line: usize, msg: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Parse(line, msg.into()))
}

/// Write a graph in the CSCE format.
pub fn write_csce<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "t {} {}", g.n(), g.m())?;
    for (v, &l) in g.labels().iter().enumerate() {
        if l == NO_LABEL {
            writeln!(w, "v {v} -")?;
        } else {
            writeln!(w, "v {v} {l}")?;
        }
    }
    for e in g.edges() {
        let lab = if e.label == NO_LABEL { "-".to_string() } else { e.label.to_string() };
        let dir = if e.directed { 'd' } else { 'u' };
        writeln!(w, "e {} {} {} {}", e.src, e.dst, lab, dir)?;
    }
    w.flush()
}

/// Save a graph in the CSCE format to a file path.
pub fn save_csce(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_csce(g, std::fs::File::create(path)?)
}

fn parse_label(tok: &str, line: usize) -> Result<Label, IoError> {
    if tok == "-" {
        return Ok(NO_LABEL);
    }
    tok.parse::<Label>().map_err(|_| IoError::Parse(line, format!("bad label {tok:?}")))
}

/// Read a graph in the CSCE format.
pub fn read_csce<R: BufRead>(r: R) -> Result<Graph, IoError> {
    let mut b = GraphBuilder::new();
    let mut declared: Option<(usize, usize)> = None;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("t") => {
                let n = it.next().and_then(|t| t.parse().ok());
                let m = it.next().and_then(|t| t.parse().ok());
                match (n, m) {
                    (Some(n), Some(m)) => declared = Some((n, m)),
                    _ => return parse_err(lineno, "bad t line"),
                }
            }
            Some("v") => {
                let id: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(id) => id,
                    None => return parse_err(lineno, "bad vertex id"),
                };
                if id as usize != b.vertex_count() {
                    return parse_err(lineno, "vertex ids must be dense and in order");
                }
                let label = match it.next() {
                    Some(tok) => parse_label(tok, lineno)?,
                    None => return parse_err(lineno, "missing vertex label"),
                };
                b.add_vertex(label);
            }
            Some("e") => {
                let src: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(x) => x,
                    None => return parse_err(lineno, "bad edge src"),
                };
                let dst: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(x) => x,
                    None => return parse_err(lineno, "bad edge dst"),
                };
                let label = match it.next() {
                    Some(tok) => parse_label(tok, lineno)?,
                    None => return parse_err(lineno, "missing edge label"),
                };
                let res = match it.next() {
                    Some("d") => b.add_edge(src, dst, label),
                    Some("u") => b.add_undirected_edge(src, dst, label),
                    other => return parse_err(lineno, format!("bad direction {other:?}")),
                };
                if let Err(e) = res {
                    return parse_err(lineno, e.to_string());
                }
            }
            other => return parse_err(lineno, format!("unknown record {other:?}")),
        }
    }
    if let Some((n, m)) = declared {
        if n != b.vertex_count() || m != b.edge_count() {
            return parse_err(0, "t line does not match body");
        }
    }
    Ok(b.build())
}

/// Load a graph in the CSCE format from a file path.
pub fn load_csce(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_csce(std::io::BufReader::new(std::fs::File::open(path)?))
}

/// Read a graph in the VEQ / RapidMatch `.graph` format (undirected,
/// vertex-labeled, edge-unlabeled). The per-vertex degree column is
/// validated when present.
pub fn read_veq<R: BufRead>(r: R) -> Result<Graph, IoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('t') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("v") => {
                let id: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(id) => id,
                    None => return parse_err(lineno, "bad vertex id"),
                };
                if id as usize != b.vertex_count() {
                    return parse_err(lineno, "vertex ids must be dense and in order");
                }
                let label: Label = match it.next().and_then(|t| t.parse().ok()) {
                    Some(l) => l,
                    None => return parse_err(lineno, "bad vertex label"),
                };
                b.add_vertex(label);
            }
            Some("e") => {
                let u: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(x) => x,
                    None => return parse_err(lineno, "bad edge endpoint"),
                };
                let v: u32 = match it.next().and_then(|t| t.parse().ok()) {
                    Some(x) => x,
                    None => return parse_err(lineno, "bad edge endpoint"),
                };
                if let Err(e) = b.add_undirected_edge(u, v, NO_LABEL) {
                    return parse_err(lineno, e.to_string());
                }
            }
            other => return parse_err(lineno, format!("unknown record {other:?}")),
        }
    }
    Ok(b.build())
}

/// Read a SNAP-style whitespace-separated edge list (the format of the
/// Stanford network collection the paper's RoadCA / EMAIL-EU / LiveJournal
/// graphs ship in): one `src dst` pair per line, `#` comments, arbitrary
/// non-dense vertex ids (remapped densely in first-appearance order).
/// Self loops and duplicate pairs — both common in SNAP dumps — are
/// silently dropped, matching the usual preprocessing.
pub fn read_snap<R: BufRead>(r: R, directed: bool) -> Result<Graph, IoError> {
    let mut b = GraphBuilder::new();
    let mut id_of: crate::FxHashMap<u64, u32> = crate::FxHashMap::default();
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let (Some(a), Some(c)) = (it.next(), it.next()) else {
            return parse_err(lineno, "expected `src dst`");
        };
        let a: u64 = a.parse().map_err(|_| IoError::Parse(lineno, format!("bad id {a:?}")))?;
        let c: u64 = c.parse().map_err(|_| IoError::Parse(lineno, format!("bad id {c:?}")))?;
        let mut intern = |raw: u64, b: &mut GraphBuilder| -> u32 {
            *id_of.entry(raw).or_insert_with(|| b.add_unlabeled_vertices(1))
        };
        let (a, c) = (intern(a, &mut b), intern(c, &mut b));
        if a == c {
            continue;
        }
        let _ = if directed {
            b.add_edge(a, c, NO_LABEL)
        } else {
            b.add_undirected_edge(a, c, NO_LABEL)
        };
    }
    Ok(b.build())
}

/// Load a SNAP edge list from a file path.
pub fn load_snap(path: impl AsRef<Path>, directed: bool) -> Result<Graph, IoError> {
    read_snap(std::io::BufReader::new(std::fs::File::open(path)?), directed)
}

/// Write a graph in the VEQ `.graph` format. Directions and edge labels are
/// dropped; intended only for undirected, edge-unlabeled graphs.
pub fn write_veq<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "t {} {}", g.n(), g.m())?;
    for (v, &vl) in g.labels().iter().enumerate() {
        let l = if vl == NO_LABEL { 0 } else { vl };
        let deg = VertexId::try_from(v).map(|id| g.degree(id)).unwrap_or(0);
        writeln!(w, "v {v} {l} {deg}")?;
    }
    for e in g.edges() {
        writeln!(w, "e {} {}", e.src, e.dst)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(NO_LABEL);
        b.add_edge(0, 1, 7).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn csce_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_csce(&g, &mut buf).unwrap();
        let g2 = read_csce(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        assert_eq!(g2.labels(), g.labels());
        assert_eq!(g2.edges(), g.edges());
    }

    #[test]
    fn csce_rejects_malformed() {
        assert!(read_csce("x 1 2\n".as_bytes()).is_err());
        assert!(read_csce("v 5 0\n".as_bytes()).is_err()); // non-dense id
        assert!(read_csce("t 1 0\n".as_bytes()).is_err()); // t mismatch
        assert!(read_csce("v 0 0\nv 1 0\ne 0 1 - x\n".as_bytes()).is_err());
        assert!(read_csce("v 0 0\ne 0 0 - d\n".as_bytes()).is_err()); // self loop
    }

    #[test]
    fn csce_skips_comments_and_blanks() {
        let text = "# header\n\nt 2 1\nv 0 5\nv 1 -\ne 0 1 - u\n";
        let g = read_csce(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.label(0), 5);
        assert_eq!(g.label(1), NO_LABEL);
    }

    #[test]
    fn veq_roundtrip() {
        let mut b = GraphBuilder::new();
        b.add_vertex(3);
        b.add_vertex(4);
        b.add_vertex(3);
        b.add_undirected_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        let g = b.build();
        let mut buf = Vec::new();
        write_veq(&g, &mut buf).unwrap();
        let g2 = read_veq(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), 3);
        assert_eq!(g2.m(), 2);
        assert_eq!(g2.label(1), 4);
        assert!(!g2.has_directed_edges());
    }

    #[test]
    fn snap_edge_lists() {
        let text = "# comment\n10 20\n20 30\n10 20\n5 5\n30   10\n";
        let g = read_snap(text.as_bytes(), false).unwrap();
        // Ids remapped densely: 10->0, 20->1, 30->2, 5->3; duplicate and
        // self loop dropped.
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.connected(0, 1) && g.connected(1, 2) && g.connected(2, 0));
        assert_eq!(g.degree(3), 0, "the self-loop vertex stays isolated");
        let d = read_snap("1 2\n2 1\n".as_bytes(), true).unwrap();
        assert_eq!(d.m(), 2, "antiparallel directed arcs both kept");
        assert!(read_snap("1\n".as_bytes(), false).is_err());
        assert!(read_snap("a b\n".as_bytes(), false).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("csce_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csce");
        save_csce(&g, &path).unwrap();
        let g2 = load_csce(&path).unwrap();
        assert_eq!(g2.edges(), g.edges());
        std::fs::remove_file(path).ok();
    }
}
