//! Binary persistence of `G_C`.
//!
//! Clustering is the offline stage of Fig. 2 and is paid once per data
//! graph; the result is written to a compact little-endian binary file and
//! memory-loaded for each matching task. The format is entirely
//! hand-rolled: a magic header, the vertex label array, then each
//! cluster's key, compressed row runs, and column index.

use crate::build::Ccsr;
use crate::cluster::Cluster;
use crate::compress::CompressedCsr;
use crate::key::ClusterKey;
use crate::CcsrError;
use std::path::Path;

const MAGIC: &[u8; 8] = b"CSCEGC1\0";

/// Errors raised when encoding or decoding a persisted `G_C`.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    /// The byte stream is not a valid CCSR file.
    Corrupt(&'static str),
    /// The in-memory `G_C` exceeds the format's 32-bit counters.
    Encode(CcsrError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt ccsr file: {msg}"),
            PersistError::Encode(e) => write!(f, "cannot encode ccsr: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CcsrError> for PersistError {
    fn from(e: CcsrError) -> Self {
        PersistError::Encode(e)
    }
}

#[inline]
fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Checked narrowing for the format's `u32` counters.
fn counter_u32(v: usize, what: &'static str) -> Result<u32, CcsrError> {
    u32::try_from(v).map_err(|_| CcsrError::Overflow { what })
}

/// Split `n` bytes off the front of the cursor, or fail cleanly with the
/// field name that was being decoded.
fn take<'a>(buf: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
    if buf.len() < n {
        return Err(PersistError::Corrupt(what));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Decode a little-endian `u32` from a slice, failing with context instead
/// of panicking when the slice is not exactly four bytes.
fn le_u32(bytes: &[u8], what: &'static str) -> Result<u32, PersistError> {
    let arr: [u8; 4] = bytes.try_into().map_err(|_| PersistError::Corrupt(what))?;
    Ok(u32::from_le_bytes(arr))
}

fn read_u32(buf: &mut &[u8], what: &'static str) -> Result<u32, PersistError> {
    le_u32(take(buf, 4, what)?, what)
}

fn read_u8(buf: &mut &[u8], what: &'static str) -> Result<u8, PersistError> {
    Ok(take(buf, 1, what)?[0])
}

fn put_compressed(buf: &mut Vec<u8>, c: &CompressedCsr) -> Result<(), CcsrError> {
    put_u32_le(buf, counter_u32(c.runs().len(), "run count")?);
    for &(value, count) in c.runs() {
        put_u32_le(buf, value);
        put_u32_le(buf, count);
    }
    put_u32_le(buf, counter_u32(c.neighbors().len(), "neighbor count")?);
    for &x in c.neighbors() {
        put_u32_le(buf, x);
    }
    Ok(())
}

fn get_compressed(buf: &mut &[u8]) -> Result<CompressedCsr, PersistError> {
    let runs_len = read_u32(buf, "truncated run count")? as usize;
    let runs_bytes = take(buf, runs_len * 8, "truncated runs")?;
    let mut runs = Vec::with_capacity(runs_len);
    for chunk in runs_bytes.chunks_exact(8) {
        let value = le_u32(&chunk[..4], "run value")?;
        let count = le_u32(&chunk[4..], "run count")?;
        runs.push((value, count));
    }
    let nbr_len = read_u32(buf, "truncated neighbor count")? as usize;
    let nbr_bytes = take(buf, nbr_len * 4, "truncated neighbors")?;
    let mut neighbors = Vec::with_capacity(nbr_len);
    for chunk in nbr_bytes.chunks_exact(4) {
        neighbors.push(le_u32(chunk, "neighbor id")?);
    }
    CompressedCsr::from_parts(runs, neighbors)
        .ok_or(PersistError::Corrupt("invalid compressed row index"))
}

/// Encode a `G_C` into bytes. Fails with [`CcsrError::Overflow`] when a
/// counter exceeds the format's 32-bit fields.
pub fn to_bytes(ccsr: &Ccsr) -> Result<Vec<u8>, CcsrError> {
    let mut buf = Vec::with_capacity(64 + ccsr.heap_bytes());
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, counter_u32(ccsr.n(), "vertex count")?);
    for &l in ccsr.vertex_labels() {
        put_u32_le(&mut buf, l);
    }
    let mut clusters: Vec<&Cluster> = ccsr.clusters().collect();
    clusters.sort_unstable_by_key(|c| c.key);
    put_u32_le(&mut buf, counter_u32(clusters.len(), "cluster count")?);
    for c in clusters {
        put_u32_le(&mut buf, c.key.src_label);
        put_u32_le(&mut buf, c.key.dst_label);
        put_u32_le(&mut buf, c.key.edge_label);
        buf.push(u8::from(c.key.directed));
        put_compressed(&mut buf, &c.out)?;
        match &c.inc {
            Some(inc) => {
                buf.push(1);
                put_compressed(&mut buf, inc)?;
            }
            None => buf.push(0),
        }
    }
    Ok(buf)
}

/// Decode a `G_C` from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<Ccsr, PersistError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(PersistError::Corrupt("bad magic"));
    }
    buf = &buf[MAGIC.len()..];
    let n = read_u32(&mut buf, "truncated vertex count")?;
    let label_bytes = take(&mut buf, n as usize * 4, "truncated labels")?;
    let mut labels = Vec::with_capacity(n as usize);
    for chunk in label_bytes.chunks_exact(4) {
        labels.push(le_u32(chunk, "vertex label")?);
    }
    let cluster_count = read_u32(&mut buf, "truncated cluster count")? as usize;
    let mut clusters: Vec<Cluster> = Vec::with_capacity(cluster_count);
    for _ in 0..cluster_count {
        let src_label = read_u32(&mut buf, "truncated key")?;
        let dst_label = read_u32(&mut buf, "truncated key")?;
        let edge_label = read_u32(&mut buf, "truncated key")?;
        let directed = read_u8(&mut buf, "truncated key")? != 0;
        let key = ClusterKey { src_label, dst_label, edge_label, directed };
        if let Some(prev) = clusters.last() {
            // `to_bytes` emits clusters sorted by key, so the encoding is
            // canonical; anything out of order (or duplicated) is corrupt.
            if prev.key >= key {
                return Err(PersistError::Corrupt("clusters out of key order"));
            }
        }
        let out = get_compressed(&mut buf)?;
        let inc_flag = read_u8(&mut buf, "truncated inc flag")?;
        let inc = if inc_flag != 0 { Some(get_compressed(&mut buf)?) } else { None };
        if directed != inc.is_some() {
            return Err(PersistError::Corrupt("direction / csr-count mismatch"));
        }
        clusters.push(Cluster { key, out, inc });
    }
    if !buf.is_empty() {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    Ok(Ccsr::from_parts(n, labels, clusters))
}

/// Write a `G_C` to a file.
pub fn save(ccsr: &Ccsr, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, to_bytes(ccsr)?)?;
    Ok(())
}

/// Load a `G_C` from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Ccsr, PersistError> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ccsr;
    use csce_graph::{GraphBuilder, NO_LABEL};

    fn sample_ccsr() -> Ccsr {
        let mut b = GraphBuilder::new();
        for l in [0, 1, 2, 0, 1] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1, 7).unwrap();
        b.add_edge(3, 1, 7).unwrap();
        b.add_undirected_edge(2, 4, NO_LABEL).unwrap();
        build_ccsr(&b.build()).unwrap()
    }

    fn assert_same(a: &Ccsr, b: &Ccsr) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.vertex_labels(), b.vertex_labels());
        assert_eq!(a.cluster_count(), b.cluster_count());
        for c in a.clusters() {
            let other = b.cluster(&c.key).expect("cluster present after roundtrip");
            assert_eq!(c.out, other.out);
            assert_eq!(c.inc, other.inc);
        }
    }

    #[test]
    fn roundtrip_bytes() {
        let gc = sample_ccsr();
        let bytes = to_bytes(&gc).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_same(&gc, &back);
        assert_eq!(back.negation_keys(0, 1).len(), gc.negation_keys(0, 1).len());
    }

    #[test]
    fn roundtrip_file() {
        let gc = sample_ccsr();
        let dir = std::env::temp_dir().join("csce_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ccsr");
        save(&gc, &path).unwrap();
        let back = load(&path).unwrap();
        assert_same(&gc, &back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let gc = sample_ccsr();
        let mut bytes = to_bytes(&gc).unwrap();
        assert!(from_bytes(&bytes[..4]).is_err(), "truncated magic");
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err(), "bad magic");
        let bytes = to_bytes(&gc).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err(), "truncated body");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(from_bytes(&extended).is_err(), "trailing bytes");
    }

    #[test]
    fn empty_graph_roundtrips() {
        let gc = build_ccsr(&GraphBuilder::new().build()).unwrap();
        let back = from_bytes(&to_bytes(&gc).unwrap()).unwrap();
        assert_eq!(back.n(), 0);
        assert_eq!(back.cluster_count(), 0);
    }
}
