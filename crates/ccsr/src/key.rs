//! Cluster identifiers.
//!
//! Edge isomorphism depends on the two vertex labels, the edge label, and
//! the direction (§IV), so those four pieces form the identifier. A
//! directed cluster arranges vertex labels in the outgoing direction, e.g.
//! the paper's `(A, B, NULL)`-cluster; an undirected cluster is identified
//! by the alphabetically sorted label pair, e.g.
//! `(A, B, NULL),(B, A, NULL)`-cluster, canonicalized here as the sorted
//! pair plus `directed = false`.

use csce_graph::{Graph, Label, VertexId, NO_LABEL};

/// Identifier of one edge-isomorphism cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterKey {
    /// Label of the outgoing-side vertex (the smaller label for undirected
    /// clusters).
    pub src_label: Label,
    /// Label of the incoming-side vertex (the larger label for undirected
    /// clusters).
    pub dst_label: Label,
    /// Edge label; [`NO_LABEL`] is the paper's `NULL`.
    pub edge_label: Label,
    /// Whether the clustered edges are directed.
    pub directed: bool,
}

impl ClusterKey {
    /// Key of a directed edge cluster `src_label → dst_label`.
    pub fn directed(src_label: Label, dst_label: Label, edge_label: Label) -> Self {
        ClusterKey { src_label, dst_label, edge_label, directed: true }
    }

    /// Key of an undirected edge cluster (labels are canonicalized so the
    /// key is orientation-free, mirroring the paper's sorted pair).
    pub fn undirected(a: Label, b: Label, edge_label: Label) -> Self {
        ClusterKey { src_label: a.min(b), dst_label: a.max(b), edge_label, directed: false }
    }

    /// The key of the cluster containing a concrete data edge.
    pub fn of_edge(
        g: &Graph,
        src: VertexId,
        dst: VertexId,
        edge_label: Label,
        directed: bool,
    ) -> Self {
        if directed {
            ClusterKey::directed(g.label(src), g.label(dst), edge_label)
        } else {
            ClusterKey::undirected(g.label(src), g.label(dst), edge_label)
        }
    }

    /// The unordered vertex-label pair, used to index the
    /// `(u_x, u_y)*`-clusters for vertex-induced negation.
    pub fn label_pair(&self) -> (Label, Label) {
        (self.src_label.min(self.dst_label), self.src_label.max(self.dst_label))
    }

    /// Whether both endpoints share one label (an undirected same-label
    /// cluster has rows on both "sides").
    pub fn symmetric_labels(&self) -> bool {
        self.src_label == self.dst_label
    }
}

impl std::fmt::Display for ClusterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lab = |l: Label| {
            if l == NO_LABEL {
                "NULL".to_string()
            } else {
                l.to_string()
            }
        };
        if self.directed {
            write!(f, "({},{},{})", lab(self.src_label), lab(self.dst_label), lab(self.edge_label))
        } else {
            write!(
                f,
                "({},{},{}),({},{},{})",
                lab(self.src_label),
                lab(self.dst_label),
                lab(self.edge_label),
                lab(self.dst_label),
                lab(self.src_label),
                lab(self.edge_label)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::GraphBuilder;

    #[test]
    fn undirected_keys_canonicalize() {
        assert_eq!(ClusterKey::undirected(3, 1, 0), ClusterKey::undirected(1, 3, 0));
        let k = ClusterKey::undirected(3, 1, 0);
        assert_eq!((k.src_label, k.dst_label), (1, 3));
    }

    #[test]
    fn directed_keys_keep_orientation() {
        assert_ne!(ClusterKey::directed(1, 3, 0), ClusterKey::directed(3, 1, 0));
    }

    #[test]
    fn edge_keys_from_graph() {
        let mut b = GraphBuilder::new();
        b.add_vertex(7); // v0
        b.add_vertex(2); // v1
        b.add_edge(0, 1, 5).unwrap();
        let g = b.build();
        let k = ClusterKey::of_edge(&g, 0, 1, 5, true);
        assert_eq!(k, ClusterKey::directed(7, 2, 5));
        let ku = ClusterKey::of_edge(&g, 0, 1, 5, false);
        assert_eq!(ku, ClusterKey::undirected(2, 7, 5));
        assert_eq!(ku.label_pair(), (2, 7));
    }

    #[test]
    fn display_matches_paper_notation() {
        let d = ClusterKey::directed(0, 1, NO_LABEL);
        assert_eq!(d.to_string(), "(0,1,NULL)");
        let u = ClusterKey::undirected(0, 1, NO_LABEL);
        assert_eq!(u.to_string(), "(0,1,NULL),(1,0,NULL)");
    }

    #[test]
    fn symmetric_detection() {
        assert!(ClusterKey::undirected(4, 4, 0).symmetric_labels());
        assert!(!ClusterKey::undirected(4, 5, 0).symmetric_labels());
    }
}
