//! `ReadCSR` — Algorithm 1 of the paper.
//!
//! For a given pattern `P` and variant `θ`, only a subset `G_C^*` of the
//! clusters is needed: one per pattern edge (by identifier lookup), plus —
//! for vertex-induced matching — the `(u_x, u_y)*`-clusters between every
//! *unconnected* pattern vertex pair, which drive negation. Each selected
//! cluster is decompressed into standard CSRs exactly once.

use crate::build::Ccsr;
use crate::cluster::DecodedCluster;
use crate::key::ClusterKey;
use csce_graph::graph::Edge;
use csce_graph::{FxHashMap, Graph, Variant};

/// The decoded working set `G_C^*` for one matching task.
pub struct GcStar<'a> {
    ccsr: &'a Ccsr,
    clusters: FxHashMap<ClusterKey, DecodedCluster>,
    stats: ReadStats,
}

/// What `ReadCSR` did: the CCSR-side work counters of one matching task.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Clusters selected and decompressed (distinct identifiers; repeated
    /// pattern edges share one decode).
    pub clusters_read: u64,
    /// CSR rows materialized across those clusters (out + in directions).
    pub rows_decompressed: u64,
    /// Cluster identifiers consulted that turned out empty in `G_C`.
    pub missing_clusters: u64,
}

/// The cluster identifier a pattern edge looks up (Algorithm 1, lines 3–8).
pub fn pattern_edge_key(p: &Graph, e: &Edge) -> ClusterKey {
    if e.directed {
        ClusterKey::directed(p.label(e.src), p.label(e.dst), e.label)
    } else {
        ClusterKey::undirected(p.label(e.src), p.label(e.dst), e.label)
    }
}

/// Algorithm 1: select and decompress the clusters needed by `(P, θ)`.
pub fn read_csr<'a>(ccsr: &'a Ccsr, p: &Graph, variant: Variant) -> GcStar<'a> {
    let mut clusters: FxHashMap<ClusterKey, DecodedCluster> = FxHashMap::default();
    let mut stats = ReadStats::default();
    let mut load = |key: ClusterKey, clusters: &mut FxHashMap<ClusterKey, DecodedCluster>| {
        if clusters.contains_key(&key) {
            return;
        }
        match ccsr.cluster(&key) {
            Some(c) => {
                let d = c.decode();
                stats.clusters_read += 1;
                stats.rows_decompressed +=
                    (d.out.row_count() + d.inc.as_ref().map_or(0, |c| c.row_count())) as u64;
                clusters.insert(key, d);
            }
            None => stats.missing_clusters += 1,
        }
    };
    for e in p.edges() {
        load(pattern_edge_key(p, e), &mut clusters);
    }
    if variant == Variant::VertexInduced {
        // Induced matching needs every cluster between each pattern vertex
        // pair's labels: unconnected pairs for negation, and connected
        // pairs to reject candidates carrying extra arcs (e.g. an
        // antiparallel data arc the pattern does not have).
        // Pattern vertex counts are tiny; ids are `u32` by construction.
        let n = u32::try_from(p.n()).unwrap_or(u32::MAX);
        for a in 0..n {
            for b in a + 1..n {
                for key in ccsr.negation_keys(p.label(a), p.label(b)) {
                    load(*key, &mut clusters);
                }
            }
        }
    }
    GcStar { ccsr, clusters, stats }
}

impl<'a> GcStar<'a> {
    /// The underlying `G_C` (vertex labels, label frequencies, indexes).
    #[inline]
    pub fn ccsr(&self) -> &'a Ccsr {
        self.ccsr
    }

    /// Look up a decoded cluster; `None` means no data edge matches that
    /// identifier (the cluster is empty).
    #[inline]
    pub fn get(&self, key: &ClusterKey) -> Option<&DecodedCluster> {
        self.clusters.get(key)
    }

    /// The decoded cluster serving one pattern edge, if non-empty.
    #[inline]
    pub fn cluster_for_edge(&self, p: &Graph, e: &Edge) -> Option<&DecodedCluster> {
        self.get(&pattern_edge_key(p, e))
    }

    /// Loaded `(a, b)*`-negation clusters between two vertex labels.
    pub fn negation_clusters(
        &self,
        a: csce_graph::Label,
        b: csce_graph::Label,
    ) -> impl Iterator<Item = &DecodedCluster> {
        self.ccsr.negation_keys(a, b).iter().filter_map(move |key| self.clusters.get(key))
    }

    /// Whether any data edge exists between two vertex labels — Algorithm 2
    /// line 8's `∃ α ∈ (Φ[i], Φ[j])*-clusters, |α| > 0`, constant time
    /// because only non-empty clusters are built.
    pub fn labels_ever_adjacent(&self, a: csce_graph::Label, b: csce_graph::Label) -> bool {
        !self.ccsr.negation_keys(a, b).is_empty()
    }

    /// Number of decoded clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Work counters of the `ReadCSR` call that built this working set.
    pub fn read_stats(&self) -> ReadStats {
        self.stats
    }

    /// Approximate heap footprint of the decoded working set, for the
    /// CCSR-overhead experiments (Fig. 11).
    pub fn heap_bytes(&self) -> usize {
        self.clusters.values().map(|c| c.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ccsr;
    use csce_graph::{GraphBuilder, NO_LABEL};

    /// Data: labels 0,1,2; edges (0)-(1) directed per label combination.
    fn data() -> Ccsr {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(0);
        let v1 = b.add_vertex(1);
        let v2 = b.add_vertex(2);
        let v3 = b.add_vertex(1);
        b.add_edge(v0, v1, NO_LABEL).unwrap();
        b.add_edge(v0, v2, NO_LABEL).unwrap();
        b.add_edge(v1, v2, NO_LABEL).unwrap();
        b.add_edge(v3, v2, NO_LABEL).unwrap();
        build_ccsr(&b.build()).unwrap()
    }

    fn pattern_edge_01() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.build()
    }

    #[test]
    fn loads_only_pattern_edge_clusters() {
        let gc = data();
        let p = pattern_edge_01();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        assert_eq!(star.cluster_count(), 1);
        let d = star.cluster_for_edge(&p, &p.edges()[0]).unwrap();
        assert_eq!(d.out_neighbors(0), &[1]);
    }

    #[test]
    fn vertex_induced_adds_negation_clusters() {
        let gc = data();
        // Pattern: 0(label 0) -> 1(label 1), plus an isolated-but-connected
        // story needs 3 vertices: path 0 -> 1 -> 2 with labels 0,1,2 and no
        // edge between pattern 0 and 2 => negation clusters for labels (0,2).
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(1, 2, NO_LABEL).unwrap();
        let p = b.build();
        let star_e = read_csr(&gc, &p, Variant::EdgeInduced);
        assert_eq!(star_e.cluster_count(), 2);
        let star_v = read_csr(&gc, &p, Variant::VertexInduced);
        // Adds the (0,2) directed cluster for negation.
        assert_eq!(star_v.cluster_count(), 3);
        assert!(star_v.labels_ever_adjacent(0, 2));
        assert_eq!(star_v.negation_clusters(0, 2).count(), 1);
    }

    #[test]
    fn missing_clusters_stay_missing() {
        let gc = data();
        let mut b = GraphBuilder::new();
        b.add_vertex(5); // label that does not exist in the data
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        let p = b.build();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        assert_eq!(star.cluster_count(), 0);
        assert!(star.cluster_for_edge(&p, &p.edges()[0]).is_none());
        assert!(!star.labels_ever_adjacent(5, 1));
    }

    #[test]
    fn duplicate_pattern_edges_share_one_decode() {
        let gc = data();
        // Two pattern edges with identical identifiers: star of label-1
        // leaves under a label-0 root... both edges map to the same cluster.
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_edge(0, 2, NO_LABEL).unwrap();
        let p = b.build();
        let star = read_csr(&gc, &p, Variant::EdgeInduced);
        assert_eq!(star.cluster_count(), 1);
    }
}
