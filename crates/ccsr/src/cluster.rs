//! Cluster storage: the compressed on-disk/offline form and the decoded
//! in-memory form used during matching.

use crate::compress::CompressedCsr;
use crate::csr::Csr;
use crate::key::ClusterKey;
use csce_graph::VertexId;

/// One edge-isomorphism cluster in compressed (offline) form.
///
/// Directed clusters store two CSRs so both outgoing and incoming
/// neighbors can be found; undirected clusters store one CSR containing
/// each edge from both endpoints (§IV). Either way each edge of `G`
/// appears exactly twice in exactly one cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    pub key: ClusterKey,
    /// Outgoing CSR (for undirected clusters: the single CSR).
    pub out: CompressedCsr,
    /// Incoming CSR; present only for directed clusters.
    pub inc: Option<CompressedCsr>,
}

impl Cluster {
    /// Number of data edges in this cluster.
    pub fn edge_count(&self) -> usize {
        if self.key.directed {
            self.out.arc_count()
        } else {
            self.out.arc_count() / 2
        }
    }

    /// Decompress to standard CSRs for query processing.
    pub fn decode(&self) -> DecodedCluster {
        DecodedCluster {
            key: self.key,
            out: self.out.decompress(),
            inc: self.inc.as_ref().map(|c| c.decompress()),
        }
    }

    /// Approximate heap footprint in bytes of the compressed form.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inc.as_ref().map_or(0, |c| c.heap_bytes())
    }
}

/// A decompressed cluster: standard CSRs with O(1) row lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedCluster {
    pub key: ClusterKey,
    pub out: Csr,
    pub inc: Option<Csr>,
}

impl DecodedCluster {
    /// Neighbors along the edge direction from `v` (for undirected
    /// clusters this is simply `v`'s neighbors).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[u32] {
        self.out.row(v)
    }

    /// Neighbors against the edge direction into `v` (undirected clusters
    /// answer from the single CSR).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[u32] {
        match &self.inc {
            Some(inc) => inc.row(v),
            None => self.out.row(v),
        }
    }

    /// The paper's `|I_C(u_i, u_x)|`: the cluster size used for GCF / LDSF
    /// tie-breaking.
    #[inline]
    pub fn size(&self) -> usize {
        self.out.arc_count()
    }

    /// Number of data edges (undirected edges stored twice count once).
    pub fn edge_count(&self) -> usize {
        if self.key.directed {
            self.out.arc_count()
        } else {
            self.out.arc_count() / 2
        }
    }

    /// Whether the arc `v -> w` (or undirected `v — w`) is in the cluster.
    #[inline]
    pub fn contains_arc(&self, v: VertexId, w: VertexId) -> bool {
        self.out.contains(v, w)
    }

    /// Approximate heap footprint in bytes of the decoded form.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inc.as_ref().map_or(0, |c| c.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::NO_LABEL;

    fn directed_cluster() -> Cluster {
        // Arcs: 0->1, 0->5, 3->4 over 6 vertices.
        let out = Csr::from_pairs(6, vec![(0, 1), (0, 5), (3, 4)]).unwrap();
        let inc = Csr::from_pairs(6, vec![(1, 0), (5, 0), (4, 3)]).unwrap();
        Cluster {
            key: ClusterKey::directed(0, 1, NO_LABEL),
            out: CompressedCsr::compress(&out),
            inc: Some(CompressedCsr::compress(&inc)),
        }
    }

    #[test]
    fn directed_cluster_counts_and_lookup() {
        let c = directed_cluster();
        assert_eq!(c.edge_count(), 3);
        let d = c.decode();
        assert_eq!(d.out_neighbors(0), &[1, 5]);
        assert_eq!(d.in_neighbors(5), &[0]);
        assert_eq!(d.in_neighbors(0), &[] as &[u32]);
        assert_eq!(d.size(), 3);
        assert!(d.contains_arc(3, 4));
        assert!(!d.contains_arc(4, 3));
    }

    #[test]
    fn undirected_cluster_serves_both_directions() {
        // Undirected edges {0,1} and {1,2}: stored as 4 arcs in one CSR.
        let out = Csr::from_pairs(3, vec![(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let c = Cluster {
            key: ClusterKey::undirected(0, 0, NO_LABEL),
            out: CompressedCsr::compress(&out),
            inc: None,
        };
        assert_eq!(c.edge_count(), 2);
        let d = c.decode();
        assert_eq!(d.out_neighbors(1), &[0, 2]);
        assert_eq!(d.in_neighbors(1), &[0, 2]);
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.size(), 4);
    }

    #[test]
    fn decode_roundtrips_storage() {
        let c = directed_cluster();
        let d = c.decode();
        assert_eq!(CompressedCsr::compress(&d.out), c.out);
        assert_eq!(CompressedCsr::compress(d.inc.as_ref().unwrap()), *c.inc.as_ref().unwrap());
    }
}
