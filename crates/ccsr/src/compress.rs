//! Run-length compression of CSR row indexes.
//!
//! A standard CSR spends `n + 1` integers on `I_R` *per cluster*; with `c`
//! clusters that is `c (n+1)` even though most rows are empty in most
//! clusters. The paper instead stores repeated `I_R` values as a
//! `(value, repeat)` pair, so each edge accounts for at most two `I_R`
//! integers and the total `I_R` length over all clusters is bounded by
//! `4|E|` (§IV, space analysis). Clusters are decompressed back into
//! standard CSRs when read (Algorithm 1).

use crate::csr::Csr;

/// A CSR whose row index is run-length encoded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressedCsr {
    /// `(offset value, repeat count)` runs of the `I_R` array.
    runs: Vec<(u32, u32)>,
    /// The `I_C` array, unchanged by compression.
    neighbors: Vec<u32>,
}

impl CompressedCsr {
    /// Compress a standard CSR.
    pub fn compress(csr: &Csr) -> CompressedCsr {
        let offsets = csr.offsets();
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &o in offsets {
            match runs.last_mut() {
                Some((value, count)) if *value == o => *count += 1,
                _ => runs.push((o, 1)),
            }
        }
        CompressedCsr { runs, neighbors: csr.neighbors_raw().to_vec() }
    }

    /// Decompress into a standard CSR (row count is implied by the runs).
    pub fn decompress(&self) -> Csr {
        let total: usize = self.runs.iter().map(|&(_, c)| c as usize).sum();
        let mut offsets = Vec::with_capacity(total);
        for &(value, count) in &self.runs {
            offsets.extend(std::iter::repeat_n(value, count as usize));
        }
        Csr::from_raw(offsets, self.neighbors.clone())
    }

    /// Number of stored arcs (`|I_C|`).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Length of the compressed `I_R` representation in integers
    /// (2 per run). The paper's bound: `compressed_ir_len() <= 4 * arcs`.
    pub fn compressed_ir_len(&self) -> usize {
        2 * self.runs.len()
    }

    /// The raw `(value, repeat)` runs of the compressed `I_R`.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// The raw `I_C` array.
    pub fn neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Construct from raw parts, validating the invariants: the first
    /// offset is zero, run values strictly increase, counts are non-zero,
    /// and the final offset closes exactly over the neighbor array.
    pub fn from_parts(runs: Vec<(u32, u32)>, neighbors: Vec<u32>) -> Option<CompressedCsr> {
        if runs.is_empty() || runs[0].0 != 0 {
            return None;
        }
        let mut prev = None::<u32>;
        for &(value, count) in &runs {
            if count == 0 || prev.is_some_and(|p| value <= p) {
                return None;
            }
            prev = Some(value);
        }
        if runs.last()?.0 as usize != neighbors.len() {
            return None;
        }
        Some(CompressedCsr { runs, neighbors })
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.neighbors.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse_cluster() {
        // Mostly-empty rows compress into few runs.
        let csr = Csr::from_pairs(1000, vec![(5, 1), (5, 2), (900, 3)]).unwrap();
        let c = CompressedCsr::compress(&csr);
        assert_eq!(c.decompress(), csr);
        // Runs: 0 x6, 2 x895, 3 x100 => 3 runs, 6 integers.
        assert_eq!(c.compressed_ir_len(), 6);
        assert!(c.compressed_ir_len() <= 4 * c.arc_count().max(1));
    }

    #[test]
    fn roundtrip_dense_cluster() {
        let pairs: Vec<(u32, u32)> = (0..50u32).flat_map(|r| [(r, r + 1), (r, r + 2)]).collect();
        let csr = Csr::from_pairs(53, pairs).unwrap();
        let c = CompressedCsr::compress(&csr);
        assert_eq!(c.decompress(), csr);
    }

    #[test]
    fn roundtrip_empty() {
        let csr = Csr::from_pairs(10, vec![]).unwrap();
        let c = CompressedCsr::compress(&csr);
        assert_eq!(c.decompress(), csr);
        assert_eq!(c.compressed_ir_len(), 2); // single run of zeros
    }

    #[test]
    fn from_parts_validates() {
        // Valid: offsets [0,0,2,2] with 2 neighbors.
        let ok = CompressedCsr::from_parts(vec![(0, 2), (2, 2)], vec![1, 2]);
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().decompress().row(1), &[1, 2]);
        assert!(CompressedCsr::from_parts(vec![], vec![]).is_none());
        assert!(CompressedCsr::from_parts(vec![(1, 2)], vec![1]).is_none(), "first offset not 0");
        assert!(CompressedCsr::from_parts(vec![(0, 0)], vec![]).is_none(), "zero count");
        assert!(
            CompressedCsr::from_parts(vec![(0, 1), (0, 1)], vec![]).is_none(),
            "non-increasing"
        );
        assert!(CompressedCsr::from_parts(vec![(0, 2)], vec![5]).is_none(), "does not close");
    }

    #[test]
    fn paper_bound_each_edge_at_most_two_ir_integers() {
        // Adversarial: every vertex has exactly one arc -> no compression
        // possible, runs = n + 1 with n = arcs. Bound 2*(n+1) <= 4n holds
        // for n >= 1.
        let pairs: Vec<(u32, u32)> = (0..100u32).map(|r| (r, (r + 1) % 100)).collect();
        let csr = Csr::from_pairs(100, pairs).unwrap();
        let c = CompressedCsr::compress(&csr);
        assert!(c.compressed_ir_len() <= 4 * c.arc_count());
    }
}
