//! Standard (decompressed) compressed sparse row arrays.
//!
//! A [`Csr`] is the paper's `(I_R, I_C)` pair: `offsets` is the row index
//! over all data-graph vertices (length `n + 1`), `neighbors` is the column
//! index. Neighbor rows are kept sorted so candidate computation can use
//! sorted-set intersection, and lookup of a vertex's row is O(1) — the
//! advantage over adjacency lists and sort tries called out in §IV.

use crate::CcsrError;
use csce_graph::VertexId;

/// A standard CSR over `n` vertices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Build from per-edge `(row, neighbor)` pairs over `n` vertices.
    /// Pairs may arrive in any order; rows end up sorted. Fails with
    /// [`CcsrError::Overflow`] when the cluster holds more than `u32::MAX`
    /// arcs — the `I_R` offsets are 32-bit.
    pub fn from_pairs(n: usize, mut pairs: Vec<(VertexId, VertexId)>) -> Result<Csr, CcsrError> {
        let arcs = u32::try_from(pairs.len())
            .map_err(|_| CcsrError::Overflow { what: "cluster arc count" })?;
        pairs.sort_unstable();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut row = 0u32;
        let mut len = 0u32;
        for (r, c) in pairs {
            debug_assert!((r as usize) < n, "row out of range");
            while row < r {
                offsets.push(len);
                row += 1;
            }
            neighbors.push(c);
            len += 1;
        }
        debug_assert_eq!(len, arcs);
        while offsets.len() < n + 1 {
            offsets.push(arcs);
        }
        Ok(Csr { offsets, neighbors })
    }

    /// Construct directly from raw arrays (used by decompression).
    pub(crate) fn from_raw(offsets: Vec<u32>, neighbors: Vec<u32>) -> Csr {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.last().map_or(0, |&o| o as usize), neighbors.len());
        Csr { offsets, neighbors }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn row_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `|I_C|` — the number of stored arcs, which is the cluster size.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.neighbors.len()
    }

    /// The sorted neighbor row of vertex `v` (empty if `v` has no arcs in
    /// this cluster).
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Number of arcs of vertex `v` in this cluster.
    #[inline]
    pub fn row_len(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether arc `v → w` is stored (binary search).
    #[inline]
    pub fn contains(&self, v: VertexId, w: VertexId) -> bool {
        self.row(v).binary_search(&w).is_ok()
    }

    /// Vertices with at least one arc, ascending. These are the candidate
    /// seeds for the first pattern vertex of a plan.
    pub fn nonempty_rows(&self) -> impl Iterator<Item = VertexId> + '_ {
        // Row counts fit `u32` by construction (`from_pairs` checks).
        let rows = u32::try_from(self.row_count()).unwrap_or(u32::MAX);
        (0..rows).filter(move |&v| self.row_len(v) > 0)
    }

    /// Raw offsets (`I_R`), for compression.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw neighbor array (`I_C`).
    #[inline]
    pub fn neighbors_raw(&self) -> &[u32] {
        &self.neighbors
    }

    /// Approximate heap footprint in bytes, for the paper's memory metrics.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.neighbors.capacity()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_builds_fig4_left_cluster() {
        // Paper Fig. 4 left: (A,B,NULL) outgoing CSR of G in Fig. 1:
        // v1 -> v2, v6; v4 -> v5. Vertices are 0-based here.
        let csr = Csr::from_pairs(10, vec![(0, 1), (0, 5), (3, 4)]).unwrap();
        assert_eq!(csr.row(0), &[1, 5]);
        assert_eq!(csr.row(3), &[4]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.arc_count(), 3);
        assert_eq!(csr.row_count(), 10);
    }

    #[test]
    fn unsorted_input_rows_get_sorted() {
        let csr = Csr::from_pairs(4, vec![(2, 3), (0, 2), (0, 1), (2, 0)]).unwrap();
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(2), &[0, 3]);
    }

    #[test]
    fn contains_and_lens() {
        let csr = Csr::from_pairs(3, vec![(0, 1), (0, 2), (1, 0)]).unwrap();
        assert!(csr.contains(0, 2));
        assert!(!csr.contains(0, 0));
        assert!(!csr.contains(2, 0));
        assert_eq!(csr.row_len(0), 2);
        assert_eq!(csr.row_len(2), 0);
    }

    #[test]
    fn nonempty_rows_are_seed_candidates() {
        let csr = Csr::from_pairs(5, vec![(1, 0), (4, 2)]).unwrap();
        let seeds: Vec<u32> = csr.nonempty_rows().collect();
        assert_eq!(seeds, vec![1, 4]);
    }

    #[test]
    fn empty_csr() {
        let csr = Csr::from_pairs(3, vec![]).unwrap();
        assert_eq!(csr.arc_count(), 0);
        assert_eq!(csr.nonempty_rows().count(), 0);
        assert_eq!(csr.row(2), &[] as &[u32]);
    }
}
