//! # csce-ccsr
//!
//! Clustered Compressed Sparse Row (CCSR) storage — the paper's
//! heterogeneity-aware index over the data graph (§IV).
//!
//! Every data edge is placed in exactly one *cluster* of mutually
//! isomorphic edges, identified by a [`ClusterKey`] of
//! `(source label, destination label, edge label)` plus direction. Each
//! cluster is stored as one or two compressed sparse rows: directed
//! clusters carry an outgoing and an incoming CSR, undirected clusters a
//! single CSR that lists each edge from both endpoints. Row-index arrays
//! are run-length compressed ([`CompressedCsr`]) so the total `I_R` length
//! is bounded by `4|E|` regardless of cluster count; [`read_csr`]
//! (Algorithm 1) decompresses only the clusters a given pattern and
//! matching variant need.
//!
//! The offline stage is [`build_ccsr`]: it converts a
//! [`csce_graph::Graph`] into a [`Ccsr`] (the paper's `G_C`), which fully
//! replaces the original graph ("as `G_C` is equivalent to `G`, we do not
//! keep `G`"). [`persist`] serializes `G_C` to a compact binary file so
//! clustering cost is paid once per data graph, not per query.

#![forbid(unsafe_code)]

pub mod build;
pub mod cluster;
pub mod compress;
pub mod csr;
pub mod key;
pub mod persist;
pub mod read;
pub mod stats;

pub use build::{build_ccsr, Ccsr};
pub use cluster::{Cluster, DecodedCluster};
pub use compress::CompressedCsr;
pub use csr::Csr;
pub use key::ClusterKey;
pub use read::{read_csr, GcStar, ReadStats};
pub use stats::CcsrStats;
