//! # csce-ccsr
//!
//! Clustered Compressed Sparse Row (CCSR) storage — the paper's
//! heterogeneity-aware index over the data graph (§IV).
//!
//! Every data edge is placed in exactly one *cluster* of mutually
//! isomorphic edges, identified by a [`ClusterKey`] of
//! `(source label, destination label, edge label)` plus direction. Each
//! cluster is stored as one or two compressed sparse rows: directed
//! clusters carry an outgoing and an incoming CSR, undirected clusters a
//! single CSR that lists each edge from both endpoints. Row-index arrays
//! are run-length compressed ([`CompressedCsr`]) so the total `I_R` length
//! is bounded by `4|E|` regardless of cluster count; [`read_csr`]
//! (Algorithm 1) decompresses only the clusters a given pattern and
//! matching variant need.
//!
//! The offline stage is [`build_ccsr`]: it converts a
//! [`csce_graph::Graph`] into a [`Ccsr`] (the paper's `G_C`), which fully
//! replaces the original graph ("as `G_C` is equivalent to `G`, we do not
//! keep `G`"). [`persist`] serializes `G_C` to a compact binary file so
//! clustering cost is paid once per data graph, not per query.

#![forbid(unsafe_code)]

/// Errors raised while building or encoding a `G_C`.
///
/// The CCSR layout (and its on-disk format) stores vertex ids, arc
/// counts, run counts, and cluster counts as `u32`; a data graph that
/// overflows any of those budgets is reported instead of silently
/// truncated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcsrError {
    /// A count exceeded the 32-bit budget; `what` names the counter.
    Overflow {
        /// The counter that overflowed (e.g. `"vertex count"`).
        what: &'static str,
    },
}

impl std::fmt::Display for CcsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcsrError::Overflow { what } => {
                write!(f, "{what} exceeds the 32-bit CCSR budget")
            }
        }
    }
}

impl std::error::Error for CcsrError {}

pub mod build;
pub mod cluster;
pub mod compress;
pub mod csr;
pub mod key;
pub mod persist;
pub mod read;
pub mod stats;

pub use build::{build_ccsr, Ccsr};
pub use cluster::{Cluster, DecodedCluster};
pub use compress::CompressedCsr;
pub use csr::Csr;
pub use key::ClusterKey;
pub use read::{read_csr, GcStar, ReadStats};
pub use stats::CcsrStats;
