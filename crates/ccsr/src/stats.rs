//! Diagnostics over a clustered graph: cluster-size distribution and
//! compression effectiveness — the quantities behind the paper's space
//! analysis (§IV) and the CCSR-overhead discussion (Finding 5/11).

use crate::build::Ccsr;

/// Summary statistics of a `G_C`.
#[derive(Clone, Debug, PartialEq)]
pub struct CcsrStats {
    pub vertex_count: usize,
    pub cluster_count: usize,
    /// Data edges across all clusters (each stored twice internally).
    pub edge_count: usize,
    /// Total `I_C` length (always `2 |E|`).
    pub total_ic: usize,
    /// Total run-length-compressed `I_R` length (bounded by `4 |E|`).
    pub total_ir_compressed: usize,
    /// What the `I_R` arrays would cost uncompressed: `rows + 1` per CSR.
    pub total_ir_uncompressed: usize,
    /// Largest cluster, in edges.
    pub max_cluster_edges: usize,
    /// Median cluster size, in edges.
    pub median_cluster_edges: usize,
}

impl CcsrStats {
    /// Compute the stats of a clustered graph.
    pub fn of(ccsr: &Ccsr) -> CcsrStats {
        let mut sizes: Vec<usize> = ccsr.clusters().map(|c| c.edge_count()).collect();
        sizes.sort_unstable();
        let csr_count: usize = ccsr.clusters().map(|c| 1 + usize::from(c.inc.is_some())).sum();
        CcsrStats {
            vertex_count: ccsr.n(),
            cluster_count: ccsr.cluster_count(),
            edge_count: sizes.iter().sum(),
            total_ic: ccsr.total_ic_len(),
            total_ir_compressed: ccsr.total_ir_len(),
            total_ir_uncompressed: csr_count * (ccsr.n() + 1),
            max_cluster_edges: sizes.last().copied().unwrap_or(0),
            median_cluster_edges: sizes.get(sizes.len() / 2).copied().unwrap_or(0),
        }
    }

    /// `I_R` bytes saved by run-length compression (ratio > 1 means the
    /// compressed form is smaller; grows with cluster count).
    pub fn ir_compression_ratio(&self) -> f64 {
        if self.total_ir_compressed == 0 {
            1.0
        } else {
            self.total_ir_uncompressed as f64 / self.total_ir_compressed as f64
        }
    }
}

impl std::fmt::Display for CcsrStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} clusters over {} edges (max {}, median {}); I_C {}, I_R {} compressed \
             vs {} standard ({:.1}x)",
            self.cluster_count,
            self.edge_count,
            self.max_cluster_edges,
            self.median_cluster_edges,
            self.total_ic,
            self.total_ir_compressed,
            self.total_ir_uncompressed,
            self.ir_compression_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ccsr;
    use csce_graph::generate::chung_lu;
    use csce_graph::{GraphBuilder, NO_LABEL};

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        for l in [0u32, 1, 0, 1] {
            b.add_vertex(l);
        }
        b.add_edge(0, 1, NO_LABEL).unwrap(); // (0,1) directed
        b.add_edge(2, 3, NO_LABEL).unwrap(); // same cluster
        b.add_undirected_edge(1, 3, NO_LABEL).unwrap(); // (1,1) undirected
        let gc = build_ccsr(&b.build()).unwrap();
        let s = CcsrStats::of(&gc);
        assert_eq!(s.cluster_count, 2);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.total_ic, 6);
        assert_eq!(s.max_cluster_edges, 2);
        // Directed cluster has 2 CSRs, undirected has 1 -> 3*(4+1)=15.
        assert_eq!(s.total_ir_uncompressed, 15);
        assert!(s.to_string().contains("2 clusters"));
    }

    #[test]
    fn compression_wins_with_many_labels() {
        let g = chung_lu(2000, 8000, 2.5, 100, 0, false, 3);
        let s = CcsrStats::of(&build_ccsr(&g).unwrap());
        assert!(
            s.ir_compression_ratio() > 5.0,
            "many small clusters compress well, got {:.1}x",
            s.ir_compression_ratio()
        );
        assert!(s.total_ir_compressed <= 4 * 2 * s.edge_count + 2 * s.cluster_count);
    }
}
