//! Offline clustering: building `G_C` from a data graph.
//!
//! Each edge is routed to its cluster by [`ClusterKey`] in O(1), giving
//! the paper's `O(|E|)` clustering bound; per-cluster CSR construction
//! sorts arcs, giving the `2|E| log 2|E|` sorting bound. After
//! construction the original [`Graph`] is no longer needed: the `Ccsr`
//! keeps the vertex labels and every edge (twice, in exactly one cluster).

use crate::cluster::Cluster;
use crate::compress::CompressedCsr;
use crate::csr::Csr;
use crate::key::ClusterKey;
use crate::CcsrError;
use csce_graph::{FxHashMap, Graph, Label, VertexId};

/// The set of all clustered CSRs of a data graph — the paper's `G_C`.
#[derive(Clone, Debug)]
pub struct Ccsr {
    n: u32,
    vertex_labels: Vec<Label>,
    label_freq: FxHashMap<Label, u32>,
    clusters: FxHashMap<ClusterKey, Cluster>,
    /// Unordered label pair → all cluster keys between those labels; this
    /// is the `(u_x, u_y)*`-clusters index used for vertex-induced
    /// negation (Algorithms 1 and 2).
    pair_index: FxHashMap<(Label, Label), Vec<ClusterKey>>,
}

/// Cluster all edges of `g` into CCSR form (the offline stage of Fig. 2).
/// Fails with [`CcsrError::Overflow`] when the graph exceeds the 32-bit
/// budgets of the CCSR layout (vertex ids, per-cluster arc counts).
pub fn build_ccsr(g: &Graph) -> Result<Ccsr, CcsrError> {
    let n = g.n();
    let n32 = u32::try_from(n).map_err(|_| CcsrError::Overflow { what: "vertex count" })?;
    // Route each arc to its cluster: O(|E|).
    let mut out_pairs: FxHashMap<ClusterKey, Vec<(VertexId, VertexId)>> = FxHashMap::default();
    let mut in_pairs: FxHashMap<ClusterKey, Vec<(VertexId, VertexId)>> = FxHashMap::default();
    for e in g.edges() {
        let key = ClusterKey::of_edge(g, e.src, e.dst, e.label, e.directed);
        if e.directed {
            out_pairs.entry(key).or_default().push((e.src, e.dst));
            in_pairs.entry(key).or_default().push((e.dst, e.src));
        } else {
            let v = out_pairs.entry(key).or_default();
            v.push((e.src, e.dst));
            v.push((e.dst, e.src));
        }
    }
    // Build + compress per-cluster CSRs (sorting happens inside from_pairs).
    let mut clusters: FxHashMap<ClusterKey, Cluster> = FxHashMap::default();
    for (key, pairs) in out_pairs {
        let out = CompressedCsr::compress(&Csr::from_pairs(n, pairs)?);
        let inc = match in_pairs.remove(&key) {
            Some(pairs) => Some(CompressedCsr::compress(&Csr::from_pairs(n, pairs)?)),
            None => None,
        };
        clusters.insert(key, Cluster { key, out, inc });
    }
    let mut pair_index: FxHashMap<(Label, Label), Vec<ClusterKey>> = FxHashMap::default();
    for key in clusters.keys() {
        pair_index.entry(key.label_pair()).or_default().push(*key);
    }
    for keys in pair_index.values_mut() {
        keys.sort_unstable();
    }
    // Boundary invariant (deep form in `csce-analyze`): directed clusters
    // carry an incoming CSR, undirected keys are canonical with each edge
    // stored from both endpoints (even arc count).
    debug_assert!(
        clusters.values().all(|c| {
            c.key.directed == c.inc.is_some()
                && (c.key.directed
                    || (c.key.src_label <= c.key.dst_label && c.out.neighbors().len() % 2 == 0))
        }),
        "clusters must be direction-consistent with canonical undirected keys"
    );
    Ok(Ccsr {
        n: n32,
        vertex_labels: g.labels().to_vec(),
        label_freq: g.label_frequency().clone(),
        clusters,
        pair_index,
    })
}

impl Ccsr {
    /// Number of data-graph vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Label of a data vertex (`G` itself is dropped; labels live here).
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        self.vertex_labels[v as usize]
    }

    /// All vertex labels indexed by vertex id.
    #[inline]
    pub fn vertex_labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Frequency of each vertex label (plan heuristics' final tie-break).
    #[inline]
    pub fn label_frequency(&self) -> &FxHashMap<Label, u32> {
        &self.label_freq
    }

    /// Look up one cluster by identifier.
    #[inline]
    pub fn cluster(&self, key: &ClusterKey) -> Option<&Cluster> {
        self.clusters.get(key)
    }

    /// All clusters.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.values()
    }

    /// Number of clusters (`c` in the space analysis).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// All cluster keys between an unordered vertex-label pair — the
    /// `(u_x, u_y)*`-clusters.
    pub fn negation_keys(&self, a: Label, b: Label) -> &[ClusterKey] {
        self.pair_index.get(&(a.min(b), a.max(b))).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total `I_C` length over all clusters; equals `2|E|` by construction.
    pub fn total_ic_len(&self) -> usize {
        self.clusters
            .values()
            .map(|c| c.out.arc_count() + c.inc.as_ref().map_or(0, |i| i.arc_count()))
            .sum()
    }

    /// Total compressed `I_R` length over all clusters; bounded by `4|E|`.
    pub fn total_ir_len(&self) -> usize {
        self.clusters
            .values()
            .map(|c| {
                c.out.compressed_ir_len() + c.inc.as_ref().map_or(0, |i| i.compressed_ir_len())
            })
            .sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.vertex_labels.capacity() * std::mem::size_of::<Label>()
            + self.clusters.values().map(|c| c.heap_bytes()).sum::<usize>()
    }

    /// Used by deserialization to restore the derived indexes.
    pub(crate) fn rebuild_derived(&mut self) {
        self.label_freq.clear();
        for &l in &self.vertex_labels {
            *self.label_freq.entry(l).or_insert(0) += 1;
        }
        self.pair_index.clear();
        for key in self.clusters.keys() {
            self.pair_index.entry(key.label_pair()).or_default().push(*key);
        }
        for keys in self.pair_index.values_mut() {
            keys.sort_unstable();
        }
    }

    /// Construct from raw parts (used by persistence).
    pub(crate) fn from_parts(n: u32, vertex_labels: Vec<Label>, clusters: Vec<Cluster>) -> Ccsr {
        let mut ccsr = Ccsr {
            n,
            vertex_labels,
            label_freq: FxHashMap::default(),
            clusters: clusters.into_iter().map(|c| (c.key, c)).collect(),
            pair_index: FxHashMap::default(),
        };
        ccsr.rebuild_derived();
        ccsr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csce_graph::{GraphBuilder, NO_LABEL};

    /// The data graph G of the paper's Fig. 1, reconstructed from the text:
    /// labels A=0, B=1, C=2, D=3; directed edges.
    pub(crate) fn fig1_data_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // v1..v10 -> ids 0..9
        // Labels chosen to make (A,B) cluster = {v1->v2, v1->v6, v4->v5}
        // and (A,C) cluster = {v1->v3, v1->v10} as in Fig. 4.
        let labels = [0, 1, 2, 0, 1, 1, 2, 0, 1, 2]; // A B C A B B C A B C
        for &l in &labels {
            b.add_vertex(l);
        }
        let edges = [
            (0, 1), // v1->v2 (A,B)
            (0, 5), // v1->v6 (A,B)
            (3, 4), // v4->v5 (A,B)
            (0, 2), // v1->v3 (A,C)
            (0, 9), // v1->v10 (A,C)
            (7, 8), // v8->v9 (A,B)  extra structure
            (5, 6), // v6->v7 (B,C)
        ];
        for (s, d) in edges {
            b.add_edge(s, d, NO_LABEL).unwrap();
        }
        b.build()
    }

    #[test]
    fn clusters_partition_edges() {
        let g = fig1_data_graph();
        let gc = build_ccsr(&g).unwrap();
        let total_edges: usize = gc.clusters().map(|c| c.edge_count()).sum();
        assert_eq!(total_edges, g.m());
        assert_eq!(gc.total_ic_len(), 2 * g.m());
        assert!(gc.total_ir_len() <= 4 * 2 * g.m());
    }

    #[test]
    fn fig4_ab_cluster_contents() {
        let g = fig1_data_graph();
        let gc = build_ccsr(&g).unwrap();
        let key = ClusterKey::directed(0, 1, NO_LABEL);
        let d = gc.cluster(&key).expect("(A,B,NULL) cluster exists").decode();
        // v1 (id 0) has outgoing neighbors v2, v6 (ids 1, 5) in the cluster.
        assert_eq!(d.out_neighbors(0), &[1, 5]);
        assert_eq!(d.out_neighbors(3), &[4]);
        assert_eq!(d.in_neighbors(1), &[0]);
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn unlabeled_graph_has_at_most_two_clusters() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(5);
        b.add_edge(0, 1, NO_LABEL).unwrap();
        b.add_undirected_edge(1, 2, NO_LABEL).unwrap();
        b.add_undirected_edge(3, 4, NO_LABEL).unwrap();
        let gc = build_ccsr(&b.build()).unwrap();
        assert_eq!(gc.cluster_count(), 2); // one directed, one undirected
    }

    #[test]
    fn undirected_cluster_stores_each_edge_twice() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_undirected_edge(0, 1, 9).unwrap();
        let gc = build_ccsr(&b.build()).unwrap();
        let key = ClusterKey::undirected(0, 1, 9);
        let d = gc.cluster(&key).unwrap().decode();
        assert_eq!(d.out_neighbors(0), &[1]);
        assert_eq!(d.out_neighbors(1), &[0]);
        assert!(d.inc.is_none());
    }

    #[test]
    fn edge_labels_split_clusters() {
        let mut b = GraphBuilder::new();
        b.add_unlabeled_vertices(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(0, 2, 2).unwrap();
        let gc = build_ccsr(&b.build()).unwrap();
        assert_eq!(gc.cluster_count(), 2);
        assert!(gc.cluster(&ClusterKey::directed(NO_LABEL, NO_LABEL, 1)).is_some());
        assert!(gc.cluster(&ClusterKey::directed(NO_LABEL, NO_LABEL, 2)).is_some());
    }

    #[test]
    fn negation_index_covers_both_orientations() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(0);
        b.add_edge(0, 1, NO_LABEL).unwrap(); // (0,1) directed
        b.add_edge(1, 2, NO_LABEL).unwrap(); // (1,0) directed the other way
        let gc = build_ccsr(&b.build()).unwrap();
        let keys = gc.negation_keys(1, 0);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&ClusterKey::directed(0, 1, NO_LABEL)));
        assert!(keys.contains(&ClusterKey::directed(1, 0, NO_LABEL)));
        assert!(gc.negation_keys(5, 6).is_empty());
    }

    #[test]
    fn labels_survive_without_graph() {
        let g = fig1_data_graph();
        let gc = build_ccsr(&g).unwrap();
        for v in 0..g.n() as u32 {
            assert_eq!(gc.vertex_label(v), g.label(v));
        }
        assert_eq!(gc.label_frequency(), g.label_frequency());
    }
}
