//! Property: for random labeled graphs (directed and undirected), the full
//! offline pipeline `build_ccsr → to_bytes → from_bytes → decompress`
//! yields exactly the per-cluster CSR built directly from the edge list —
//! i.e. persistence and RLE compression are lossless end to end.

use csce_ccsr::{build_ccsr, persist, ClusterKey, Csr};
use csce_graph::{Graph, GraphBuilder, VertexId, NO_LABEL};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random small heterogeneous graph with labeled vertices and
/// edges, mixing directed and undirected edges when `mixed` allows.
fn arb_graph(directed_bias: bool) -> impl Strategy<Value = Graph> {
    (
        2usize..=12,
        1u32..=4,
        1u32..=3,
        proptest::collection::vec((0u32..144, 0u32..144, 0u32..3, 0u32..2), 0..40),
    )
        .prop_map(move |(n, vlabels, elabels, raw)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex(i as u32 % vlabels);
            }
            for (x, y, l, dir) in raw {
                let (a, c) = ((x as usize % n) as VertexId, (y as usize % n) as VertexId);
                if a == c {
                    continue;
                }
                let label = if l == 0 { NO_LABEL } else { l % elabels };
                if dir == 1 || directed_bias {
                    let _ = b.add_edge(a, c, label);
                } else {
                    let _ = b.add_undirected_edge(a, c, label);
                }
            }
            b.build()
        })
}

type ArcsByKey = BTreeMap<ClusterKey, Vec<(VertexId, VertexId)>>;

/// Per-cluster arc lists derived straight from the edge list, in the same
/// orientation convention the CCSR builder uses (undirected edges stored
/// from both endpoints, directed ones as separate out/in CSRs).
fn expected_arcs(g: &Graph) -> (ArcsByKey, ArcsByKey) {
    let mut out: ArcsByKey = BTreeMap::new();
    let mut inc: ArcsByKey = BTreeMap::new();
    for e in g.edges() {
        let key = ClusterKey::of_edge(g, e.src, e.dst, e.label, e.directed);
        if e.directed {
            out.entry(key).or_default().push((e.src, e.dst));
            inc.entry(key).or_default().push((e.dst, e.src));
        } else {
            let v = out.entry(key).or_default();
            v.push((e.src, e.dst));
            v.push((e.dst, e.src));
        }
    }
    (out, inc)
}

fn assert_roundtrip(g: &Graph) {
    let gc = build_ccsr(g).unwrap();
    let loaded = persist::from_bytes(&persist::to_bytes(&gc).unwrap()).expect("roundtrip decodes");
    prop_assert_eq!(loaded.n(), g.n());
    prop_assert_eq!(loaded.vertex_labels(), g.labels());

    let (out, inc) = expected_arcs(g);
    prop_assert_eq!(loaded.cluster_count(), out.len());
    for (key, pairs) in &out {
        let cluster = loaded.cluster(key).expect("cluster survives persistence");
        let direct = Csr::from_pairs(g.n(), pairs.clone()).unwrap();
        prop_assert_eq!(&cluster.out.decompress(), &direct, "out csr for {:?}", key);
        match inc.get(key) {
            Some(pairs) => {
                let inc_csr = cluster.inc.as_ref().expect("directed cluster has inc");
                let direct = Csr::from_pairs(g.n(), pairs.clone()).unwrap();
                prop_assert_eq!(&inc_csr.decompress(), &direct, "inc csr for {:?}", key);
            }
            None => prop_assert!(cluster.inc.is_none(), "undirected cluster has no inc"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mixed_graph_pipeline_is_lossless(g in arb_graph(false)) {
        assert_roundtrip(&g);
    }

    #[test]
    fn directed_graph_pipeline_is_lossless(g in arb_graph(true)) {
        assert_roundtrip(&g);
    }
}
