//! A hand-rolled JSON document model, writer and parser.
//!
//! Serde is unavailable in the build environment, and observability output
//! must be machine-readable anyway — so this is a small, strict JSON
//! implementation: a document tree ([`JsonValue`]), a writer with correct
//! string escaping, and a recursive-descent parser used by tests to prove
//! the emitted reports are valid JSON.

use std::fmt::Write as _;

/// A JSON document. Objects preserve insertion order so exported reports
/// diff cleanly between runs.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integral numbers keep full `u64` precision (counters can exceed
    /// 2^53, where `f64` would silently round).
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements, or `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as u64 when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(x) => Some(x),
            JsonValue::Int(x) if x >= 0 => Some(x as u64),
            JsonValue::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(x) => Some(x as f64),
            JsonValue::Int(x) => Some(x as f64),
            JsonValue::Float(x) => Some(x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Serialize compactly (single line).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Int(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent, so the
                    // value reads back as a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (key, value) = &fields[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates outside the BMP are not needed by
                            // our own output; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 3; // the final +1 below covers the 4th
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(JsonValue::Int(x));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError { offset: start, message: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("fig\"6\"\n".into())),
            ("count".into(), JsonValue::UInt(u64::MAX)),
            ("neg".into(), JsonValue::Int(-3)),
            ("rate".into(), JsonValue::Float(0.25)),
            ("ok".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            ("series".into(), JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)])),
            ("empty_obj".into(), JsonValue::Object(vec![])),
            ("empty_arr".into(), JsonValue::Array(vec![])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            let back = parse(&text).expect("round trip parses");
            assert_eq!(back.get("count").and_then(JsonValue::as_u64), Some(u64::MAX));
            assert_eq!(back.get("name").and_then(JsonValue::as_str), Some("fig\"6\"\n"));
            assert_eq!(back.get("rate").and_then(JsonValue::as_f64), Some(0.25));
            assert_eq!(back.get("neg"), Some(&JsonValue::Int(-3)));
            assert_eq!(back.get("ok").and_then(JsonValue::as_bool), Some(true));
            assert_eq!(back.get("nothing"), Some(&JsonValue::Null));
            assert_eq!(back.get("series").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
        }
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = parse(r#" {"a": [1, 2.5, -3, "xA", {"b": false}], "c": null} "#).unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2], JsonValue::Int(-3));
        assert_eq!(a[3].as_str(), Some("xA"));
        assert_eq!(a[4].get("b").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(JsonValue::Float(2.0).to_compact(), "2.0");
    }
}
