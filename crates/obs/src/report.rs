//! Run reports: metadata + phase tree + metrics, exported as an aligned
//! human-readable block or a JSON document.
//!
//! The JSON schema (also documented in the repository README):
//!
//! ```json
//! {
//!   "meta":     {"algo": "CSCE", "variant": "edge-induced", ...},
//!   "phases":   [{"name": "load", "nanos": 12345, "calls": 1,
//!                 "children": [...]}, ...],
//!   "counters": {"exec.nodes": 42, ...},
//!   "gauges":   {"exec.sce_hit_rate": 0.5, ...},
//!   "series":   {"exec.depth_candidates": [3, 9, 27], ...}
//! }
//! ```
//!
//! Meta values are strings; counters are unsigned integers; gauges are
//! floats; series are arrays of unsigned integers indexed by recursion
//! depth (or another documented index).

use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::span::{PhaseNode, PhaseTree};

/// Everything measured about one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Free-form identification: algorithm, dataset, variant, ...
    pub meta: Vec<(String, String)>,
    pub phases: PhaseTree,
    pub metrics: MetricsRegistry,
}

impl RunReport {
    pub fn new() -> RunReport {
        RunReport::default()
    }

    /// Append a metadata entry (insertion order is preserved on export).
    pub fn meta(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// The report as a JSON document tree.
    pub fn to_json(&self) -> JsonValue {
        fn phase_json(node: &PhaseNode) -> JsonValue {
            JsonValue::Object(vec![
                ("name".into(), JsonValue::Str(node.name.clone())),
                ("nanos".into(), JsonValue::UInt(node.nanos.min(u64::MAX as u128) as u64)),
                ("calls".into(), JsonValue::UInt(node.calls)),
                (
                    "children".into(),
                    JsonValue::Array(node.children.iter().map(phase_json).collect()),
                ),
            ])
        }
        JsonValue::Object(vec![
            (
                "meta".into(),
                JsonValue::Object(
                    self.meta.iter().map(|(k, v)| (k.clone(), JsonValue::Str(v.clone()))).collect(),
                ),
            ),
            ("phases".into(), JsonValue::Array(self.phases.roots.iter().map(phase_json).collect())),
            (
                "counters".into(),
                JsonValue::Object(
                    self.metrics
                        .counters()
                        .map(|(k, v)| (k.to_string(), JsonValue::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Object(
                    self.metrics
                        .gauges()
                        .map(|(k, v)| (k.to_string(), JsonValue::Float(v)))
                        .collect(),
                ),
            ),
            (
                "series".into(),
                JsonValue::Object(
                    self.metrics
                        .all_series()
                        .map(|(k, vs)| {
                            (
                                k.to_string(),
                                JsonValue::Array(vs.iter().map(|&v| JsonValue::UInt(v)).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// The report as an aligned human-readable block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            let key_w = self.meta.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &self.meta {
                out.push_str(&format!("{k:<key_w$}  {v}\n"));
            }
            out.push('\n');
        }
        if !self.phases.roots.is_empty() {
            out.push_str("phases\n");
            for line in self.phases.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            out.push('\n');
        }
        if !self.metrics.is_empty() {
            out.push_str("counters\n");
            let rows: Vec<(String, String)> = self
                .metrics
                .counters()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .chain(self.metrics.gauges().map(|(k, v)| (k.to_string(), format!("{v:.4}"))))
                .chain(self.metrics.all_series().map(|(k, vs)| {
                    let body = vs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
                    (k.to_string(), format!("[{body}]"))
                }))
                .collect();
            let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in rows {
                out.push_str(&format!("  {k:<key_w$}  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::Recorder;

    fn sample_report() -> RunReport {
        let rec = Recorder::new();
        {
            let _load = rec.span("load");
        }
        {
            let _plan = rec.span("plan");
            let _gcf = rec.span("gcf");
        }
        let mut report = RunReport::new();
        report.meta("algo", "CSCE").meta("variant", "edge-induced");
        report.phases = rec.snapshot();
        report.metrics.inc("exec.nodes", 17);
        report.metrics.set_gauge("exec.sce_hit_rate", 0.5);
        report.metrics.set_series("exec.depth_candidates", vec![3, 9]);
        report
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let report = sample_report();
        let parsed = json::parse(&report.to_json_string()).expect("valid json");
        assert_eq!(
            parsed.get("meta").and_then(|m| m.get("algo")).and_then(JsonValue::as_str),
            Some("CSCE")
        );
        let phases = parsed.get("phases").and_then(JsonValue::as_array).expect("phases");
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].get("name").and_then(JsonValue::as_str), Some("plan"));
        let children = phases[1].get("children").and_then(JsonValue::as_array).expect("children");
        assert_eq!(children[0].get("name").and_then(JsonValue::as_str), Some("gcf"));
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("exec.nodes")).and_then(JsonValue::as_u64),
            Some(17)
        );
        let series = parsed
            .get("series")
            .and_then(|s| s.get("exec.depth_candidates"))
            .and_then(JsonValue::as_array)
            .expect("series");
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn text_export_mentions_everything() {
        let text = sample_report().to_text();
        for needle in ["algo", "CSCE", "phases", "load", "gcf", "exec.nodes", "17", "[3, 9]"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
