//! # csce-obs
//!
//! Zero-dependency observability for the CSCE engine: the measurement
//! substrate behind `csce match --stats`, the `BENCH_*.json` run reports,
//! and every perf claim later PRs make.
//!
//! Three pieces, combinable but independent:
//!
//! * [`Recorder`] / [`Span`] — nestable, thread-aware phase timers
//!   collecting a tree of wall-clock durations (`load → parse`,
//!   `plan → gcf/dag/ldsf/nec`, ...). A [`Recorder::disabled`] recorder
//!   reduces every span to a single branch, so library code can thread
//!   one unconditionally.
//! * [`MetricsRegistry`] — named counters, gauges and per-depth series
//!   with deterministic (sorted) export and a worker-merge reduction.
//! * [`RunReport`] — meta + phases + metrics, exported as an aligned text
//!   block or JSON via the built-in [`json`] writer/parser (serde is not
//!   available in the build environment, and report validity is covered
//!   by parsing our own output back).

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metrics::MetricsRegistry;
pub use report::RunReport;
pub use span::{PhaseNode, PhaseTree, Recorder, Span};

use std::time::Duration;

/// Format a duration the way the paper's plots do (log-scale friendly).
pub fn format_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(format_duration(Duration::from_micros(250)), "250.0us");
        assert_eq!(format_duration(Duration::from_millis(2)), "2.0ms");
        assert_eq!(format_duration(Duration::from_secs(3)), "3.00s");
    }
}
