//! The run-report metrics registry: named counters, gauges and per-depth
//! series, kept in sorted maps so exports are deterministic.
//!
//! Names are dot-separated and prefixed by subsystem (`exec.`, `read.`,
//! `plan.`), matching the span names of the phase tree.

use std::collections::BTreeMap;

/// A bag of named measurements for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<u64>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add to a counter (creating it at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a counter outright.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Read a counter; absent counters read zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge (a point-in-time float, e.g. a rate or ratio).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Set an indexed series (e.g. a per-recursion-depth counter vector).
    pub fn set_series(&mut self, name: &str, values: Vec<u64>) {
        self.series.insert(name.to_string(), values);
    }

    /// Read a series; absent series read empty.
    pub fn series(&self, name: &str) -> &[u64] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Merge another registry in: counters add, series add element-wise
    /// (growing to the longer length), gauges take the other side's value.
    /// This is the reduction used when combining per-worker registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, values) in &other.series {
            let mine = self.series.entry(name.clone()).or_default();
            if mine.len() < values.len() {
                mine.resize(values.len(), 0);
            }
            for (m, &v) in mine.iter_mut().zip(values) {
                *m += v;
            }
        }
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn all_series(&self) -> impl Iterator<Item = (&str, &[u64])> {
        self.series.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("exec.nodes"), 0);
        m.inc("exec.nodes", 2);
        m.inc("exec.nodes", 3);
        assert_eq!(m.counter("exec.nodes"), 5);
        m.set_counter("exec.nodes", 1);
        assert_eq!(m.counter("exec.nodes"), 1);
    }

    #[test]
    fn merge_adds_counters_and_series() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        a.set_series("d", vec![1, 2]);
        a.set_gauge("g", 0.25);
        let mut b = MetricsRegistry::new();
        b.inc("c", 10);
        b.inc("only_b", 7);
        b.set_series("d", vec![10, 20, 30]);
        b.set_gauge("g", 0.75);
        a.merge(&b);
        assert_eq!(a.counter("c"), 11);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.series("d"), &[11, 22, 30]);
        assert_eq!(a.gauge("g"), Some(0.75));
    }

    #[test]
    fn export_iteration_is_sorted() {
        let mut m = MetricsRegistry::new();
        m.inc("zeta", 1);
        m.inc("alpha", 1);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
