//! Phase-timed spans: a nestable, thread-aware wall-clock profiler.
//!
//! A [`Recorder`] owns a tree of phase timings. Entering a [`Span`] pushes
//! a node onto the *current thread's* open-span stack; dropping it adds
//! the elapsed time to that node. Spans opened while another span of the
//! same thread is open become its children, so instrumented call trees
//! come out as phase trees (`load → parse`, `plan → gcf/dag/ldsf/nec`).
//! Spans from different threads attach at the root independently, and the
//! same phase name aggregates (total time + call count) across entries.
//!
//! There is no global state: recorders are plain values passed by
//! reference, and a [`Recorder::disabled`] recorder makes `span()` a
//! branch-and-return so uninstrumented paths stay fast.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// One node of the phase tree: aggregate time and call count for a named
/// phase at one position in the hierarchy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseNode {
    pub name: String,
    pub nanos: u128,
    pub calls: u64,
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Total recorded duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.nanos.min(u64::MAX as u128) as u64)
    }

    /// Find a direct child by name.
    pub fn child(&self, name: &str) -> Option<&PhaseNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// A snapshot of a recorder's phase tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTree {
    pub roots: Vec<PhaseNode>,
}

impl PhaseTree {
    /// Find a top-level phase by name.
    pub fn root(&self, name: &str) -> Option<&PhaseNode> {
        self.roots.iter().find(|c| c.name == name)
    }

    /// Look up a node by `/`-separated path, e.g. `"plan/gcf"`.
    pub fn at(&self, path: &str) -> Option<&PhaseNode> {
        let mut parts = path.split('/');
        let mut node = self.root(parts.next()?)?;
        for part in parts {
            node = node.child(part)?;
        }
        Some(node)
    }

    /// Sum of top-level phase durations.
    pub fn total(&self) -> Duration {
        self.roots.iter().map(|r| r.duration()).sum()
    }

    /// Render as an indented, aligned text block.
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, String, String)> = Vec::new();
        fn walk(node: &PhaseNode, depth: usize, rows: &mut Vec<(String, String, String)>) {
            rows.push((
                format!("{}{}", "  ".repeat(depth), node.name),
                crate::format_duration(node.duration()),
                if node.calls == 1 { String::new() } else { format!("x{}", node.calls) },
            ));
            for child in &node.children {
                walk(child, depth + 1, rows);
            }
        }
        for root in &self.roots {
            walk(root, 0, &mut rows);
        }
        let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
        let time_w = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, time, calls) in rows {
            out.push_str(&format!("{name:<name_w$}  {time:>time_w$}"));
            if !calls.is_empty() {
                out.push_str("  ");
                out.push_str(&calls);
            }
            out.push('\n');
        }
        out
    }
}

/// Index path from the root to an open node.
type NodePath = Vec<usize>;

#[derive(Default)]
struct RecorderState {
    tree: PhaseTree,
    /// Open-span stack per thread: each entry is the index path of the
    /// span's node in `tree`.
    stacks: HashMap<ThreadId, Vec<NodePath>>,
}

impl RecorderState {
    fn node_mut(&mut self, path: &[usize]) -> &mut PhaseNode {
        let mut node = &mut self.tree.roots[path[0]];
        for &i in &path[1..] {
            node = &mut node.children[i];
        }
        node
    }

    /// Find or create the node at an explicit `/`-separated path from the
    /// root, creating intermediate nodes as needed, and push it onto the
    /// current thread's open-span stack.
    fn open_at(&mut self, path_names: &str) -> NodePath {
        let tid = std::thread::current().id();
        let mut path = NodePath::new();
        for name in path_names.split('/').filter(|s| !s.is_empty()) {
            let siblings: &mut Vec<PhaseNode> = if path.is_empty() {
                &mut self.tree.roots
            } else {
                &mut self.node_mut(&path).children
            };
            let idx = match siblings.iter().position(|c| c.name == name) {
                Some(i) => i,
                None => {
                    siblings.push(PhaseNode { name: name.to_string(), ..PhaseNode::default() });
                    siblings.len() - 1
                }
            };
            path.push(idx);
        }
        self.stacks.entry(tid).or_default().push(path.clone());
        path
    }

    /// Find or create the child named `name` under the current thread's
    /// innermost open span (or at the root), returning its index path.
    fn open(&mut self, name: &str) -> NodePath {
        let tid = std::thread::current().id();
        let parent: Option<NodePath> = self.stacks.get(&tid).and_then(|s| s.last().cloned());
        let mut path = parent.unwrap_or_default();
        let siblings: &mut Vec<PhaseNode> =
            if path.is_empty() { &mut self.tree.roots } else { &mut self.node_mut(&path).children };
        let idx = match siblings.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                siblings.push(PhaseNode { name: name.to_string(), ..PhaseNode::default() });
                siblings.len() - 1
            }
        };
        path.push(idx);
        self.stacks.entry(tid).or_default().push(path.clone());
        path
    }

    fn close(&mut self, path: &[usize], elapsed: Duration) {
        if path.is_empty() {
            return;
        }
        let node = self.node_mut(path);
        node.nanos += elapsed.as_nanos();
        node.calls += 1;
        let tid = std::thread::current().id();
        if let Some(stack) = self.stacks.get_mut(&tid) {
            if stack.last().map(|p| p.as_slice()) == Some(path) {
                stack.pop();
            }
        }
    }
}

/// Collects a tree of phase timings. Cheap to share by reference; all
/// mutation happens behind a mutex that is touched only at span
/// boundaries, never inside them.
pub struct Recorder {
    enabled: bool,
    state: Mutex<RecorderState>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An active recorder.
    pub fn new() -> Recorder {
        Recorder { enabled: true, state: Mutex::new(RecorderState::default()) }
    }

    /// A recorder that ignores everything; `span()` costs one branch.
    /// Library entry points default to this so uninstrumented callers pay
    /// nothing.
    pub fn disabled() -> Recorder {
        Recorder { enabled: false, state: Mutex::new(RecorderState::default()) }
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Lock the state, recovering from poisoning: a worker thread that
    /// panics while a span is open must not take the whole recorder (and
    /// every later report) down with it — the tree holds only counters,
    /// which stay structurally valid.
    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enter a phase; the returned guard records the elapsed time into the
    /// tree when dropped. Drop order defines nesting, so bind it to a
    /// local (`let _span = ...`), not `_`.
    pub fn span(&self, name: &str) -> Span<'_> {
        if !self.enabled {
            return Span { recorder: self, path: Vec::new(), start: Instant::now(), live: false };
        }
        let path = self.lock().open(name);
        Span { recorder: self, path, start: Instant::now(), live: true }
    }

    /// Enter a phase at an explicit `/`-separated position in the tree,
    /// creating intermediate nodes as needed (only the innermost node's
    /// time is recorded). This is how worker threads attach under the
    /// phase that spawned them (`span_path("execute/worker")`): a plain
    /// `span()` from a fresh thread would land at the root. The guard
    /// joins the calling thread's open-span stack, so nested `span()`
    /// calls attach beneath it.
    pub fn span_path(&self, path: &str) -> Span<'_> {
        if !self.enabled {
            return Span { recorder: self, path: Vec::new(), start: Instant::now(), live: false };
        }
        let path = self.lock().open_at(path);
        Span { recorder: self, path, start: Instant::now(), live: true }
    }

    /// Time a closure as one phase.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Snapshot the phase tree collected so far.
    pub fn snapshot(&self) -> PhaseTree {
        self.lock().tree.clone()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.enabled).finish()
    }
}

/// An RAII phase guard; see [`Recorder::span`].
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    recorder: &'a Recorder,
    path: NodePath,
    start: Instant,
    live: bool,
}

impl Span<'_> {
    /// Enter a phase on `recorder` — alias of [`Recorder::span`] reading
    /// closer to the call sites (`Span::enter(rec, "ccsr.build")`).
    pub fn enter<'a>(recorder: &'a Recorder, name: &str) -> Span<'a> {
        recorder.span(name)
    }

    /// Elapsed time since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.live {
            let elapsed = self.start.elapsed();
            self.recorder.lock().close(&self.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_a_tree() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("plan");
            {
                let _inner = rec.span("gcf");
            }
            {
                let _inner = rec.span("ldsf");
            }
        }
        let tree = rec.snapshot();
        assert_eq!(tree.roots.len(), 1);
        let plan = tree.root("plan").expect("plan phase recorded");
        assert_eq!(plan.calls, 1);
        assert_eq!(plan.children.len(), 2);
        assert!(tree.at("plan/gcf").is_some());
        assert!(tree.at("plan/ldsf").is_some());
        assert!(tree.at("plan/missing").is_none());
    }

    #[test]
    fn repeated_phases_aggregate() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let _s = rec.span("read");
        }
        let tree = rec.snapshot();
        assert_eq!(tree.root("read").expect("read phase").calls, 3);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let _s = Span::enter(&rec, "x");
        }
        assert!(rec.snapshot().roots.is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn threads_record_independently() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _outer = rec.span("worker");
                    let _inner = rec.span("step");
                });
            }
        });
        let tree = rec.snapshot();
        let worker = tree.root("worker").expect("worker phase");
        assert_eq!(worker.calls, 4);
        assert_eq!(tree.at("worker/step").expect("nested").calls, 4);
    }

    #[test]
    fn span_path_attaches_threads_under_an_existing_phase() {
        let rec = Recorder::new();
        {
            let _exec = rec.span("execute");
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let _worker = rec.span_path("execute/worker");
                        // Nested plain spans attach beneath the path span.
                        let _step = rec.span("claim");
                    });
                }
            });
        }
        let tree = rec.snapshot();
        assert_eq!(tree.roots.len(), 1, "workers did not land at the root");
        assert_eq!(tree.at("execute/worker").expect("worker under execute").calls, 3);
        assert_eq!(tree.at("execute/worker/claim").expect("nested under worker").calls, 3);
    }

    #[test]
    fn span_path_on_disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        {
            let _s = rec.span_path("a/b");
        }
        assert!(rec.snapshot().roots.is_empty());
    }

    #[test]
    fn time_wraps_a_closure() {
        let rec = Recorder::new();
        let out = rec.time("compute", || 7 * 6);
        assert_eq!(out, 42);
        assert_eq!(rec.snapshot().root("compute").expect("phase").calls, 1);
    }

    #[test]
    fn render_is_indented_and_aligned() {
        let rec = Recorder::new();
        {
            let _a = rec.span("alpha");
            let _b = rec.span("beta");
        }
        let text = rec.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("alpha"));
        assert!(lines[1].starts_with("  beta"));
    }
}
