//! # CSCE — Large Subgraph Matching for Heterogeneous Graphs
//!
//! A Rust implementation of *"Large Subgraph Matching: A Comprehensive
//! and Efficient Approach for Heterogeneous Graphs"* (ICDE 2024):
//! Clustered Compressed Sparse Rows (CCSR) for heterogeneity-aware
//! indexing and Sequential Candidate Equivalence (SCE) for
//! dependency-aware candidate reuse, supporting edge-induced,
//! vertex-induced and homomorphic subgraph matching.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — the heterogeneous graph substrate (model, I/O,
//!   generators, pattern sampling, test oracles);
//! * [`ccsr`] — the clustered CSR index (`G_C`), Algorithm 1 cluster
//!   selection, persistence;
//! * [`engine`] — plans (GCF / DAG / LDSF / NEC) and the SCE executor,
//!   plus the high-level [`Engine`];
//! * [`baselines`] — RI, failing-set backtracking, Graphflow-style WCOJ,
//!   VF-style induced matching and GraphPi-style symmetry breaking;
//! * [`datasets`] — deterministic stand-ins for the paper's data graphs
//!   and the EMAIL-EU case study;
//! * [`obs`] — zero-dependency observability: phase-timed spans, the
//!   metrics registry, run reports and the built-in JSON codec;
//! * [`analyze`] — deep structural invariant checkers ([`analyze::Validate`])
//!   for graphs, `G_C`, and plans, plus the `csce-lint` source linter;
//! * [`fuzz`] — the seeded differential-testing harness behind
//!   `csce fuzz`: random cases, the engine/baseline/oracle referee sweep,
//!   the shrinker and the `.repro` format.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use csce_analyze as analyze;
pub use csce_baselines as baselines;
pub use csce_ccsr as ccsr;
pub use csce_core as engine;
pub use csce_datasets as datasets;
pub use csce_fuzz as fuzz;
pub use csce_graph as graph;
pub use csce_obs as obs;

pub use csce_core::{Engine, ExecError, PlannerConfig, QueryOutput, RunConfig};
pub use csce_graph::{Graph, GraphBuilder, Variant, VertexId, NO_LABEL};
