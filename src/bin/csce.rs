//! `csce` — command-line front end for the CSCE subgraph matching engine.
//!
//! ```text
//! csce cluster <graph.csce> -o <out.ccsr>         # offline: build + persist G_C
//! csce stats   <graph.csce|graph.ccsr>            # Table IV-style statistics
//! csce match   <data> [pattern.csce] [options]    # count / enumerate embeddings
//!     --query "(a:0)-[5]->(b:1)"  inline pattern instead of a file
//!     --variant e|v|h      matching variant (default e)
//!     --enumerate [N]      print embeddings (all, or first N)
//!     --plan ri|ri+c|csce  planner preset (default csce)
//!     --time-limit SECS    abort after a budget
//!     --threads N          parallel counting workers
//!     --explain            print the plan instead of executing
//! ```
//!
//! Graph files use the CSCE text format (`csce_graph::io`); a `.ccsr`
//! data file is a persisted cluster set from `csce cluster`.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::io;
use csce::{Graph, Variant};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `csce help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "csce — large subgraph matching for heterogeneous graphs\n\n\
         USAGE:\n  csce cluster <graph.csce> -o <out.ccsr>\n  \
         csce stats <graph.csce|graph.ccsr>\n  \
         csce match <data.csce|data.ccsr> <pattern.csce | --query \"(a:0)-->(b:1)\">\n            \
         [--variant e|v|h] [--enumerate [N]] [--plan ri|ri+c|csce]\n            \
         [--time-limit SECS] [--threads N] [--explain]\n  \
         csce dot <graph.csce | --query \"...\">"
    );
}

/// Load a data graph either as text (clustered on the fly) or as a
/// persisted `.ccsr` cluster set.
fn load_engine(path: &str) -> Result<Engine, String> {
    if path.ends_with(".ccsr") {
        let ccsr = csce::ccsr::persist::load(path).map_err(|e| e.to_string())?;
        Ok(Engine::from_ccsr(ccsr))
    } else {
        let g = io::load_csce(path).map_err(|e| e.to_string())?;
        Ok(Engine::build(&g))
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    io::load_csce(path).map_err(|e| e.to_string())
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let (mut input, mut output) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => output = Some(it.next().ok_or("missing -o value")?.clone()),
            other => input = Some(other.to_string()),
        }
    }
    let input = input.ok_or("usage: csce cluster <graph.csce> -o <out.ccsr>")?;
    let output = output.ok_or("missing -o <out.ccsr>")?;
    let g = load_graph(&input)?;
    let t0 = std::time::Instant::now();
    let engine = Engine::build(&g);
    println!(
        "clustered {} vertices / {} edges into {} clusters in {:?}",
        g.n(),
        g.m(),
        engine.ccsr().cluster_count(),
        t0.elapsed()
    );
    csce::ccsr::persist::save(engine.ccsr(), &output).map_err(|e| e.to_string())?;
    println!("wrote {output}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: csce stats <graph>")?;
    if path.ends_with(".ccsr") {
        let engine = load_engine(path)?;
        let gc = engine.ccsr();
        println!("persisted G_C over {} vertices", gc.n());
        println!("{}", csce::ccsr::CcsrStats::of(gc));
    } else {
        let g = load_graph(path)?;
        println!("{}", csce::graph::GraphStats::of(&g));
    }
    Ok(())
}

/// `csce dot <graph.csce | --query "...">`: render to Graphviz DOT.
fn cmd_dot(args: &[String]) -> Result<(), String> {
    let g = match args {
        [flag, q] if flag == "--query" => {
            csce::graph::query::parse_pattern(q).map_err(|e| e.to_string())?
        }
        [path] => load_graph(path)?,
        _ => return Err("usage: csce dot <graph.csce>  or  csce dot --query \"...\"".into()),
    };
    print!("{}", csce::graph::export::to_dot(&g, "g"));
    Ok(())
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    match s {
        "e" | "E" | "edge" => Ok(Variant::EdgeInduced),
        "v" | "V" | "vertex" => Ok(Variant::VertexInduced),
        "h" | "H" | "hom" => Ok(Variant::Homomorphic),
        other => Err(format!("unknown variant {other:?} (expected e, v or h)")),
    }
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut variant = Variant::EdgeInduced;
    let mut enumerate: Option<u64> = None;
    let mut planner = PlannerConfig::csce();
    let mut time_limit = None;
    let mut explain = false;
    let mut query: Option<String> = None;
    let mut threads: usize = 1;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--query" => query = Some(it.next().ok_or("missing --query value")?.clone()),
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("missing --threads value")?
                    .parse()
                    .map_err(|_| "bad --threads")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--variant" => variant = parse_variant(it.next().ok_or("missing --variant value")?)?,
            "--enumerate" => {
                enumerate = Some(match it.peek() {
                    Some(n) if !n.starts_with("--") => {
                        it.next().unwrap().parse().map_err(|_| "bad --enumerate count")?
                    }
                    _ => u64::MAX,
                });
            }
            "--plan" => {
                planner = match it.next().ok_or("missing --plan value")?.as_str() {
                    "ri" => PlannerConfig::ri_only(),
                    "ri+c" => PlannerConfig::ri_cluster(),
                    "csce" => PlannerConfig::csce(),
                    other => return Err(format!("unknown planner {other:?}")),
                };
            }
            "--time-limit" => {
                let secs: f64 = it
                    .next()
                    .ok_or("missing --time-limit value")?
                    .parse()
                    .map_err(|_| "bad --time-limit")?;
                time_limit = Some(Duration::from_secs_f64(secs));
            }
            "--explain" => explain = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(a),
        }
    }
    let (data, p) = match (positional.as_slice(), query) {
        ([data], Some(q)) => {
            let p = csce::graph::query::parse_pattern(&q).map_err(|e| e.to_string())?;
            (*data, p)
        }
        ([data, pattern], None) => (*data, load_graph(pattern)?),
        _ => {
            return Err(
                "usage: csce match <data> <pattern>  or  csce match <data> --query \"...\""
                    .to_string(),
            )
        }
    };
    let engine = load_engine(data)?;
    if !p.is_connected() {
        return Err("pattern must be connected".to_string());
    }

    if explain {
        let plan = engine.plan(&p, variant, planner);
        print!("{}", csce::engine::plan::explain::explain(&plan));
        return Ok(());
    }

    match enumerate {
        None if threads > 1 => {
            let t0 = std::time::Instant::now();
            let count = engine.count_parallel(&p, variant, threads);
            println!("{count} embeddings ({variant}) in {:?} on {threads} threads", t0.elapsed());
        }
        None => {
            let out = engine.run(&p, variant, planner, RunConfig { time_limit, ..Default::default() });
            println!(
                "{} embeddings ({variant}){}",
                out.count,
                if out.stats.timed_out { " — TIME LIMIT, partial" } else { "" }
            );
            println!(
                "read {:?}  plan {:?}  exec {:?}  (SCE hits {}, candidate sets {})",
                out.read_time,
                out.plan_time,
                out.exec_time,
                out.stats.sce_cache_hits,
                out.stats.candidate_computations
            );
        }
        Some(limit) => {
            let mut printed = 0u64;
            engine.enumerate(&p, variant, &mut |f| {
                println!("{f:?}");
                printed += 1;
                printed < limit
            });
            println!("-- {printed} embeddings printed");
        }
    }
    Ok(())
}
