//! `csce` — command-line front end for the CSCE subgraph matching engine.
//!
//! ```text
//! csce cluster <graph.csce> -o <out.ccsr>         # offline: build + persist G_C
//! csce stats   <graph.csce|graph.ccsr>            # Table IV-style statistics
//! csce match   <data> [pattern.csce] [options]    # count / enumerate embeddings
//!     --query "(a:0)-[5]->(b:1)"  inline pattern instead of a file
//!     --variant e|v|h      matching variant (default e)
//!     --enumerate [N]      print embeddings (all, or first N)
//!     --plan ri|ri+c|csce  planner preset (default csce)
//!     --time-limit SECS    abort after a budget
//!     --threads N          parallel matching workers (counting and
//!                          enumeration; enumerated output is sorted)
//!     --stats [text|json]  full run report (phase tree + counters) on stdout
//!     --progress SECS      periodic heartbeat on stderr while matching
//!     --explain            print the plan instead of executing
//! csce fuzz [options]                             # differential testing
//!     --runs N             number of random cases (default 200)
//!     --seed S             master seed (default 42)
//!     --threads N          parallel engine probes use N threads (default 4)
//!     --out DIR            where to write `.repro` files (default .)
//!     --baseline-time-limit SECS   per-baseline probe budget (default 2)
//!     --no-baselines       engine/oracle self-consistency only
//!     --inject-bug         sabotage the engine to demo catch + shrink
//!     --replay FILE        re-run a `.repro` instead of fuzzing
//! ```
//!
//! Graph files use the CSCE text format (`csce_graph::io`); a `.ccsr`
//! data file is a persisted cluster set from `csce cluster`.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::io;
use csce::obs::{Recorder, RunReport};
use csce::{Graph, Variant};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("match") => cmd_match(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `csce help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "csce — large subgraph matching for heterogeneous graphs\n\n\
         USAGE:\n  csce cluster <graph.csce> -o <out.ccsr>\n  \
         csce stats <graph.csce|graph.ccsr>\n  \
         csce match <data.csce|data.ccsr> <pattern.csce | --query \"(a:0)-->(b:1)\">\n            \
         [--variant e|v|h] [--enumerate [N]] [--plan ri|ri+c|csce]\n            \
         [--time-limit SECS] [--threads N] [--stats [text|json]]\n            \
         [--progress SECS] [--explain]\n  \
         csce validate <graph.csce|data.ccsr> [--query \"...\"] [--variant e|v|h] [--plan ri|ri+c|csce]\n  \
         csce validate --static [--root DIR] [--sarif FILE]     # workspace static analysis\n  \
         csce fuzz [--runs N] [--seed S] [--threads N] [--out DIR]\n            \
         [--baseline-time-limit SECS] [--no-baselines] [--inject-bug]\n  \
         csce fuzz --replay <file.repro>\n  \
         csce dot <graph.csce | --query \"...\">"
    );
}

/// Load a data graph either as text (clustered on the fly) or as a
/// persisted `.ccsr` cluster set, timing the work under a `load` phase.
fn load_engine(path: &str, rec: &Recorder) -> Result<Engine, String> {
    let _load = rec.span("load");
    if path.ends_with(".ccsr") {
        let ccsr = rec
            .time("deserialize", || csce::ccsr::persist::load(path))
            .map_err(|e| e.to_string())?;
        Ok(Engine::from_ccsr(ccsr))
    } else {
        let g = rec.time("parse", || io::load_csce(path)).map_err(|e| e.to_string())?;
        Ok(rec.time("cluster", || Engine::build(&g)))
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    io::load_csce(path).map_err(|e| e.to_string())
}

/// Reject patterns the planner cannot take (it asserts on them): empty
/// files parse fine (`t 0 0`) but must become a diagnostic, not a panic.
fn check_pattern(p: &Graph) -> Result<(), String> {
    if p.n() == 0 {
        return Err("pattern is empty (no vertices)".to_string());
    }
    if !p.is_connected() {
        return Err("pattern must be connected".to_string());
    }
    Ok(())
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let (mut input, mut output) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => output = Some(it.next().ok_or("missing -o value")?.clone()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => input = Some(other.to_string()),
        }
    }
    let input = input.ok_or("usage: csce cluster <graph.csce> -o <out.ccsr>")?;
    let output = output.ok_or("missing -o <out.ccsr>")?;
    let g = load_graph(&input)?;
    let t0 = std::time::Instant::now();
    let engine = Engine::build(&g);
    println!(
        "clustered {} vertices / {} edges into {} clusters in {:?}",
        g.n(),
        g.m(),
        engine.ccsr().cluster_count(),
        t0.elapsed()
    );
    csce::ccsr::persist::save(engine.ccsr(), &output).map_err(|e| e.to_string())?;
    println!("wrote {output}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag {flag:?}"));
    }
    let path = args.first().ok_or("usage: csce stats <graph>")?;
    if path.ends_with(".ccsr") {
        let engine = load_engine(path, &Recorder::disabled())?;
        let gc = engine.ccsr();
        println!("persisted G_C over {} vertices", gc.n());
        println!("{}", csce::ccsr::CcsrStats::of(gc));
    } else {
        let g = load_graph(path)?;
        println!("{}", csce::graph::GraphStats::of(&g));
    }
    Ok(())
}

/// `csce validate <graph.csce|data.ccsr> [--query "..." | pattern.csce]
/// [--variant e|v|h] [--plan ri|ri+c|csce]`: run the `csce-analyze` deep
/// structural checkers and print a PASS/FAIL report via `csce-obs`.
///
/// A `.csce` text graph is checked as a graph, then clustered and the
/// resulting `G_C` checked; a `.ccsr` file is decoded and checked
/// byte-for-byte (including the persist fixpoint). With a pattern, the
/// generated plan artifacts (DAG, LDSF order, NEC classes, cache slots)
/// are checked against the pattern too.
///
/// `csce validate --static [--root DIR] [--sarif FILE]`: run the
/// call-graph static analyzer over the workspace sources instead of (or
/// in addition to) a graph file. Findings beyond the committed baseline
/// (`scripts/static-baseline.txt`) are violations; `--sarif` additionally
/// writes the full finding set as a SARIF 2.1.0 document.
fn cmd_validate(args: &[String]) -> Result<(), String> {
    use csce::analyze::{ccsr_check, plan_check, rules, sched_check, Validate, ValidationReport};
    let mut positional: Vec<&String> = Vec::new();
    let mut query: Option<String> = None;
    let mut variant = Variant::EdgeInduced;
    let mut planner = PlannerConfig::csce();
    let mut static_mode = false;
    let mut sarif_path: Option<String> = None;
    let mut root = String::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--query" => query = Some(it.next().ok_or("missing --query value")?.clone()),
            "--variant" => variant = parse_variant(it.next().ok_or("missing --variant value")?)?,
            "--plan" => {
                planner = match it.next().ok_or("missing --plan value")?.as_str() {
                    "ri" => PlannerConfig::ri_only(),
                    "ri+c" => PlannerConfig::ri_cluster(),
                    "csce" => PlannerConfig::csce(),
                    other => return Err(format!("unknown planner {other:?}")),
                };
            }
            "--static" => static_mode = true,
            "--sarif" => sarif_path = Some(it.next().ok_or("missing --sarif value")?.clone()),
            "--root" => root = it.next().ok_or("missing --root value")?.clone(),
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(a),
        }
    }
    if sarif_path.is_some() && !static_mode {
        return Err("--sarif requires --static".to_string());
    }
    let (data, pattern) = match (positional.as_slice(), query) {
        ([], None) if static_mode => (None, None),
        ([data], None) => (Some(*data), None),
        ([data], Some(q)) => {
            (Some(*data), Some(csce::graph::query::parse_pattern(&q).map_err(|e| e.to_string())?))
        }
        ([data, pattern], None) => (Some(*data), Some(load_graph(pattern)?)),
        _ => {
            return Err(
                "usage: csce validate <graph.csce|data.ccsr> [pattern.csce | --query \"...\"] \
                 | csce validate --static [--root DIR] [--sarif FILE]"
                    .to_string(),
            )
        }
    };

    // The static analyzer runs first so its findings lead the report when
    // no graph is given.
    let static_report = if static_mode {
        let root_path = std::path::Path::new(&root);
        let sreport = rules::run_static(root_path)
            .map_err(|e| format!("static analysis under {root}: {e}"))?;
        eprintln!(
            "[csce] static analysis: {} functions, {} call edges, {} hot ({} entry points), \
             {} findings",
            sreport.functions,
            sreport.edges,
            sreport.hot_fns,
            sreport.entries_found,
            sreport.findings.len()
        );
        if let Some(path) = &sarif_path {
            std::fs::write(path, rules::to_sarif(&sreport).to_pretty())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("[csce] wrote SARIF report to {path}");
        }
        let baseline_path = root_path.join(rules::BASELINE_PATH);
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => rules::StaticBaseline::parse(&text)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => rules::StaticBaseline::default(),
            Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
        };
        Some(rules::to_validation_report(&sreport, &baseline))
    } else {
        None
    };

    let mut report;
    let engine;
    match data {
        Some(data) if data.ends_with(".ccsr") => {
            let bytes = std::fs::read(data).map_err(|e| format!("reading {data}: {e}"))?;
            report = ccsr_check::validate_ccsr_bytes(&bytes, data.to_string());
            engine = if report.is_ok() {
                Some(Engine::from_ccsr(
                    csce::ccsr::persist::from_bytes(&bytes).map_err(|e| e.to_string())?,
                ))
            } else {
                None
            };
        }
        Some(data) => {
            let g = load_graph(data)?;
            report = g.validate();
            report.subject = data.to_string();
            let e = Engine::build(&g);
            report.merge(e.ccsr().validate());
            engine = Some(e);
        }
        None => {
            report = ValidationReport::new("workspace static analysis");
            engine = None;
        }
    }
    if let Some(sr) = static_report {
        report.merge(sr);
    }

    if let Some(p) = pattern {
        check_pattern(&p)?;
        report.merge(p.validate());
        match &engine {
            Some(e) => {
                let plan = e.plan(&p, variant, planner);
                report.merge(plan_check::validate_plan(&p, &plan));
            }
            None => {
                // The G_C failed decoding/validation; still check the plan
                // artifacts the pattern alone determines.
                let mut r = ValidationReport::new("plan (skipped: invalid G_C)");
                r.ran("plan.skipped");
                report.merge(r);
            }
        }
    }

    // Engine self-check: the chunk-claim protocol the parallel executor's
    // exactness rests on (input-independent, so it always runs).
    report.merge(sched_check::validate_scheduler());

    print!("{}", report.to_run_report().to_text());
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!("validation failed: {} violation(s)", report.total_violations()))
    }
}

/// `csce fuzz`: drive the `csce-fuzz` differential harness — random
/// cases through every variant, the full engine configuration matrix,
/// the baselines and the oracle — and write the first divergence (after
/// shrinking and re-validation) as a replayable `.repro` file. With
/// `--replay FILE`, re-run one repro's probe instead; exits nonzero while
/// the divergence still reproduces.
fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    use csce::fuzz::referee::{diverges, EngineUnderTest, InjectedBugEngine, RealEngine};
    use csce::fuzz::{repro, run_fuzz, FuzzConfig};
    let mut config = FuzzConfig::default();
    let mut threads: usize = 4;
    let mut out_dir = String::from(".");
    let mut replay_path: Option<String> = None;
    let mut inject_bug = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--runs" => {
                config.runs =
                    it.next().ok_or("missing --runs value")?.parse().map_err(|_| "bad --runs")?;
            }
            "--seed" => {
                config.seed =
                    it.next().ok_or("missing --seed value")?.parse().map_err(|_| "bad --seed")?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("missing --threads value")?
                    .parse()
                    .map_err(|_| "bad --threads")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--out" => out_dir = it.next().ok_or("missing --out value")?.clone(),
            "--baseline-time-limit" => {
                let secs: f64 = it
                    .next()
                    .ok_or("missing --baseline-time-limit value")?
                    .parse()
                    .map_err(|_| "bad --baseline-time-limit")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--baseline-time-limit must be positive".into());
                }
                config.baseline_time_limit = Some(Duration::from_secs_f64(secs));
            }
            "--no-baselines" => config.check_baselines = false,
            "--inject-bug" => inject_bug = true,
            "--replay" => replay_path = Some(it.next().ok_or("missing --replay value")?.clone()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    config.thread_counts = if threads == 1 { vec![1] } else { vec![1, threads] };
    let engine: &dyn EngineUnderTest = if inject_bug { &InjectedBugEngine } else { &RealEngine };

    if let Some(path) = replay_path {
        let r = repro::Repro::load(&path)?;
        println!(
            "replaying {path}: seed {} case {} variant {} referee {}",
            r.seed,
            r.case,
            r.variant,
            r.referee.label()
        );
        println!("recorded: oracle {} vs {}", r.expected, r.observed);
        let report = repro::replay(&r, engine);
        print!("{}", report.validation.to_run_report().to_text());
        println!("now: oracle {} vs {}", report.expected_now, report.observed_now);
        if report.reproduces {
            return Err("divergence still reproduces".to_string());
        }
        println!("divergence no longer reproduces — fixed");
        return Ok(());
    }

    println!(
        "fuzzing: {} runs, seed {}, threads {:?}, baselines {}",
        config.runs,
        config.seed,
        config.thread_counts,
        if config.check_baselines { "on" } else { "off" }
    );
    let outcome = run_fuzz(&config, engine, &mut |line| eprintln!("[fuzz] {line}"));
    println!(
        "{} cases, {} engine probes, {} baseline probes ({} timed out)",
        outcome.cases_run,
        outcome.stats.engine_runs,
        outcome.stats.baseline_runs,
        outcome.stats.baseline_timeouts
    );
    match outcome.failure {
        None => {
            println!("no divergences");
            Ok(())
        }
        Some(failure) => {
            let r = &failure.repro;
            let path = format!("{}/fuzz-seed{}-case{}.repro", out_dir, r.seed, r.case);
            r.save(&path)?;
            print!("{}", failure.validation.to_run_report().to_text());
            println!(
                "divergence: case {} [{}] variant {} referee {}",
                r.case,
                failure.descr,
                r.variant,
                r.referee.label()
            );
            println!("oracle {} vs {}", r.expected, r.observed);
            println!(
                "shrunk to data n={} m={} / pattern n={} m={}; wrote {path}",
                r.data.n(),
                r.data.m(),
                r.pattern.n(),
                r.pattern.m()
            );
            if !diverges(r.expected, &r.observed) {
                println!("note: shrunk probe no longer diverges (flaky or timing-dependent)");
            }
            Err(format!("1 divergence found; repro written to {path}"))
        }
    }
}

/// `csce dot <graph.csce | --query "...">`: render to Graphviz DOT.
fn cmd_dot(args: &[String]) -> Result<(), String> {
    let g = match args {
        [flag, q] if flag == "--query" => {
            csce::graph::query::parse_pattern(q).map_err(|e| e.to_string())?
        }
        [path] => load_graph(path)?,
        _ => return Err("usage: csce dot <graph.csce>  or  csce dot --query \"...\"".into()),
    };
    print!("{}", csce::graph::export::to_dot(&g, "g"));
    Ok(())
}

fn parse_variant(s: &str) -> Result<Variant, String> {
    match s {
        "e" | "E" | "edge" => Ok(Variant::EdgeInduced),
        "v" | "V" | "vertex" => Ok(Variant::VertexInduced),
        "h" | "H" | "hom" => Ok(Variant::Homomorphic),
        other => Err(format!("unknown variant {other:?} (expected e, v or h)")),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum StatsFormat {
    Text,
    Json,
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut variant = Variant::EdgeInduced;
    let mut enumerate: Option<u64> = None;
    let mut planner = PlannerConfig::csce();
    let mut planner_name = "csce";
    let mut time_limit = None;
    let mut explain = false;
    let mut query: Option<String> = None;
    let mut threads: usize = 1;
    let mut stats_format: Option<StatsFormat> = None;
    let mut progress_every: Option<Duration> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--query" => query = Some(it.next().ok_or("missing --query value")?.clone()),
            "--threads" => {
                threads = it
                    .next()
                    .ok_or("missing --threads value")?
                    .parse()
                    .map_err(|_| "bad --threads")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--variant" => variant = parse_variant(it.next().ok_or("missing --variant value")?)?,
            "--enumerate" => {
                enumerate = Some(match it.peek() {
                    Some(n) if !n.starts_with("--") => {
                        it.next().unwrap().parse().map_err(|_| "bad --enumerate count")?
                    }
                    _ => u64::MAX,
                });
            }
            "--plan" => {
                let name = it.next().ok_or("missing --plan value")?.as_str();
                planner = match name {
                    "ri" => PlannerConfig::ri_only(),
                    "ri+c" => PlannerConfig::ri_cluster(),
                    "csce" => PlannerConfig::csce(),
                    other => return Err(format!("unknown planner {other:?}")),
                };
                planner_name = match name {
                    "ri" => "ri",
                    "ri+c" => "ri+c",
                    _ => "csce",
                };
            }
            "--stats" => {
                stats_format = Some(match it.peek().map(|s| s.as_str()) {
                    Some("text") => {
                        it.next();
                        StatsFormat::Text
                    }
                    Some("json") => {
                        it.next();
                        StatsFormat::Json
                    }
                    _ => StatsFormat::Text,
                });
            }
            "--progress" => {
                let secs: f64 = it
                    .next()
                    .ok_or("missing --progress value")?
                    .parse()
                    .map_err(|_| "bad --progress")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--progress must be positive".into());
                }
                progress_every = Some(Duration::from_secs_f64(secs));
            }
            "--time-limit" => {
                let secs: f64 = it
                    .next()
                    .ok_or("missing --time-limit value")?
                    .parse()
                    .map_err(|_| "bad --time-limit")?;
                time_limit = Some(Duration::from_secs_f64(secs));
            }
            "--explain" => explain = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => positional.push(a),
        }
    }
    let (data, p) = match (positional.as_slice(), query) {
        ([data], Some(q)) => {
            let p = csce::graph::query::parse_pattern(&q).map_err(|e| e.to_string())?;
            (*data, p)
        }
        ([data, pattern], None) => (*data, load_graph(pattern)?),
        _ => {
            return Err("usage: csce match <data> <pattern>  or  csce match <data> --query \"...\""
                .to_string())
        }
    };
    let recorder = if stats_format.is_some() { Recorder::new() } else { Recorder::disabled() };
    let engine = load_engine(data, &recorder)?;
    check_pattern(&p)?;

    if explain {
        let plan = engine.plan(&p, variant, planner);
        print!("{}", csce::engine::plan::explain::explain(&plan));
        return Ok(());
    }

    let run = RunConfig { time_limit, profile: stats_format.is_some(), ..Default::default() };
    let progress = Arc::new(AtomicU64::new(0));
    let heartbeat =
        progress_every.map(|every| spawn_heartbeat(every, Arc::clone(&progress), time_limit));
    let progress_sink = progress_every.map(|_| Arc::clone(&progress));
    let t0 = Instant::now();
    match enumerate {
        None => {
            let result =
                engine.run_observed(&p, variant, planner, run, &recorder, threads, progress_sink);
            let wall = t0.elapsed();
            if let Some((stop, handle)) = heartbeat {
                stop.store(true, Ordering::Relaxed);
                let _ = handle.join();
            }
            let out = result.map_err(|e| e.to_string())?;
            println!(
                "{} embeddings ({variant}){}",
                out.count,
                if out.stats.timed_out { " — TIME LIMIT, partial" } else { "" }
            );
            eprintln!(
                "[csce] read {:?}  plan {:?}  exec {:?}  |  {} nodes, SCE hit rate {:.1}%, {:.0} embeddings/s",
                out.read_time,
                out.plan_time,
                out.exec_time,
                out.stats.nodes,
                out.stats.sce_hit_rate() * 100.0,
                out.throughput(),
            );
            if let Some(format) = stats_format {
                let report =
                    match_report(data, variant, planner_name, threads, wall, &out, &recorder);
                match format {
                    StatsFormat::Text => print!("{}", report.to_text()),
                    StatsFormat::Json => println!("{}", report.to_json_string()),
                }
            }
        }
        Some(limit) => {
            // `--enumerate` without a count means "all embeddings".
            let limit = if limit == u64::MAX {
                None
            } else {
                Some(usize::try_from(limit).unwrap_or(usize::MAX))
            };
            let result = engine.enumerate_observed(
                &p,
                variant,
                planner,
                run,
                &recorder,
                threads,
                progress_sink,
                limit,
            );
            let wall = t0.elapsed();
            if let Some((stop, handle)) = heartbeat {
                stop.store(true, Ordering::Relaxed);
                let _ = handle.join();
            }
            let (out, embeddings) = result.map_err(|e| e.to_string())?;
            for f in &embeddings {
                println!("{f:?}");
            }
            println!(
                "-- {} embeddings printed{}",
                embeddings.len(),
                if out.stats.timed_out { " — TIME LIMIT, partial" } else { "" }
            );
            eprintln!(
                "[csce] {} nodes, SCE hit rate {:.1}%",
                out.stats.nodes,
                out.stats.sce_hit_rate() * 100.0
            );
            if let Some(format) = stats_format {
                let report =
                    match_report(data, variant, planner_name, threads, wall, &out, &recorder);
                match format {
                    StatsFormat::Text => print!("{}", report.to_text()),
                    StatsFormat::Json => println!("{}", report.to_json_string()),
                }
            }
        }
    }
    Ok(())
}

/// Start the `--progress` heartbeat: every `every`, print the live
/// recursion-node count (and, with a time limit, the remaining budget) to
/// stderr until the returned flag is set.
fn spawn_heartbeat(
    every: Duration,
    progress: Arc<AtomicU64>,
    time_limit: Option<Duration>,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let start = Instant::now();
        let mut next_tick = every;
        loop {
            std::thread::sleep(Duration::from_millis(50).min(every));
            if stop_flag.load(Ordering::Relaxed) {
                return;
            }
            if start.elapsed() < next_tick {
                continue;
            }
            next_tick += every;
            let elapsed = start.elapsed();
            let nodes = progress.load(Ordering::Relaxed);
            match time_limit {
                Some(limit) if limit > elapsed => eprintln!(
                    "[csce] {} nodes visited, {:.1}s elapsed, {:.1}s of budget left",
                    nodes,
                    elapsed.as_secs_f64(),
                    (limit - elapsed).as_secs_f64()
                ),
                Some(_) => eprintln!(
                    "[csce] {} nodes visited, {:.1}s elapsed, over budget — stopping soon",
                    nodes,
                    elapsed.as_secs_f64()
                ),
                None => eprintln!(
                    "[csce] {} nodes visited, {:.1}s elapsed",
                    nodes,
                    elapsed.as_secs_f64()
                ),
            }
        }
    });
    (stop, handle)
}

/// Assemble the `--stats` run report: identification, the recorder's
/// phase tree, and every counter the run produced.
fn match_report(
    data: &str,
    variant: Variant,
    planner_name: &str,
    threads: usize,
    wall: Duration,
    out: &csce::QueryOutput,
    recorder: &Recorder,
) -> RunReport {
    let mut report = RunReport::new();
    report
        .meta("algo", "CSCE")
        .meta("data", data)
        .meta("variant", variant)
        .meta("plan", planner_name)
        .meta("threads", threads)
        .meta("count", out.count)
        .meta("timed_out", out.stats.timed_out);
    report.phases = recorder.snapshot();
    out.stats.export(&mut report.metrics);
    // Per-worker load-balance view (one element per worker thread).
    report.metrics.set_series("exec.worker_nodes", out.workers.iter().map(|w| w.nodes).collect());
    report
        .metrics
        .set_series("exec.worker_chunks", out.workers.iter().map(|w| w.chunks_claimed).collect());
    report
        .metrics
        .set_series("exec.worker_embeddings", out.workers.iter().map(|w| w.embeddings).collect());
    report.metrics.set_counter("read.clusters_read", out.read_stats.clusters_read);
    report.metrics.set_counter("read.rows_decompressed", out.read_stats.rows_decompressed);
    report.metrics.set_counter("read.missing_clusters", out.read_stats.missing_clusters);
    report.metrics.set_counter("read.bytes", out.read_bytes as u64);
    report.metrics.set_gauge("time.read_seconds", out.read_time.as_secs_f64());
    report.metrics.set_gauge("time.plan_seconds", out.plan_time.as_secs_f64());
    report.metrics.set_gauge("time.exec_seconds", out.exec_time.as_secs_f64());
    report.metrics.set_gauge("time.wall_seconds", wall.as_secs_f64());
    report.metrics.set_gauge("exec.embeddings_per_second", out.throughput());
    report
}
