//! Mutual cross-validation on graphs too large for the brute-force
//! oracle: CSCE and every applicable baseline must report identical
//! counts. Five independently-written matchers agreeing is strong
//! evidence of correctness.

use csce::baselines::all_baselines;
use csce::engine::Engine;
use csce::graph::generate::{chung_lu, erdos_renyi, road_grid};
use csce::graph::sample::PatternSampler;
use csce::graph::{Density, Graph};
use csce::Variant;

fn cross_check(g: &Graph, p: &Graph, tag: &str) {
    let engine = Engine::build(g);
    for variant in Variant::ALL {
        let expected = engine.count(p, variant);
        for baseline in all_baselines() {
            if !baseline.supports(g, p, variant) {
                continue;
            }
            let r = baseline.count(g, p, variant, None);
            assert!(!r.timed_out, "{tag}: {} timed out", baseline.name());
            assert_eq!(
                r.count,
                expected,
                "{tag}: {} disagrees with CSCE under {variant}",
                baseline.name()
            );
        }
    }
}

#[test]
fn labeled_power_law() {
    let g = chung_lu(300, 1200, 2.4, 5, 0, false, 1);
    let mut sampler = PatternSampler::new(&g, 2);
    for (size, density) in [(5, Density::Sparse), (6, Density::Sparse), (5, Density::Dense)] {
        if let Some(sp) = sampler.sample(size, density) {
            cross_check(&g, &sp.pattern, &format!("power-law {}{}", density.letter(), size));
        }
    }
}

#[test]
fn road_lattice_patterns() {
    let g = road_grid(25, 25, 0.75, 3);
    let mut sampler = PatternSampler::new(&g, 5);
    for size in [6, 8] {
        if let Some(sp) = sampler.sample(size, Density::Sparse) {
            cross_check(&g, &sp.pattern, &format!("road S{size}"));
        }
    }
}

#[test]
fn directed_labeled_graphs() {
    let g = erdos_renyi(200, 900, 4, 2, true, 9);
    let mut sampler = PatternSampler::new(&g, 4);
    for size in [4, 5] {
        if let Some(sp) = sampler.sample(size, Density::Sparse) {
            cross_check(&g, &sp.pattern, &format!("directed S{size}"));
        }
    }
}

#[test]
fn unlabeled_dense_region() {
    let g = erdos_renyi(60, 500, 0, 0, false, 12);
    let mut sampler = PatternSampler::new(&g, 6);
    if let Some(sp) = sampler.sample(4, Density::Dense) {
        cross_check(&g, &sp.pattern, "dense D4");
    }
}

#[test]
fn eight_vertex_pattern_on_sparse_graph() {
    // A paper-scale pattern (size 8) on a graph where counts stay tame.
    let g = road_grid(20, 20, 0.7, 8);
    let mut sampler = PatternSampler::new(&g, 10);
    if let Some(sp) = sampler.sample(8, Density::Sparse) {
        cross_check(&g, &sp.pattern, "road S8");
    }
}
