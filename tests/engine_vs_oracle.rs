//! Randomized cross-validation of the CSCE engine against the
//! brute-force oracle: every variant, every graph flavor (labels, edge
//! labels, directions), exact embedding sets — not just counts.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::generate::erdos_renyi;
use csce::graph::oracle::oracle_embeddings;
use csce::graph::sample::PatternSampler;
use csce::graph::Density;
use csce::Variant;

/// Exhaustive agreement on a family of small random graphs.
fn check_family(vertex_labels: u32, edge_labels: u32, directed: bool, seed: u64) {
    let g = erdos_renyi(14, 28, vertex_labels, edge_labels, directed, seed);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, seed ^ 0xABCD);
    for density in [Density::Sparse, Density::Dense] {
        let Some(sp) = sampler.sample(4, density) else { continue };
        let p = sp.pattern;
        for variant in Variant::ALL {
            let expected = oracle_embeddings(&g, &p, variant);
            let got = engine.embeddings(&p, variant);
            assert_eq!(
                got, expected,
                "family(vl={vertex_labels}, el={edge_labels}, dir={directed}, seed={seed}) {variant}"
            );
        }
    }
}

#[test]
fn unlabeled_undirected() {
    for seed in 0..8 {
        check_family(0, 0, false, seed);
    }
}

#[test]
fn vertex_labeled_undirected() {
    for seed in 0..8 {
        check_family(3, 0, false, 100 + seed);
    }
}

#[test]
fn vertex_and_edge_labeled_undirected() {
    for seed in 0..8 {
        check_family(3, 2, false, 200 + seed);
    }
}

#[test]
fn unlabeled_directed() {
    for seed in 0..8 {
        check_family(0, 0, true, 300 + seed);
    }
}

#[test]
fn fully_heterogeneous_directed() {
    for seed in 0..8 {
        check_family(4, 3, true, 400 + seed);
    }
}

#[test]
fn larger_patterns_counts_only() {
    // 6-vertex patterns on slightly bigger graphs: counts vs oracle.
    for seed in 0..4 {
        let g = erdos_renyi(18, 40, 2, 0, false, 500 + seed);
        let engine = Engine::build(&g);
        let mut sampler = PatternSampler::new(&g, seed);
        if let Some(sp) = sampler.sample(6, Density::Sparse) {
            for variant in Variant::ALL {
                let expected = csce::graph::oracle_count(&g, &sp.pattern, variant);
                assert_eq!(engine.count(&sp.pattern, variant), expected, "seed={seed} {variant}");
            }
        }
    }
}

#[test]
fn antiparallel_arcs_and_induced_semantics() {
    // Regression: a vertex-induced pattern with a single directed edge
    // must reject data pairs that also carry the antiparallel arc.
    use csce::graph::GraphBuilder;
    use csce::NO_LABEL;
    let mut gb = GraphBuilder::new();
    gb.add_unlabeled_vertices(4);
    gb.add_edge(0, 1, NO_LABEL).unwrap();
    gb.add_edge(1, 0, NO_LABEL).unwrap(); // antiparallel pair
    gb.add_edge(2, 3, NO_LABEL).unwrap(); // plain arc
    let g = gb.build();
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(2);
    pb.add_edge(0, 1, NO_LABEL).unwrap();
    let p = pb.build();
    let engine = Engine::build(&g);
    // Edge-induced: all three arcs match; vertex-induced: only 2->3.
    assert_eq!(engine.count(&p, Variant::EdgeInduced), 3);
    assert_eq!(engine.count(&p, Variant::VertexInduced), 1);
    assert_eq!(engine.embeddings(&p, Variant::VertexInduced), vec![vec![2, 3]]);
    // A pattern WITH the antiparallel pair only matches the 0<->1 pair.
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(2);
    pb.add_edge(0, 1, NO_LABEL).unwrap();
    pb.add_edge(1, 0, NO_LABEL).unwrap();
    let p2 = pb.build();
    assert_eq!(engine.count(&p2, Variant::VertexInduced), 2, "both orientations");
    assert_eq!(engine.count(&p2, Variant::EdgeInduced), 2);
    // Cross-check everything against the oracle.
    for p in [&p, &p2] {
        for variant in Variant::ALL {
            assert_eq!(
                engine.count(p, variant),
                csce::graph::oracle_count(&g, p, variant),
                "{variant}"
            );
        }
    }
}

#[test]
fn every_planner_preset_is_exact() {
    let g = erdos_renyi(14, 30, 3, 0, false, 42);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 17);
    let sp = sampler.sample(5, Density::Sparse).expect("sample");
    for variant in Variant::ALL {
        let expected = csce::graph::oracle_count(&g, &sp.pattern, variant);
        for (name, config) in [
            ("csce", PlannerConfig::csce()),
            ("ri_only", PlannerConfig::ri_only()),
            ("ri_cluster", PlannerConfig::ri_cluster()),
        ] {
            let out = engine.run(&sp.pattern, variant, config, RunConfig::default());
            assert_eq!(out.count, expected, "{name} {variant}");
        }
    }
}

#[test]
fn every_runtime_toggle_is_exact() {
    let g = erdos_renyi(14, 30, 2, 0, false, 77);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 3);
    let sp = sampler.sample(5, Density::Sparse).expect("sample");
    for variant in Variant::ALL {
        let expected = csce::graph::oracle_count(&g, &sp.pattern, variant);
        for (cache, factorize) in [(true, true), (true, false), (false, true), (false, false)] {
            let run = RunConfig { use_sce_cache: cache, factorize, ..RunConfig::default() };
            let out = engine.run(&sp.pattern, variant, PlannerConfig::csce(), run);
            assert_eq!(out.count, expected, "cache={cache} factorize={factorize} {variant}");
        }
    }
}
