//! Randomized cross-validation of the CSCE engine against the
//! brute-force oracle: every variant, every graph flavor (labels, edge
//! labels, directions), exact embedding sets — not just counts.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::generate::erdos_renyi;
use csce::graph::oracle::oracle_embeddings;
use csce::graph::sample::PatternSampler;
use csce::graph::Density;
use csce::Variant;

/// Sample a pattern or die trying: a refused draw retries with fresh
/// derived sampler seeds instead of silently skipping the family (the old
/// `else {{ continue }}` shrank coverage without failing anything).
fn must_sample(g: &csce::Graph, base_seed: u64, size: usize, density: Density) -> csce::Graph {
    for attempt in 0..16u64 {
        let mut sampler = PatternSampler::new(g, base_seed ^ (attempt.wrapping_mul(0x9E37)));
        if let Some(sp) = sampler.sample(size, density) {
            return sp.pattern;
        }
    }
    panic!("no {size}-vertex {density:?} pattern after 16 sampler seeds (base {base_seed})");
}

/// Exhaustive agreement on a family of small random graphs.
fn check_family(vertex_labels: u32, edge_labels: u32, directed: bool, seed: u64) {
    let g = erdos_renyi(14, 28, vertex_labels, edge_labels, directed, seed);
    let engine = Engine::build(&g);
    for size in [4usize, 5] {
        for density in [Density::Sparse, Density::Dense] {
            let p = must_sample(&g, seed ^ 0xABCD, size, density);
            for variant in Variant::ALL {
                let expected = oracle_embeddings(&g, &p, variant);
                let got = engine.embeddings(&p, variant);
                assert_eq!(
                    got, expected,
                    "family(vl={vertex_labels}, el={edge_labels}, dir={directed}, seed={seed}, \
                     size={size}) {variant}"
                );
            }
        }
    }
}

#[test]
fn unlabeled_undirected() {
    for seed in 0..8 {
        check_family(0, 0, false, seed);
    }
}

#[test]
fn vertex_labeled_undirected() {
    for seed in 0..8 {
        check_family(3, 0, false, 100 + seed);
    }
}

#[test]
fn vertex_and_edge_labeled_undirected() {
    for seed in 0..8 {
        check_family(3, 2, false, 200 + seed);
    }
}

#[test]
fn unlabeled_directed() {
    for seed in 0..8 {
        check_family(0, 0, true, 300 + seed);
    }
}

#[test]
fn fully_heterogeneous_directed() {
    for seed in 0..8 {
        check_family(4, 3, true, 400 + seed);
    }
}

#[test]
fn larger_patterns_counts_only() {
    // 6-vertex patterns on slightly bigger graphs: counts vs oracle.
    for seed in 0..4 {
        let g = erdos_renyi(18, 40, 2, 0, false, 500 + seed);
        let engine = Engine::build(&g);
        let p = must_sample(&g, seed, 6, Density::Sparse);
        for variant in Variant::ALL {
            let expected = csce::graph::oracle_count(&g, &p, variant);
            assert_eq!(engine.count(&p, variant), expected, "seed={seed} {variant}");
        }
    }
}

#[test]
fn directed_edge_labeled_homomorphic() {
    // Directed + edge-labeled graphs with 5- and 6-vertex patterns,
    // checked homomorphically (exact embedding sets for size 5, counts
    // for size 6) — the variant/flavor corner the families above missed.
    for seed in 0..4 {
        let g = erdos_renyi(16, 36, 3, 2, true, 600 + seed);
        let engine = Engine::build(&g);
        let p = must_sample(&g, 600 + seed, 5, Density::Sparse);
        assert_eq!(
            engine.embeddings(&p, Variant::Homomorphic),
            oracle_embeddings(&g, &p, Variant::Homomorphic),
            "seed={seed} hom embeddings"
        );
        let p6 = must_sample(&g, 700 + seed, 6, Density::Sparse);
        for variant in Variant::ALL {
            assert_eq!(
                engine.count(&p6, variant),
                csce::graph::oracle_count(&g, &p6, variant),
                "seed={seed} {variant}"
            );
        }
    }
}

#[test]
fn labeled_cycle_factorization_parity() {
    // Regression for the NEC cycle misgrouping: on a labeled 4-cycle
    // pattern, opposite corners share their label and full neighborhood,
    // and grouping them as equivalent leaves is exactly the case the
    // cycle guard in `plan/nec.rs` now rejects. Factorized and plain
    // counts must agree with the oracle for every variant and preset.
    use csce::graph::GraphBuilder;
    use csce::NO_LABEL;
    let mut pb = GraphBuilder::new();
    for label in [0u32, 1, 0, 1] {
        pb.add_vertex(label);
    }
    for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
        pb.add_undirected_edge(x, y, NO_LABEL).unwrap();
    }
    let p = pb.build();
    for seed in 0..6 {
        // Data graphs rich in 4-cycles over the two labels.
        let g = erdos_renyi(12, 30, 2, 0, false, 800 + seed);
        let engine = Engine::build(&g);
        for variant in Variant::ALL {
            let expected = csce::graph::oracle_count(&g, &p, variant);
            for config in [PlannerConfig::csce(), PlannerConfig::ri_only()] {
                for factorize in [true, false] {
                    let run = RunConfig { factorize, ..RunConfig::default() };
                    let out = engine.run(&p, variant, config, run);
                    assert_eq!(
                        out.count, expected,
                        "seed={seed} {variant} nec={} factorize={factorize}",
                        config.nec
                    );
                }
            }
        }
    }
}

#[test]
fn antiparallel_arcs_and_induced_semantics() {
    // Regression: a vertex-induced pattern with a single directed edge
    // must reject data pairs that also carry the antiparallel arc.
    use csce::graph::GraphBuilder;
    use csce::NO_LABEL;
    let mut gb = GraphBuilder::new();
    gb.add_unlabeled_vertices(4);
    gb.add_edge(0, 1, NO_LABEL).unwrap();
    gb.add_edge(1, 0, NO_LABEL).unwrap(); // antiparallel pair
    gb.add_edge(2, 3, NO_LABEL).unwrap(); // plain arc
    let g = gb.build();
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(2);
    pb.add_edge(0, 1, NO_LABEL).unwrap();
    let p = pb.build();
    let engine = Engine::build(&g);
    // Edge-induced: all three arcs match; vertex-induced: only 2->3.
    assert_eq!(engine.count(&p, Variant::EdgeInduced), 3);
    assert_eq!(engine.count(&p, Variant::VertexInduced), 1);
    assert_eq!(engine.embeddings(&p, Variant::VertexInduced), vec![vec![2, 3]]);
    // A pattern WITH the antiparallel pair only matches the 0<->1 pair.
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(2);
    pb.add_edge(0, 1, NO_LABEL).unwrap();
    pb.add_edge(1, 0, NO_LABEL).unwrap();
    let p2 = pb.build();
    assert_eq!(engine.count(&p2, Variant::VertexInduced), 2, "both orientations");
    assert_eq!(engine.count(&p2, Variant::EdgeInduced), 2);
    // Cross-check everything against the oracle.
    for p in [&p, &p2] {
        for variant in Variant::ALL {
            assert_eq!(
                engine.count(p, variant),
                csce::graph::oracle_count(&g, p, variant),
                "{variant}"
            );
        }
    }
}

#[test]
fn every_planner_preset_is_exact() {
    let g = erdos_renyi(14, 30, 3, 0, false, 42);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 17);
    let sp = sampler.sample(5, Density::Sparse).expect("sample");
    for variant in Variant::ALL {
        let expected = csce::graph::oracle_count(&g, &sp.pattern, variant);
        for (name, config) in [
            ("csce", PlannerConfig::csce()),
            ("ri_only", PlannerConfig::ri_only()),
            ("ri_cluster", PlannerConfig::ri_cluster()),
        ] {
            let out = engine.run(&sp.pattern, variant, config, RunConfig::default());
            assert_eq!(out.count, expected, "{name} {variant}");
        }
    }
}

#[test]
fn every_runtime_toggle_is_exact() {
    let g = erdos_renyi(14, 30, 2, 0, false, 77);
    let engine = Engine::build(&g);
    let mut sampler = PatternSampler::new(&g, 3);
    let sp = sampler.sample(5, Density::Sparse).expect("sample");
    for variant in Variant::ALL {
        let expected = csce::graph::oracle_count(&g, &sp.pattern, variant);
        for (cache, factorize) in [(true, true), (true, false), (false, true), (false, false)] {
            let run = RunConfig { use_sce_cache: cache, factorize, ..RunConfig::default() };
            let out = engine.run(&sp.pattern, variant, PlannerConfig::csce(), run);
            assert_eq!(out.count, expected, "cache={cache} factorize={factorize} {variant}");
        }
    }
}
