//! Property-based invariants over the execution counters: the metrics the
//! observability layer reports must stay internally consistent on random
//! workloads, serially and in parallel.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::{Graph, GraphBuilder, Variant, NO_LABEL};
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_m: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n, proptest::collection::vec((0u32..100, 0u32..100), 0..max_m)).prop_map(
        move |(n, raw_edges)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex((i as u32) % labels.max(1));
            }
            for (x, y) in raw_edges {
                let (a, c) = ((x as usize % n) as u32, (y as usize % n) as u32);
                if a != c {
                    let _ = b.add_undirected_edge(a, c, NO_LABEL);
                }
            }
            b.build()
        },
    )
}

fn arb_pattern() -> impl Strategy<Value = Graph> {
    (2usize..=4, proptest::collection::vec((0u32..100, 0u32..100), 0..3)).prop_map(|(n, extras)| {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_vertex((i as u32) % 2);
        }
        for i in 1..n {
            let _ = b.add_undirected_edge(i as u32 - 1, i as u32, NO_LABEL);
        }
        for (x, y) in extras {
            let (a, c) = ((x as usize % n) as u32, (y as usize % n) as u32);
            if a != c {
                let _ = b.add_undirected_edge(a, c, NO_LABEL);
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every embedding extends a scanned candidate, and the SCE hit rate
    /// is a proper fraction.
    #[test]
    fn counters_are_internally_consistent(
        g in arb_graph(14, 35, 2),
        p in arb_pattern(),
        variant_idx in 0usize..3,
    ) {
        let variant = Variant::ALL[variant_idx];
        let engine = Engine::build(&g);
        let run = RunConfig { profile: true, ..RunConfig::default() };
        let out = engine.run(&p, variant, PlannerConfig::csce(), run);
        let s = &out.stats;
        prop_assert!(s.embeddings <= s.candidates_scanned,
            "embeddings {} > candidates scanned {}", s.embeddings, s.candidates_scanned);
        let rate = s.sce_hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate), "hit rate {rate}");
        prop_assert!(s.sce_cache_hits <= s.sce_cache_hits + s.candidate_computations);
        // The per-depth profile decomposes the scan totals.
        let deep = s.deep.as_ref().expect("profile run records deep stats");
        prop_assert_eq!(deep.depth_candidates.iter().sum::<u64>(), s.candidates_scanned);
        prop_assert_eq!(deep.depth_sce_hits.iter().sum::<u64>(), s.sce_cache_hits);
    }

    /// Parallel runs return the sequential count with merged counters that
    /// cover the same work.
    #[test]
    fn parallel_merge_is_consistent(
        g in arb_graph(14, 35, 2),
        p in arb_pattern(),
        threads in 1usize..=4,
    ) {
        let engine = Engine::build(&g);
        let serial = engine.count(&p, Variant::EdgeInduced);
        let run = RunConfig { profile: true, ..RunConfig::default() };
        let par = engine
            .count_parallel(&p, Variant::EdgeInduced, threads, run)
            .expect("no worker panicked");
        prop_assert_eq!(par.count, serial);
        prop_assert_eq!(par.stats.embeddings, par.count);
        prop_assert!(!par.stats.timed_out);
        prop_assert!(par.stats.embeddings <= par.stats.candidates_scanned);
        // Worker partitioning must not lose scans: per-partition pruning
        // can overshoot a single-threaded run but never undershoot it.
        let single = engine.count_parallel(&p, Variant::EdgeInduced, 1, RunConfig {
            profile: true,
            ..RunConfig::default()
        }).expect("no worker panicked");
        prop_assert!(par.stats.candidates_scanned >= single.stats.candidates_scanned);
        if threads == 1 {
            prop_assert_eq!(par.stats.nodes, single.stats.nodes);
        }
    }
}

#[test]
fn export_registers_every_scalar() {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(4);
    for (x, y) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
        b.add_undirected_edge(x, y, NO_LABEL).unwrap();
    }
    let g = b.build();
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(2);
    pb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
    let p = pb.build();

    let engine = Engine::build(&g);
    let run = RunConfig { profile: true, ..RunConfig::default() };
    let out = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), run);
    let mut m = csce::obs::MetricsRegistry::new();
    out.stats.export(&mut m);
    for key in [
        "exec.embeddings",
        "exec.sce_cache_hits",
        "exec.candidate_computations",
        "exec.candidates_scanned",
        "exec.nodes",
        "exec.splits_taken",
        "exec.negation_clusters",
        "exec.timed_out",
    ] {
        assert!(m.counters().any(|(k, _)| k == key), "missing counter {key}");
    }
    assert!(m.gauge("exec.sce_hit_rate").is_some());
    assert_eq!(m.counter("exec.embeddings"), out.count);
}
