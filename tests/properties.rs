//! Property-based tests (proptest) over the core data structures and
//! engine invariants.

use csce::ccsr::{build_ccsr, persist, read_csr, CompressedCsr, Csr};
use csce::engine::{Catalog, Engine, Planner, PlannerConfig, RunConfig};
use csce::graph::oracle::oracle_count;
use csce::graph::{Graph, GraphBuilder, Variant, NO_LABEL};
use proptest::prelude::*;

/// Strategy: a random small heterogeneous graph.
fn arb_graph(
    max_n: usize,
    max_m: usize,
    labels: u32,
    directed: bool,
) -> impl Strategy<Value = Graph> {
    (2..=max_n, proptest::collection::vec((0u32..100, 0u32..100, 0u32..labels.max(1)), 0..max_m))
        .prop_map(move |(n, raw_edges)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex(if labels == 0 { NO_LABEL } else { (i as u32) % labels });
            }
            for (x, y, _l) in raw_edges {
                let (a, c) = ((x as usize % n) as u32, (y as usize % n) as u32);
                if a == c {
                    continue;
                }
                if directed {
                    let _ = b.add_edge(a, c, NO_LABEL);
                } else {
                    let _ = b.add_undirected_edge(a, c, NO_LABEL);
                }
            }
            b.build()
        })
}

/// Strategy: a random connected pattern (path/tree-like with extras).
fn arb_pattern(labels: u32) -> impl Strategy<Value = Graph> {
    (2usize..=5, proptest::collection::vec((0u32..100, 0u32..100), 0..4)).prop_map(
        move |(n, extras)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex(if labels == 0 { NO_LABEL } else { (i as u32) % labels });
            }
            for i in 1..n {
                let _ = b.add_undirected_edge(i as u32 - 1, i as u32, NO_LABEL);
            }
            for (x, y) in extras {
                let (a, c) = ((x as usize % n) as u32, (y as usize % n) as u32);
                if a != c {
                    let _ = b.add_undirected_edge(a, c, NO_LABEL);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR run-length compression round-trips exactly.
    #[test]
    fn csr_compression_roundtrip(
        n in 1usize..200,
        pairs in proptest::collection::vec((0u32..200, 0u32..200), 0..300),
    ) {
        let pairs: Vec<(u32, u32)> =
            pairs.into_iter().map(|(r, c)| (r % n as u32, c)).collect();
        let csr = Csr::from_pairs(n, pairs).unwrap();
        let compressed = CompressedCsr::compress(&csr);
        prop_assert_eq!(compressed.decompress(), csr);
        // Paper bound: compressed I_R uses at most 2 integers per run and
        // 4 per arc overall (plus the constant empty-csr run).
        prop_assert!(compressed.compressed_ir_len() <= 4 * compressed.arc_count().max(1) + 2);
    }

    /// Clustering partitions the edge multiset: every edge in exactly one
    /// cluster, arc totals 2|E|.
    #[test]
    fn ccsr_is_an_edge_partition(g in arb_graph(20, 60, 3, false)) {
        let gc = build_ccsr(&g).unwrap();
        let total_edges: usize = gc.clusters().map(|c| c.edge_count()).sum();
        prop_assert_eq!(total_edges, g.m());
        prop_assert_eq!(gc.total_ic_len(), 2 * g.m());
        prop_assert!(gc.total_ir_len() <= 4 * 2 * g.m() + 2 * gc.cluster_count());
    }

    /// Persistence round-trips the clustered graph.
    #[test]
    fn ccsr_persist_roundtrip(g in arb_graph(15, 40, 4, true)) {
        let gc = build_ccsr(&g).unwrap();
        let back = persist::from_bytes(&persist::to_bytes(&gc).unwrap()).unwrap();
        prop_assert_eq!(back.n(), gc.n());
        prop_assert_eq!(back.cluster_count(), gc.cluster_count());
        prop_assert_eq!(back.vertex_labels(), gc.vertex_labels());
        for c in gc.clusters() {
            let other = back.cluster(&c.key).expect("cluster survives");
            prop_assert_eq!(&other.out, &c.out);
            prop_assert_eq!(&other.inc, &c.inc);
        }
    }

    /// Plans are topological permutations of the dependency DAG.
    #[test]
    fn plan_is_topological_permutation(
        g in arb_graph(15, 40, 3, false),
        p in arb_pattern(3),
        variant_idx in 0usize..3,
    ) {
        let variant = Variant::ALL[variant_idx];
        let gc = build_ccsr(&g).unwrap();
        let star = read_csr(&gc, &p, variant);
        let catalog = Catalog::new(&p, &star);
        let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, variant);
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..p.n() as u32).collect::<Vec<_>>());
        for u in 0..p.n() as u32 {
            for &child in plan.dag.children(u) {
                prop_assert!(plan.pos_of[u as usize] < plan.pos_of[child as usize]);
            }
        }
    }

    /// The engine count equals the brute-force oracle for every variant.
    #[test]
    fn engine_matches_oracle(
        g in arb_graph(12, 30, 2, false),
        p in arb_pattern(2),
        variant_idx in 0usize..3,
    ) {
        let variant = Variant::ALL[variant_idx];
        let engine = Engine::build(&g);
        prop_assert_eq!(engine.count(&p, variant), oracle_count(&g, &p, variant));
    }

    /// Factorized counting and the SCE cache never change results.
    #[test]
    fn runtime_toggles_preserve_counts(
        g in arb_graph(14, 35, 2, true),
        p in arb_pattern(2),
        variant_idx in 0usize..3,
    ) {
        let variant = Variant::ALL[variant_idx];
        let engine = Engine::build(&g);
        let reference = engine.count(&p, variant);
        for (cache, factorize) in [(false, false), (false, true), (true, false)] {
            let run = RunConfig { use_sce_cache: cache, factorize, ..RunConfig::default() };
            let out = engine.run(&p, variant, PlannerConfig::csce(), run);
            prop_assert_eq!(out.count, reference);
        }
    }

    /// Variant inclusion: vertex-induced embeddings are a subset of
    /// edge-induced, which are a subset of homomorphic.
    #[test]
    fn variant_count_ordering(
        g in arb_graph(12, 30, 2, false),
        p in arb_pattern(2),
    ) {
        let engine = Engine::build(&g);
        let v = engine.count(&p, Variant::VertexInduced);
        let e = engine.count(&p, Variant::EdgeInduced);
        let h = engine.count(&p, Variant::Homomorphic);
        prop_assert!(v <= e, "vertex-induced {} <= edge-induced {}", v, e);
        prop_assert!(e <= h, "edge-induced {} <= homomorphic {}", e, h);
    }

    /// The pattern DSL writer round-trips arbitrary graphs exactly.
    #[test]
    fn query_dsl_roundtrip(g in arb_graph(10, 25, 4, true)) {
        let rendered = csce::graph::query::to_query_string(&g);
        let back = csce::graph::query::parse_pattern(&rendered).unwrap();
        prop_assert_eq!(back.labels(), g.labels());
        prop_assert_eq!(back.edges(), g.edges());
    }

    /// WL codes are invariant under vertex relabeling (isomorphism by
    /// permutation).
    #[test]
    fn wl_code_permutation_invariant(
        g in arb_graph(10, 25, 3, false),
        seed in 0u64..1000,
    ) {
        use csce::graph::pattern::wl_code;
        // Build an isomorphic copy under a pseudo-random permutation.
        let n = g.n();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::new();
        let mut labels = vec![0u32; n];
        for v in 0..n {
            labels[perm[v] as usize] = g.label(v as u32);
        }
        for &l in &labels {
            b.add_vertex(l);
        }
        for e in g.edges() {
            if e.directed {
                b.add_edge(perm[e.src as usize], perm[e.dst as usize], e.label).unwrap();
            } else {
                b.add_undirected_edge(perm[e.src as usize], perm[e.dst as usize], e.label).unwrap();
            }
        }
        let h = b.build();
        prop_assert_eq!(wl_code(&g, 3), wl_code(&h, 3));
    }
}
