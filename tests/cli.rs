//! End-to-end tests of the `csce` command-line binary: cluster → persist
//! → stats → match → enumerate → explain, plus error handling.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_csce"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csce_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &std::path::Path, name: &str, contents: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const DATA: &str = "t 5 6\nv 0 0\nv 1 1\nv 2 0\nv 3 1\nv 4 0\n\
e 0 1 - d\ne 2 1 - d\ne 2 3 - d\ne 4 3 - d\ne 0 3 - d\ne 4 1 - d\n";
const PATTERN: &str = "t 2 1\nv 0 0\nv 1 1\ne 0 1 - d\n";

#[test]
fn cluster_stats_match_pipeline() {
    let dir = workdir();
    let data = write(&dir, "data.csce", DATA);
    let pattern = write(&dir, "pattern.csce", PATTERN);
    let ccsr = dir.join("data.ccsr");

    let out = bin()
        .args(["cluster", data.to_str().unwrap(), "-o", ccsr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "cluster failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(ccsr.exists());

    let out = bin().args(["stats", ccsr.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("over 5 vertices"), "stats output: {text}");
    assert!(text.contains("clusters over"), "stats output: {text}");

    // Matching against the persisted file and the raw text must agree.
    for source in [&ccsr, &data] {
        let out = bin()
            .args(["match", source.to_str().unwrap(), pattern.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("6 embeddings"), "match output: {text}");
    }
}

#[test]
fn enumerate_and_explain() {
    let dir = workdir();
    let data = write(&dir, "data2.csce", DATA);
    let pattern = write(&dir, "pattern2.csce", PATTERN);

    let out = bin()
        .args(["match", data.to_str().unwrap(), pattern.to_str().unwrap(), "--enumerate", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 embeddings printed"), "{text}");

    let out = bin()
        .args([
            "match",
            data.to_str().unwrap(),
            pattern.to_str().unwrap(),
            "--explain",
            "--variant",
            "h",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("matching order"), "{text}");
    assert!(text.contains("homomorphic"), "{text}");
}

#[test]
fn variant_flag_changes_results() {
    let dir = workdir();
    let data = write(&dir, "data3.csce", DATA);
    // A 2-path pattern whose homomorphic count exceeds edge-induced.
    let pattern = write(&dir, "wedge.csce", "t 3 2\nv 0 0\nv 1 1\nv 2 0\ne 0 1 - d\ne 2 1 - d\n");
    let count_for = |variant: &str| -> u64 {
        let out = bin()
            .args([
                "match",
                data.to_str().unwrap(),
                pattern.to_str().unwrap(),
                "--variant",
                variant,
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        text.split_whitespace().next().unwrap().parse().unwrap()
    };
    let e = count_for("e");
    let h = count_for("h");
    let v = count_for("v");
    assert!(v <= e && e <= h, "v={v} e={e} h={h}");
    assert!(h > e, "homomorphism folds the two sources onto one vertex");
}

#[test]
fn errors_are_reported() {
    let dir = workdir();
    let out = bin().args(["match", "/nonexistent", "/nonexistent"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    let data = write(&dir, "data4.csce", DATA);
    let bad_pattern = write(&dir, "disconnected.csce", "t 2 0\nv 0 0\nv 1 1\n");
    let out = bin()
        .args(["match", data.to_str().unwrap(), bad_pattern.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("connected"));
}

#[test]
fn dot_rendering() {
    let out = bin().args(["dot", "--query", "(a:1)-[5]->(b:2)"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("digraph"));
    assert!(text.contains("v0 -> v1 [label=\"5\"]"));
}

#[test]
fn query_flag_matches_inline_patterns() {
    let dir = workdir();
    let data = write(&dir, "data5.csce", DATA);
    let out =
        bin().args(["match", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 embeddings"));
    // Parallel counting path.
    let out = bin()
        .args(["match", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 embeddings"));
}

#[test]
fn stats_json_is_valid_and_complete() {
    use csce::obs::JsonValue;
    let dir = workdir();
    let data = write(&dir, "data6.csce", DATA);
    let out = bin()
        .args(["match", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)", "--stats", "json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The count line comes first; everything from the first '{' is the report.
    let json_start = stdout.find('{').expect("report follows the count line");
    let report = csce::obs::parse_json(&stdout[json_start..]).expect("valid JSON report");

    let meta = report.get("meta").expect("meta object");
    assert_eq!(meta.get("algo").and_then(JsonValue::as_str), Some("CSCE"));
    assert_eq!(meta.get("count").and_then(JsonValue::as_str), Some("6"));
    assert_eq!(meta.get("timed_out").and_then(JsonValue::as_str), Some("false"));

    // The phase tree covers the full pipeline: load → plan → execute,
    // with clustering under load and the planner stages under plan.
    let phases = report.get("phases").and_then(JsonValue::as_array).expect("phases");
    let phase = |name: &str| {
        phases
            .iter()
            .find(|p| p.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("missing phase {name}"))
    };
    let load = phase("load");
    let children = load.get("children").and_then(JsonValue::as_array).expect("load children");
    assert!(
        children.iter().any(|c| c.get("name").and_then(JsonValue::as_str) == Some("cluster")),
        "clustering recorded under load"
    );
    assert!(load.get("nanos").and_then(JsonValue::as_u64).is_some());
    let plan = phase("plan");
    let stages = plan.get("children").and_then(JsonValue::as_array).expect("plan children");
    for stage in ["gcf", "dag", "ldsf", "nec", "sce"] {
        assert!(
            stages.iter().any(|c| c.get("name").and_then(JsonValue::as_str) == Some(stage)),
            "missing plan stage {stage}"
        );
    }
    phase("execute");

    // The counter registry carries the executor and CCSR-side counters.
    let counters = report.get("counters").expect("counters object");
    assert_eq!(counters.get("exec.embeddings").and_then(JsonValue::as_u64), Some(6));
    for key in ["exec.nodes", "exec.candidates_scanned", "read.clusters_read"] {
        assert!(counters.get(key).and_then(JsonValue::as_u64).is_some(), "missing counter {key}");
    }
    let gauges = report.get("gauges").expect("gauges object");
    assert!(gauges.get("exec.sce_hit_rate").and_then(JsonValue::as_f64).is_some());

    // Text mode renders the same report human-readably.
    let out = bin()
        .args(["match", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)", "--stats", "text"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exec.embeddings"), "{text}");

    // Unknown flags are rejected instead of silently ignored.
    let out = bin()
        .args(["match", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)", "--bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn validate_passes_good_inputs_and_plans() {
    let dir = workdir();
    let data = write(&dir, "data7.csce", DATA);
    let ccsr = dir.join("data7.ccsr");
    let out = bin()
        .args(["cluster", data.to_str().unwrap(), "-o", ccsr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Text graph: graph + G_C + plan checkers all pass.
    let out = bin()
        .args(["validate", data.to_str().unwrap(), "--query", "(a:0)-->(b:1)", "--variant", "v"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.starts_with("verdict") && l.ends_with("PASS")), "{text}");
    for family in ["graph.adjacency-symmetry", "ccsr.rle-coverage", "plan.topological"] {
        assert!(text.contains(family), "missing checker family {family}: {text}");
    }

    // Persisted G_C: decode + deep checks pass.
    let out = bin().args(["validate", ccsr.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().any(|l| l.starts_with("verdict") && l.ends_with("PASS")), "{text}");
    assert!(text.contains("ccsr.persist-fixpoint"), "{text}");
}

#[test]
fn validate_detects_corrupted_ccsr() {
    let dir = workdir();
    let data = write(&dir, "data8.csce", DATA);
    let ccsr = dir.join("data8.ccsr");
    let out = bin()
        .args(["cluster", data.to_str().unwrap(), "-o", ccsr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Corrupt the body (past the 8-byte magic) and expect a FAIL verdict
    // with a non-zero exit for at least one flipped word.
    let good = std::fs::read(&ccsr).unwrap();
    let mut caught = 0;
    for i in (8..good.len().saturating_sub(4)).step_by(4) {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        if bad == good {
            continue;
        }
        let path = dir.join("corrupt.ccsr");
        std::fs::write(&path, &bad).unwrap();
        let out = bin().args(["validate", path.to_str().unwrap()]).output().unwrap();
        if !out.status.success() {
            let text = String::from_utf8_lossy(&out.stdout);
            assert!(
                text.lines().any(|l| l.starts_with("verdict") && l.ends_with("FAIL")),
                "exit 1 must pair with FAIL: {text}"
            );
            assert!(
                String::from_utf8_lossy(&out.stderr).contains("validation failed"),
                "stderr explains the failure"
            );
            caught += 1;
        }
    }
    assert!(caught > 0, "no corruption detected across {} flips", good.len() / 4);
}

#[test]
fn malformed_inputs_error_without_panicking() {
    let dir = workdir();
    let data = write(&dir, "data9.csce", DATA);
    // Corrupt pattern/graph files: a parse diagnostic and a nonzero exit,
    // never a panic (a panic would print "panicked at" on stderr and exit
    // with 101 instead of 1).
    let cases = [
        ("garbage.csce", "not a graph at all\n"),
        ("badcount.csce", "t 3 1\nv 0 0\nv 1 0\ne 0 1 - u\n"),
        ("badid.csce", "t 2 1\nv 0 0\nv 7 0\ne 0 1 - u\n"),
        ("badedge.csce", "t 2 1\nv 0 0\nv 1 0\ne 0 9 - u\n"),
        ("baddir.csce", "t 2 1\nv 0 0\nv 1 0\ne 0 1 - x\n"),
        ("selfloop.csce", "t 1 1\nv 0 0\ne 0 0 - u\n"),
    ];
    for (name, contents) in cases {
        let bad = write(&dir, name, contents);
        for order in [[&bad, &data], [&data, &bad]] {
            let out = bin()
                .args(["match", order[0].to_str().unwrap(), order[1].to_str().unwrap()])
                .output()
                .unwrap();
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(!out.status.success(), "{name} must be rejected");
            assert_eq!(out.status.code(), Some(1), "{name}: diagnostic exit, not a crash");
            assert!(!stderr.contains("panicked"), "{name}: {stderr}");
            assert!(stderr.contains("error:"), "{name}: {stderr}");
        }
    }
    // An empty pattern parses fine but the planner cannot take it.
    let empty = write(&dir, "empty.csce", "t 0 0\n");
    for cmd in ["match", "validate"] {
        let out =
            bin().args([cmd, data.to_str().unwrap(), empty.to_str().unwrap()]).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "{cmd} with empty pattern: {stderr}");
        assert!(!stderr.contains("panicked"), "{cmd}: {stderr}");
        assert!(stderr.contains("empty"), "{cmd} names the problem: {stderr}");
    }
}

#[test]
fn fuzz_smoke_and_replay_roundtrip() {
    let dir = workdir();
    // A clean bounded run: zero divergences, exit 0.
    let out =
        bin().args(["fuzz", "--runs", "5", "--seed", "1", "--no-baselines"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no divergences"), "{text}");

    // The injected bug: caught, shrunk, written as a .repro, exit 1.
    let out = bin()
        .args([
            "fuzz",
            "--runs",
            "64",
            "--seed",
            "42",
            "--no-baselines",
            "--inject-bug",
            "--out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "injected bug must fail the run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("divergence"), "{stdout}");
    let repro = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "repro"))
        .expect("a .repro file was written")
        .path();

    // Replay against the buggy engine: still reproduces, exit 1.
    let out =
        bin().args(["fuzz", "--replay", repro.to_str().unwrap(), "--inject-bug"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("still reproduces"));

    // Replay against the real engine: fixed, exit 0.
    let out = bin().args(["fuzz", "--replay", repro.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no longer reproduces"));

    // A corrupt .repro is a diagnostic, not a panic.
    let bad = write(&dir, "bad.repro", "csce-fuzz repro v1\nseed oops\n");
    let out = bin().args(["fuzz", "--replay", bad.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("seed"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
