//! The parallel match engine's contract: dynamic chunked scheduling is
//! exact (counts and embedding *sets* identical to the sequential
//! executor), early stop and timeouts propagate cooperatively across
//! workers, and a worker panic degrades to a clean error instead of
//! poisoning the run.

use csce::engine::exec::{sink_parallel, MatchSink};
use csce::engine::{Catalog, Engine, ExecError, Planner, PlannerConfig, RunConfig};
use csce::graph::generate;
use csce::{Graph, GraphBuilder, Variant, VertexId, NO_LABEL};
use std::ops::ControlFlow;
use std::time::Duration;

/// A skewed (preferential-attachment) data graph: a few hub vertices
/// carry most of the edges, the workload static partitioning balances
/// worst.
fn skewed_graph() -> Graph {
    generate::barabasi_albert(300, 3, 0, 42)
}

fn path_pattern(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 - 1 {
        b.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    b.build()
}

#[test]
fn chunked_scheduler_is_exact_on_skewed_graph() {
    let g = skewed_graph();
    let p = path_pattern(4);
    let engine = Engine::build(&g);
    for variant in Variant::ALL {
        let sequential = engine.count(&p, variant);
        assert!(sequential > 0, "{variant}: workload must be nontrivial");
        for threads in [2usize, 4, 7] {
            let parallel = engine
                .count_parallel(&p, variant, threads, RunConfig::default())
                .expect("no worker panicked");
            assert_eq!(parallel.count, sequential, "{variant} with {threads} threads");
            assert_eq!(parallel.workers.len(), threads);
            assert!(
                parallel.stats.chunks_claimed > 1,
                "{variant} with {threads} threads: root work was actually chunked"
            );
        }
    }
}

#[test]
fn parallel_enumerate_matches_sequential_set_for_all_variants() {
    let g = skewed_graph();
    let p = path_pattern(3);
    let engine = Engine::build(&g);
    for variant in Variant::ALL {
        // `Engine::embeddings` is the sequential enumeration, sorted.
        let expected = engine.embeddings(&p, variant);
        assert!(!expected.is_empty(), "{variant}");
        for threads in [1usize, 2, 4] {
            let run = engine
                .collect_parallel(&p, variant, threads, RunConfig::default())
                .expect("no worker panicked");
            assert_eq!(run.embeddings, expected, "{variant} with {threads} threads");
            assert_eq!(run.stats.embeddings, expected.len() as u64, "{variant}");
        }
    }
}

#[test]
fn first_k_under_many_threads_returns_exactly_k() {
    let g = skewed_graph();
    let p = path_pattern(3);
    let engine = Engine::build(&g);
    let total = engine.count(&p, Variant::EdgeInduced);
    assert!(total > 100);
    let all = engine.embeddings(&p, Variant::EdgeInduced);
    for threads in [4usize, 7] {
        for k in [1usize, 7, 64] {
            let run = engine
                .enumerate_parallel(&p, Variant::EdgeInduced, threads, RunConfig::default(), k)
                .expect("no worker panicked");
            assert_eq!(run.embeddings.len(), k, "k={k} with {threads} threads");
            // Whichever embeddings won the quota, each is a real one.
            for f in &run.embeddings {
                assert!(all.binary_search(f).is_ok(), "spurious embedding {f:?}");
            }
        }
        // Asking for more than exist returns all of them, exactly once.
        let run = engine
            .enumerate_parallel(&p, Variant::EdgeInduced, threads, RunConfig::default(), usize::MAX)
            .expect("no worker panicked");
        assert_eq!(run.embeddings, all, "limit beyond total with {threads} threads");
    }
}

#[test]
fn shared_timeout_is_attributed_exactly_once() {
    // An explosive homomorphic workload with a zero budget: every worker
    // observes the stop, but only one flags `timed_out`.
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(13);
    for i in 0..13u32 {
        for j in i + 1..13 {
            b.add_undirected_edge(i, j, NO_LABEL).unwrap();
        }
    }
    let g = b.build();
    let p = path_pattern(9);
    let engine = Engine::build(&g);
    let run = RunConfig { time_limit: Some(Duration::ZERO), ..Default::default() };
    for threads in [2usize, 4, 6] {
        let out = engine
            .count_parallel(&p, Variant::Homomorphic, threads, run)
            .expect("no worker panicked");
        assert!(out.stats.timed_out, "{threads} threads");
        let flagged = out.workers.iter().filter(|w| w.timed_out).count();
        assert_eq!(flagged, 1, "{threads} threads: {flagged} workers flagged the one deadline");
    }
}

/// A sink that panics on the first embedding — the fault-injection probe
/// for the scheduler's panic containment.
struct ExplodingSink;

impl MatchSink for ExplodingSink {
    fn on_embedding(&mut self, _f: &[VertexId]) -> ControlFlow<()> {
        panic!("exploding sink: injected fault");
    }

    fn merge(&mut self, _other: Self) {}
}

#[test]
fn worker_panic_degrades_to_a_clean_error() {
    let g = skewed_graph();
    let p = path_pattern(3);
    let engine = Engine::build(&g);
    let star = csce::ccsr::read_csr(engine.ccsr(), &p, Variant::EdgeInduced);
    let catalog = Catalog::new(&p, &star);
    let plan = Planner::new(PlannerConfig::csce()).plan(&catalog, Variant::EdgeInduced);
    drop(catalog);
    let result = sink_parallel(
        &star,
        &p,
        &plan,
        RunConfig::default(),
        4,
        None,
        &csce::obs::Recorder::disabled(),
        |_| ExplodingSink,
    );
    match result {
        Err(ExecError::WorkerPanicked { message, .. }) => {
            assert!(message.contains("injected fault"), "panic payload preserved: {message}");
        }
        Ok(_) => panic!("a panicking worker must fail the run"),
    }
}
