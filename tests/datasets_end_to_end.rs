//! End-to-end runs over the dataset presets: the full paper pipeline
//! (cluster → persist → reload → plan → execute, all variants) on each
//! synthetic data graph, plus the parallel counting extension.

use csce::datasets::{presets, sample_suite};
use csce::engine::{Engine, RunConfig};
use csce::graph::Density;
use csce::Variant;

#[test]
fn yeast_pipeline_all_variants() {
    let ds = presets::yeast();
    let engine = Engine::build(&ds.graph);
    // Round-trip the clustered form through persistence.
    let bytes = csce::ccsr::persist::to_bytes(engine.ccsr()).unwrap();
    let engine2 = Engine::from_ccsr(csce::ccsr::persist::from_bytes(&bytes).unwrap());
    let suites = sample_suite(&ds.graph, &[8], &[Density::Sparse, Density::Dense], 2, 1);
    for suite in &suites {
        for p in &suite.patterns {
            for variant in Variant::ALL {
                let a = engine.count(p, variant);
                let b = engine2.count(p, variant);
                assert_eq!(a, b, "{}: persisted engine disagrees under {variant}", suite.name);
                if variant == Variant::EdgeInduced {
                    assert!(a >= 1, "sampled patterns have at least one embedding");
                }
            }
        }
    }
}

#[test]
fn roadca_counts_are_variant_ordered() {
    let ds = presets::roadca();
    let engine = Engine::build(&ds.graph);
    let suites = sample_suite(&ds.graph, &[6, 8], &[Density::Sparse], 2, 2);
    for suite in &suites {
        for p in &suite.patterns {
            let v = engine.count(p, Variant::VertexInduced);
            let e = engine.count(p, Variant::EdgeInduced);
            let h = engine.count(p, Variant::Homomorphic);
            assert!(v <= e && e <= h, "{}: v={v} e={e} h={h}", suite.name);
        }
    }
}

#[test]
fn parallel_count_on_dataset() {
    let ds = presets::hprd();
    let engine = Engine::build(&ds.graph);
    let suites = sample_suite(&ds.graph, &[8], &[Density::Sparse], 2, 3);
    for suite in &suites {
        for p in &suite.patterns {
            let sequential = engine.count(p, Variant::EdgeInduced);
            let parallel = engine
                .count_parallel(p, Variant::EdgeInduced, 4, RunConfig::default())
                .expect("no worker panicked");
            assert_eq!(sequential, parallel.count);
            assert_eq!(parallel.stats.embeddings, parallel.count);
            assert!(!parallel.stats.timed_out);
        }
    }
}

#[test]
fn directed_dataset_matching() {
    let ds = presets::subcategory();
    let engine = Engine::build(&ds.graph);
    let suites = sample_suite(&ds.graph, &[5], &[Density::Sparse], 2, 4);
    for suite in &suites {
        for p in &suite.patterns {
            assert!(p.has_directed_edges(), "patterns inherit direction");
            let h = engine.count(p, Variant::Homomorphic);
            assert!(h >= 1, "sampled pattern embeds at least once");
        }
    }
}

#[test]
fn every_preset_clusters_cleanly() {
    for ds in presets::all_presets() {
        let engine = Engine::build(&ds.graph);
        let gc = engine.ccsr();
        assert_eq!(gc.n(), ds.graph.n(), "{}", ds.name);
        assert_eq!(gc.total_ic_len(), 2 * ds.graph.m(), "{}", ds.name);
        let total_edges: usize = gc.clusters().map(|c| c.edge_count()).sum();
        assert_eq!(total_edges, ds.graph.m(), "{}", ds.name);
    }
}
