//! Evidence that the optimization machinery actually fires: NEC slot
//! sharing reduces candidate computations, SCE caching converts
//! recomputations into hits, and factorized counting collapses
//! enumeration work — all without changing results.

use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::{Graph, GraphBuilder};
use csce::{Variant, NO_LABEL};

/// A bipartite-ish data graph with two centers and many shared leaves.
fn data() -> Graph {
    let mut b = GraphBuilder::new();
    let c0 = b.add_vertex(0);
    let c1 = b.add_vertex(0);
    for _ in 0..12 {
        let leaf = b.add_vertex(1);
        b.add_undirected_edge(c0, leaf, NO_LABEL).unwrap();
        b.add_undirected_edge(c1, leaf, NO_LABEL).unwrap();
    }
    b.build()
}

/// Star pattern: center label 0, `k` leaves of label 1.
fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_vertex(0);
    for _ in 0..k {
        let leaf = b.add_vertex(1);
        b.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
    }
    b.build()
}

fn run(
    engine: &Engine,
    p: &Graph,
    planner: PlannerConfig,
    run: RunConfig,
) -> (u64, csce::engine::ExecStats) {
    let out = engine.run(p, Variant::Homomorphic, planner, run);
    (out.count, out.stats)
}

#[test]
fn nec_sharing_reduces_candidate_computations() {
    let g = data();
    let engine = Engine::build(&g);
    let p = star(4);
    // Sequential mode so the leaf-by-leaf structure is visible.
    let seq = RunConfig { factorize: false, ..Default::default() };
    let (count_nec, stats_nec) = run(&engine, &p, PlannerConfig::csce(), seq);
    let (count_plain, stats_plain) =
        run(&engine, &p, PlannerConfig { nec: false, ..PlannerConfig::csce() }, seq);
    assert_eq!(count_nec, count_plain);
    assert!(
        stats_nec.candidate_computations < stats_plain.candidate_computations,
        "NEC sharing should compute fewer candidate sets: {} vs {}",
        stats_nec.candidate_computations,
        stats_plain.candidate_computations
    );
    assert!(stats_nec.sce_cache_hits > 0);
}

#[test]
fn factorization_collapses_star_counting_work() {
    let g = data();
    let engine = Engine::build(&g);
    let p = star(5);
    let (with, stats_with) = run(&engine, &p, PlannerConfig::csce(), RunConfig::default());
    let (without, stats_without) = run(
        &engine,
        &p,
        PlannerConfig::csce(),
        RunConfig { factorize: false, ..Default::default() },
    );
    assert_eq!(with, without);
    // 2 centers * 12^5 leaf walks.
    assert_eq!(with, 2 * 12u64.pow(5));
    assert!(
        stats_with.nodes < stats_without.nodes / 10,
        "factorized counting visits far fewer nodes: {} vs {}",
        stats_with.nodes,
        stats_without.nodes
    );
    assert!(stats_with.splits_taken > 0);
}

#[test]
fn sce_cache_converts_recomputation_into_hits() {
    // A path pattern on a grid-ish graph: moving the tail vertex reuses
    // the head candidates.
    let mut gb = GraphBuilder::new();
    gb.add_unlabeled_vertices(30);
    for i in 0..29u32 {
        gb.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    for i in 0..28u32 {
        gb.add_undirected_edge(i, i + 2, NO_LABEL).unwrap();
    }
    let g = gb.build();
    let engine = Engine::build(&g);
    let mut pb = GraphBuilder::new();
    pb.add_unlabeled_vertices(6);
    for i in 0..5u32 {
        pb.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    let p = pb.build();
    let seq = RunConfig { factorize: false, ..Default::default() };
    let out_cached = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), seq);
    let out_plain = engine.run(
        &p,
        Variant::EdgeInduced,
        PlannerConfig::csce(),
        RunConfig { factorize: false, use_sce_cache: false, ..Default::default() },
    );
    assert_eq!(out_cached.count, out_plain.count);
    assert_eq!(out_plain.stats.sce_cache_hits, 0);
    assert!(out_cached.stats.sce_cache_hits > 0, "cache fires on this workload");
    assert!(out_cached.stats.candidate_computations < out_plain.stats.candidate_computations);
}
