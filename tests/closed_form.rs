//! Validation against closed-form combinatorics: on complete graphs,
//! complete bipartite graphs and cycles, subgraph-matching counts have
//! textbook formulas. These are independent of every matcher
//! implementation in the workspace, so they catch correlated bugs the
//! cross-engine tests cannot.

use csce::engine::Engine;
use csce::graph::{Graph, GraphBuilder};
use csce::{Variant, NO_LABEL};

fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            b.add_undirected_edge(i, j, NO_LABEL).unwrap();
        }
    }
    b.build()
}

fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 - 1 {
        b.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    b.build()
}

fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 {
        b.add_undirected_edge(i, (i + 1) % n as u32, NO_LABEL).unwrap();
    }
    b.build()
}

fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(leaves + 1);
    for leaf in 1..=leaves as u32 {
        b.add_undirected_edge(0, leaf, NO_LABEL).unwrap();
    }
    b.build()
}

fn complete_bipartite(a: usize, b_: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(a + b_);
    for i in 0..a as u32 {
        for j in 0..b_ as u32 {
            b.add_undirected_edge(i, a as u32 + j, NO_LABEL).unwrap();
        }
    }
    b.build()
}

fn falling(n: u64, k: u64) -> u64 {
    (0..k).map(|i| n - i).product()
}

#[test]
fn cliques_in_complete_graphs() {
    // Injective mappings of K_k into K_n: n falling-factorial k.
    for n in [5usize, 6, 7] {
        let engine = Engine::build(&clique(n));
        for k in 2..=4usize {
            let expected = falling(n as u64, k as u64);
            assert_eq!(engine.count(&clique(k), Variant::EdgeInduced), expected, "K{k} in K{n}");
            // In a complete graph every injective mapping is induced too.
            assert_eq!(engine.count(&clique(k), Variant::VertexInduced), expected);
        }
    }
}

#[test]
fn paths_in_complete_graphs() {
    // Edge-induced path mappings of P_k into K_n: any injective mapping
    // works -> n falling k. Homomorphic: walks of length k-1 on K_n:
    // n * (n-1)^(k-1).
    let n = 6usize;
    let engine = Engine::build(&clique(n));
    for k in 2..=4usize {
        assert_eq!(
            engine.count(&path(k), Variant::EdgeInduced),
            falling(n as u64, k as u64),
            "P{k} in K{n}"
        );
        let walks = (n as u64) * (n as u64 - 1).pow(k as u32 - 1);
        assert_eq!(engine.count(&path(k), Variant::Homomorphic), walks, "walks P{k} in K{n}");
    }
    // Induced paths (k >= 3) don't exist in a complete graph.
    assert_eq!(engine.count(&path(3), Variant::VertexInduced), 0);
}

#[test]
fn cycles_in_complete_graphs() {
    // C_k mappings into K_n: n falling k (every injective placement works).
    let n = 7usize;
    let engine = Engine::build(&clique(n));
    for k in [3usize, 4, 5] {
        assert_eq!(
            engine.count(&cycle(k), Variant::EdgeInduced),
            falling(n as u64, k as u64),
            "C{k} in K{n}"
        );
    }
    // Distinct subgraphs: C(n,k) * (k-1)!/2 ... via count_subgraphs:
    // mappings / |Aut(C_k)| = falling(n,k) / (2k).
    for k in [4usize, 5] {
        assert_eq!(
            engine.count_subgraphs(&cycle(k), Variant::EdgeInduced),
            falling(n as u64, k as u64) / (2 * k as u64),
            "distinct C{k} subgraphs in K{n}"
        );
    }
}

#[test]
fn stars_in_stars_and_bipartite_graphs() {
    // S_l (center + l leaves) into S_L: center must map to center:
    // L falling l leaf arrangements.
    let engine = Engine::build(&star(5));
    for l in 2..=4usize {
        assert_eq!(
            engine.count(&star(l), Variant::EdgeInduced),
            falling(5, l as u64),
            "S{l} in S5"
        );
    }
    // Edges in K_{a,b}: 2ab mappings (each endpoint order).
    let (a, b) = (3usize, 4usize);
    let engine = Engine::build(&complete_bipartite(a, b));
    assert_eq!(engine.count(&path(2), Variant::EdgeInduced), 2 * (a * b) as u64);
    // Wedges (P3) in K_{a,b}: centers on either side:
    // a * b*(b-1) + b * a*(a-1).
    let expected = (a * b * (b - 1) + b * a * (a - 1)) as u64;
    assert_eq!(engine.count(&path(3), Variant::EdgeInduced), expected);
    // Triangles: none in a bipartite graph.
    assert_eq!(engine.count(&clique(3), Variant::EdgeInduced), 0);
    // 4-cycles in K_{a,b}: mappings = C4 placements alternating sides:
    // 2 * a(a-1) * b(b-1) (start side choice folded into mapping count:
    // total injective hom of C4 = 2*a(a-1)*b(b-1)... verify against the
    // oracle instead of trusting the derivation.
    let oracle =
        csce::graph::oracle_count(&complete_bipartite(a, b), &cycle(4), Variant::EdgeInduced);
    assert_eq!(engine.count(&cycle(4), Variant::EdgeInduced), oracle);
    assert_eq!(oracle, 2 * (a * (a - 1) * b * (b - 1)) as u64);
}

#[test]
fn homomorphisms_onto_a_single_edge() {
    // Hom count of any bipartite connected pattern into a single
    // undirected edge = 2 (the two 2-colorings).
    let mut gb = GraphBuilder::new();
    gb.add_unlabeled_vertices(2);
    gb.add_undirected_edge(0, 1, NO_LABEL).unwrap();
    let engine = Engine::build(&gb.build());
    for p in [path(3), path(5), star(4), cycle(4)] {
        assert_eq!(engine.count(&p, Variant::Homomorphic), 2);
    }
    // Odd cycles have no homomorphism into an edge (not 2-colorable).
    assert_eq!(engine.count(&cycle(5), Variant::Homomorphic), 0);
}

#[test]
fn deep_pattern_recursion_is_safe() {
    // A 600-vertex path pattern exercises recursion depth in planning and
    // execution; count paths inside a 700-cycle (exactly 2*700 = 1400
    // edge-induced mappings of P600 in C700... every mapping walks the
    // cycle one way or the other from any start: 700 starts * 2
    // directions).
    let engine = Engine::build(&cycle(700));
    let count = engine.count(&path(600), Variant::EdgeInduced);
    assert_eq!(count, 1400);
}
