//! Every matcher in the workspace must honor its time budget: a
//! zero-budget run on an explosive workload terminates promptly with the
//! timeout flag set, and a generous budget leaves results exact.

use csce::baselines::all_baselines;
use csce::engine::{Engine, PlannerConfig, RunConfig};
use csce::graph::{Graph, GraphBuilder};
use csce::{Variant, NO_LABEL};
use std::time::{Duration, Instant};

/// A clique big enough that unlabeled path counting explodes.
fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            b.add_undirected_edge(i, j, NO_LABEL).unwrap();
        }
    }
    b.build()
}

fn long_path(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.add_unlabeled_vertices(n);
    for i in 0..n as u32 - 1 {
        b.add_undirected_edge(i, i + 1, NO_LABEL).unwrap();
    }
    b.build()
}

#[test]
fn every_baseline_stops_on_zero_budget() {
    let g = clique(13);
    let p = long_path(9);
    for baseline in all_baselines() {
        for variant in Variant::ALL {
            if !baseline.supports(&g, &p, variant) {
                continue;
            }
            let start = Instant::now();
            let r = baseline.count(&g, &p, variant, Some(Duration::ZERO));
            // Vertex-induced paths inside a clique do not exist, so that
            // search legitimately finishes before the deadline check; the
            // explosive variants must report the timeout.
            if variant != Variant::VertexInduced {
                assert!(r.timed_out, "{} under {variant} must time out", baseline.name());
            }
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{} took {:?} to honor a zero budget",
                baseline.name(),
                start.elapsed()
            );
        }
    }
}

#[test]
fn engine_stops_on_zero_budget_in_both_modes() {
    let g = clique(13);
    let p = long_path(9);
    let engine = Engine::build(&g);
    for factorize in [true, false] {
        let run = RunConfig { time_limit: Some(Duration::ZERO), factorize, ..Default::default() };
        let start = Instant::now();
        let out = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), run);
        assert!(out.stats.timed_out, "factorize={factorize}");
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}

#[test]
fn parallel_counting_propagates_timeouts() {
    let g = clique(13);
    let p = long_path(9);
    let engine = Engine::build(&g);
    for threads in [1usize, 4] {
        let run = RunConfig { time_limit: Some(Duration::ZERO), ..Default::default() };
        let start = Instant::now();
        let out = engine
            .count_parallel(&p, Variant::EdgeInduced, threads, run)
            .expect("no worker panicked");
        assert!(out.stats.timed_out, "{threads} threads: merged stats must flag the timeout");
        assert!(start.elapsed() < Duration::from_secs(5));
        // Exactly one worker attributes the shared-deadline stop.
        let flagged = out.workers.iter().filter(|w| w.timed_out).count();
        assert_eq!(flagged, 1, "{threads} threads: timeout flagged {flagged} times");
    }
    // A generous budget through the same path stays exact and un-flagged.
    let small = clique(6);
    let engine = Engine::build(&small);
    let p = long_path(4);
    let exact = engine.count(&p, Variant::EdgeInduced);
    let run = RunConfig { time_limit: Some(Duration::from_secs(60)), ..Default::default() };
    let out = engine.count_parallel(&p, Variant::EdgeInduced, 4, run).expect("no worker panicked");
    assert!(!out.stats.timed_out);
    assert_eq!(out.count, exact);
    assert_eq!(out.stats.embeddings, exact);
}

#[test]
fn generous_budget_keeps_results_exact() {
    let g = clique(6);
    let p = long_path(4);
    let engine = Engine::build(&g);
    let exact = engine.count(&p, Variant::EdgeInduced);
    let run = RunConfig { time_limit: Some(Duration::from_secs(60)), ..Default::default() };
    let out = engine.run(&p, Variant::EdgeInduced, PlannerConfig::csce(), run);
    assert!(!out.stats.timed_out);
    assert_eq!(out.count, exact);
    for baseline in all_baselines() {
        if baseline.supports(&g, &p, Variant::EdgeInduced) {
            let r = baseline.count(&g, &p, Variant::EdgeInduced, Some(Duration::from_secs(60)));
            assert!(!r.timed_out, "{}", baseline.name());
            assert_eq!(r.count, exact, "{}", baseline.name());
        }
    }
}
