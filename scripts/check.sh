#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints, source policy,
# release build, test suite. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings + pedantic subset)"
cargo clippy --workspace --all-targets -- -D warnings \
  -D clippy::dbg_macro -D clippy::todo -D clippy::unimplemented \
  -D clippy::mem_forget -D clippy::exit -D clippy::large_stack_arrays

echo "==> csce-lint (source policy ratchet)"
cargo run -q -p csce-analyze --bin csce-lint

echo "==> csce-lint --static (call-graph panic-freedom certification)"
cargo run -q -p csce-analyze --bin csce-lint -- --static

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "All checks passed."
