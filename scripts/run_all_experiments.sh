#!/bin/bash
# Regenerate every recorded exhibit in results/ (see EXPERIMENTS.md).
# Takes ~45-60 minutes on one core with the default limits.
set -e
cd "$(dirname "$0")/.."
cargo build --release --workspace
mkdir -p results
export CSCE_TIME_LIMIT=${CSCE_TIME_LIMIT:-10} CSCE_REPEATS=${CSCE_REPEATS:-3}
for b in table2 table3 table4 fig7 fig8 fig10 fig11 fig12 fig13 fig14 case_study; do
  echo "=== $b ==="
  ./target/release/$b > results/$b.txt 2>&1
done
CSCE_TIME_LIMIT=3 CSCE_REPEATS=4 ./target/release/fig9 > results/fig9.txt 2>&1
CSCE_TIME_LIMIT=5 ./target/release/fig6 > results/fig6.txt 2>&1
echo ALL_DONE
