/root/repo/target/release/deps/csce-ec14729de8ecc3a4.d: src/bin/csce.rs

/root/repo/target/release/deps/csce-ec14729de8ecc3a4: src/bin/csce.rs

src/bin/csce.rs:
