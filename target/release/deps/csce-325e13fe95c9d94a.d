/root/repo/target/release/deps/csce-325e13fe95c9d94a.d: src/bin/csce.rs

/root/repo/target/release/deps/csce-325e13fe95c9d94a: src/bin/csce.rs

src/bin/csce.rs:
