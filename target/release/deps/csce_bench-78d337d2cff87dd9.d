/root/repo/target/release/deps/csce_bench-78d337d2cff87dd9.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-78d337d2cff87dd9.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-78d337d2cff87dd9.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
