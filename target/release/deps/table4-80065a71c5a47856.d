/root/repo/target/release/deps/table4-80065a71c5a47856.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-80065a71c5a47856: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
