/root/repo/target/release/deps/proptest-590d8a01b1ff8c45.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-590d8a01b1ff8c45.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-590d8a01b1ff8c45.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
