/root/repo/target/release/deps/fig11-a6146fcef6311059.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-a6146fcef6311059: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
