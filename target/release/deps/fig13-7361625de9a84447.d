/root/repo/target/release/deps/fig13-7361625de9a84447.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-7361625de9a84447: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
