/root/repo/target/release/deps/table2-e32378b7746d3176.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e32378b7746d3176: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
