/root/repo/target/release/deps/fig6-709718cabcee80cb.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-709718cabcee80cb: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
