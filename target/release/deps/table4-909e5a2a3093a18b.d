/root/repo/target/release/deps/table4-909e5a2a3093a18b.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-909e5a2a3093a18b: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
