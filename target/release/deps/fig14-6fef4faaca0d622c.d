/root/repo/target/release/deps/fig14-6fef4faaca0d622c.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-6fef4faaca0d622c: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
