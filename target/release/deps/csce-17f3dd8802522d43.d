/root/repo/target/release/deps/csce-17f3dd8802522d43.d: src/bin/csce.rs

/root/repo/target/release/deps/csce-17f3dd8802522d43: src/bin/csce.rs

src/bin/csce.rs:
