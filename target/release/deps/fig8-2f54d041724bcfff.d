/root/repo/target/release/deps/fig8-2f54d041724bcfff.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-2f54d041724bcfff: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
