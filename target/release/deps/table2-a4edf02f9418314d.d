/root/repo/target/release/deps/table2-a4edf02f9418314d.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-a4edf02f9418314d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
