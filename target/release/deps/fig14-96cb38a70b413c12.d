/root/repo/target/release/deps/fig14-96cb38a70b413c12.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-96cb38a70b413c12: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
