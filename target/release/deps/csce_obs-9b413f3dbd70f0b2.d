/root/repo/target/release/deps/csce_obs-9b413f3dbd70f0b2.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcsce_obs-9b413f3dbd70f0b2.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libcsce_obs-9b413f3dbd70f0b2.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
