/root/repo/target/release/deps/csce-eec4eef6bc64aa16.d: src/lib.rs

/root/repo/target/release/deps/libcsce-eec4eef6bc64aa16.rlib: src/lib.rs

/root/repo/target/release/deps/libcsce-eec4eef6bc64aa16.rmeta: src/lib.rs

src/lib.rs:
