/root/repo/target/release/deps/case_study-42e33906b1b7e2e2.d: crates/bench/src/bin/case_study.rs

/root/repo/target/release/deps/case_study-42e33906b1b7e2e2: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
