/root/repo/target/release/deps/fig10-95f796af6fad2f1c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-95f796af6fad2f1c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
