/root/repo/target/release/deps/table4-b79320bb0f2e04a0.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-b79320bb0f2e04a0: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
