/root/repo/target/release/deps/fig12-c9405b5e60995d8b.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-c9405b5e60995d8b: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
