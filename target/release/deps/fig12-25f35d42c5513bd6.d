/root/repo/target/release/deps/fig12-25f35d42c5513bd6.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-25f35d42c5513bd6: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
