/root/repo/target/release/deps/fig10-87e5106760ea515a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-87e5106760ea515a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
