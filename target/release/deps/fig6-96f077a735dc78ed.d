/root/repo/target/release/deps/fig6-96f077a735dc78ed.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-96f077a735dc78ed: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
