/root/repo/target/release/deps/fig7-c1c567e333235ab7.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-c1c567e333235ab7: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
