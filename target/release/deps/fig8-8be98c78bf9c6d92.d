/root/repo/target/release/deps/fig8-8be98c78bf9c6d92.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-8be98c78bf9c6d92: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
