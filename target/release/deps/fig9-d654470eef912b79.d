/root/repo/target/release/deps/fig9-d654470eef912b79.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-d654470eef912b79: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
