/root/repo/target/release/deps/fig14-3790deb0826d6f84.d: crates/bench/src/bin/fig14.rs

/root/repo/target/release/deps/fig14-3790deb0826d6f84: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
