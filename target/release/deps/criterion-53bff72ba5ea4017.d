/root/repo/target/release/deps/criterion-53bff72ba5ea4017.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-53bff72ba5ea4017.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-53bff72ba5ea4017.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
