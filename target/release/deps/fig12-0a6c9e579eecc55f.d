/root/repo/target/release/deps/fig12-0a6c9e579eecc55f.d: crates/bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-0a6c9e579eecc55f: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
