/root/repo/target/release/deps/fig13-64bc0e716481e161.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-64bc0e716481e161: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
