/root/repo/target/release/deps/fig10-d6a68d70e3b14a6a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-d6a68d70e3b14a6a: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
