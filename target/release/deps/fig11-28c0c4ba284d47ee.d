/root/repo/target/release/deps/fig11-28c0c4ba284d47ee.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-28c0c4ba284d47ee: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
