/root/repo/target/release/deps/fig7-2cc31a8c8090e7ca.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-2cc31a8c8090e7ca: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
