/root/repo/target/release/deps/case_study-470faa5ad1261cc2.d: crates/bench/src/bin/case_study.rs

/root/repo/target/release/deps/case_study-470faa5ad1261cc2: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
