/root/repo/target/release/deps/csce_datasets-5cead533f90af9ee.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/release/deps/libcsce_datasets-5cead533f90af9ee.rlib: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/release/deps/libcsce_datasets-5cead533f90af9ee.rmeta: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
