/root/repo/target/release/deps/fig9-9f8d5a5af034b5a0.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-9f8d5a5af034b5a0: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
