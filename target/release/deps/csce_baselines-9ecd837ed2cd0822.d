/root/repo/target/release/deps/csce_baselines-9ecd837ed2cd0822.d: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

/root/repo/target/release/deps/libcsce_baselines-9ecd837ed2cd0822.rlib: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

/root/repo/target/release/deps/libcsce_baselines-9ecd837ed2cd0822.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cfl.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fsp.rs:
crates/baselines/src/ri.rs:
crates/baselines/src/symmetry.rs:
crates/baselines/src/vf.rs:
crates/baselines/src/wcoj.rs:
