/root/repo/target/release/deps/fig8-ae6d28d2d4a32ed9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-ae6d28d2d4a32ed9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
