/root/repo/target/release/deps/csce_bench-efbcb3cac3be9f04.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-efbcb3cac3be9f04.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-efbcb3cac3be9f04.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
