/root/repo/target/release/deps/csce-6f2fcf28cb27b81a.d: src/lib.rs

/root/repo/target/release/deps/libcsce-6f2fcf28cb27b81a.rlib: src/lib.rs

/root/repo/target/release/deps/libcsce-6f2fcf28cb27b81a.rmeta: src/lib.rs

src/lib.rs:
