/root/repo/target/release/deps/table3-cf50ebe6145b1402.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-cf50ebe6145b1402: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
