/root/repo/target/release/deps/table2-44878e828bc12a9c.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-44878e828bc12a9c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
