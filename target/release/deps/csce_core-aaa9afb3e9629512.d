/root/repo/target/release/deps/csce_core-aaa9afb3e9629512.d: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

/root/repo/target/release/deps/libcsce_core-aaa9afb3e9629512.rlib: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

/root/repo/target/release/deps/libcsce_core-aaa9afb3e9629512.rmeta: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

crates/core/src/lib.rs:
crates/core/src/bitset.rs:
crates/core/src/catalog.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/stats.rs:
crates/core/src/plan/mod.rs:
crates/core/src/plan/dag.rs:
crates/core/src/plan/descendant.rs:
crates/core/src/plan/explain.rs:
crates/core/src/plan/gcf.rs:
crates/core/src/plan/ldsf.rs:
crates/core/src/plan/nec.rs:
