/root/repo/target/release/deps/fig7-06e4395f650adb67.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-06e4395f650adb67: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
