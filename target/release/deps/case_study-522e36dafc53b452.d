/root/repo/target/release/deps/case_study-522e36dafc53b452.d: crates/bench/src/bin/case_study.rs

/root/repo/target/release/deps/case_study-522e36dafc53b452: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
