/root/repo/target/release/deps/csce_datasets-2f2c22039018ab3f.d: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/release/deps/libcsce_datasets-2f2c22039018ab3f.rlib: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

/root/repo/target/release/deps/libcsce_datasets-2f2c22039018ab3f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/clustering.rs crates/datasets/src/email.rs crates/datasets/src/motifs.rs crates/datasets/src/patterns.rs crates/datasets/src/presets.rs

crates/datasets/src/lib.rs:
crates/datasets/src/clustering.rs:
crates/datasets/src/email.rs:
crates/datasets/src/motifs.rs:
crates/datasets/src/patterns.rs:
crates/datasets/src/presets.rs:
