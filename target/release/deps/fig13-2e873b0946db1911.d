/root/repo/target/release/deps/fig13-2e873b0946db1911.d: crates/bench/src/bin/fig13.rs

/root/repo/target/release/deps/fig13-2e873b0946db1911: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
