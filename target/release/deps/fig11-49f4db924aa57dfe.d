/root/repo/target/release/deps/fig11-49f4db924aa57dfe.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-49f4db924aa57dfe: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
