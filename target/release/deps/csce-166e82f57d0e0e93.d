/root/repo/target/release/deps/csce-166e82f57d0e0e93.d: src/lib.rs

/root/repo/target/release/deps/libcsce-166e82f57d0e0e93.rlib: src/lib.rs

/root/repo/target/release/deps/libcsce-166e82f57d0e0e93.rmeta: src/lib.rs

src/lib.rs:
