/root/repo/target/release/deps/table3-4c19c53db65816a5.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-4c19c53db65816a5: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
