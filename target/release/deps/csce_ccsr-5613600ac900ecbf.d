/root/repo/target/release/deps/csce_ccsr-5613600ac900ecbf.d: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

/root/repo/target/release/deps/libcsce_ccsr-5613600ac900ecbf.rlib: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

/root/repo/target/release/deps/libcsce_ccsr-5613600ac900ecbf.rmeta: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

crates/ccsr/src/lib.rs:
crates/ccsr/src/build.rs:
crates/ccsr/src/cluster.rs:
crates/ccsr/src/compress.rs:
crates/ccsr/src/csr.rs:
crates/ccsr/src/key.rs:
crates/ccsr/src/persist.rs:
crates/ccsr/src/read.rs:
crates/ccsr/src/stats.rs:
