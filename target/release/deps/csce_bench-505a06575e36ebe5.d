/root/repo/target/release/deps/csce_bench-505a06575e36ebe5.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-505a06575e36ebe5.rlib: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcsce_bench-505a06575e36ebe5.rmeta: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
