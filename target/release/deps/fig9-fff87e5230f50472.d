/root/repo/target/release/deps/fig9-fff87e5230f50472.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-fff87e5230f50472: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
