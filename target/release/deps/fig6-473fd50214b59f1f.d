/root/repo/target/release/deps/fig6-473fd50214b59f1f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-473fd50214b59f1f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
