/root/repo/target/release/deps/table3-4a9bc747571f2769.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-4a9bc747571f2769: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
