/root/repo/target/release/deps/rand-a7c28be22a960098.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a7c28be22a960098.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a7c28be22a960098.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
