/root/repo/target/debug/examples/quickstart-86b3f832b0d571b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-86b3f832b0d571b7: examples/quickstart.rs

examples/quickstart.rs:
