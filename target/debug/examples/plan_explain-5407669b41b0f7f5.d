/root/repo/target/debug/examples/plan_explain-5407669b41b0f7f5.d: examples/plan_explain.rs

/root/repo/target/debug/examples/plan_explain-5407669b41b0f7f5: examples/plan_explain.rs

examples/plan_explain.rs:
