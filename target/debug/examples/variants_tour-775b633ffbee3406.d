/root/repo/target/debug/examples/variants_tour-775b633ffbee3406.d: examples/variants_tour.rs

/root/repo/target/debug/examples/variants_tour-775b633ffbee3406: examples/variants_tour.rs

examples/variants_tour.rs:
