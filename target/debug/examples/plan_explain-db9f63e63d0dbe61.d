/root/repo/target/debug/examples/plan_explain-db9f63e63d0dbe61.d: examples/plan_explain.rs Cargo.toml

/root/repo/target/debug/examples/libplan_explain-db9f63e63d0dbe61.rmeta: examples/plan_explain.rs Cargo.toml

examples/plan_explain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
