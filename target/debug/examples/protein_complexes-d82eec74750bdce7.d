/root/repo/target/debug/examples/protein_complexes-d82eec74750bdce7.d: examples/protein_complexes.rs

/root/repo/target/debug/examples/protein_complexes-d82eec74750bdce7: examples/protein_complexes.rs

examples/protein_complexes.rs:
