/root/repo/target/debug/examples/variants_tour-f2c9a7361866eb64.d: examples/variants_tour.rs Cargo.toml

/root/repo/target/debug/examples/libvariants_tour-f2c9a7361866eb64.rmeta: examples/variants_tour.rs Cargo.toml

examples/variants_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
