/root/repo/target/debug/examples/motif_census-4a9d14eaad2861bc.d: examples/motif_census.rs

/root/repo/target/debug/examples/motif_census-4a9d14eaad2861bc: examples/motif_census.rs

examples/motif_census.rs:
