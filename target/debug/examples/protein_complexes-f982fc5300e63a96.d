/root/repo/target/debug/examples/protein_complexes-f982fc5300e63a96.d: examples/protein_complexes.rs Cargo.toml

/root/repo/target/debug/examples/libprotein_complexes-f982fc5300e63a96.rmeta: examples/protein_complexes.rs Cargo.toml

examples/protein_complexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
