/root/repo/target/debug/examples/quickstart-daf03599f8f4552e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-daf03599f8f4552e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
