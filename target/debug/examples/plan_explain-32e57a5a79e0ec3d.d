/root/repo/target/debug/examples/plan_explain-32e57a5a79e0ec3d.d: examples/plan_explain.rs

/root/repo/target/debug/examples/plan_explain-32e57a5a79e0ec3d: examples/plan_explain.rs

examples/plan_explain.rs:
