/root/repo/target/debug/examples/higher_order_clustering-742eb154e3a8996a.d: examples/higher_order_clustering.rs Cargo.toml

/root/repo/target/debug/examples/libhigher_order_clustering-742eb154e3a8996a.rmeta: examples/higher_order_clustering.rs Cargo.toml

examples/higher_order_clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
