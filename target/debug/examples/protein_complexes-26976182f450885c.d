/root/repo/target/debug/examples/protein_complexes-26976182f450885c.d: examples/protein_complexes.rs

/root/repo/target/debug/examples/protein_complexes-26976182f450885c: examples/protein_complexes.rs

examples/protein_complexes.rs:
