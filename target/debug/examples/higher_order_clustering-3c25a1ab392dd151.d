/root/repo/target/debug/examples/higher_order_clustering-3c25a1ab392dd151.d: examples/higher_order_clustering.rs

/root/repo/target/debug/examples/higher_order_clustering-3c25a1ab392dd151: examples/higher_order_clustering.rs

examples/higher_order_clustering.rs:
