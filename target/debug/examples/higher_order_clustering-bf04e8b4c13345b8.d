/root/repo/target/debug/examples/higher_order_clustering-bf04e8b4c13345b8.d: examples/higher_order_clustering.rs

/root/repo/target/debug/examples/higher_order_clustering-bf04e8b4c13345b8: examples/higher_order_clustering.rs

examples/higher_order_clustering.rs:
