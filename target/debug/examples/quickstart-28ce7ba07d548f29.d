/root/repo/target/debug/examples/quickstart-28ce7ba07d548f29.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-28ce7ba07d548f29: examples/quickstart.rs

examples/quickstart.rs:
