/root/repo/target/debug/examples/motif_census-2f47ea4974d73a57.d: examples/motif_census.rs Cargo.toml

/root/repo/target/debug/examples/libmotif_census-2f47ea4974d73a57.rmeta: examples/motif_census.rs Cargo.toml

examples/motif_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
