/root/repo/target/debug/examples/motif_census-7e0565a3b3c7ec13.d: examples/motif_census.rs

/root/repo/target/debug/examples/motif_census-7e0565a3b3c7ec13: examples/motif_census.rs

examples/motif_census.rs:
