/root/repo/target/debug/examples/variants_tour-659b408389c3f349.d: examples/variants_tour.rs

/root/repo/target/debug/examples/variants_tour-659b408389c3f349: examples/variants_tour.rs

examples/variants_tour.rs:
