/root/repo/target/debug/deps/csce-bafb2fcaba003944.d: src/lib.rs

/root/repo/target/debug/deps/csce-bafb2fcaba003944: src/lib.rs

src/lib.rs:
