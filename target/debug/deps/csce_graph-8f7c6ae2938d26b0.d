/root/repo/target/debug/deps/csce_graph-8f7c6ae2938d26b0.d: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs

/root/repo/target/debug/deps/csce_graph-8f7c6ae2938d26b0: crates/graph/src/lib.rs crates/graph/src/automorphism.rs crates/graph/src/export.rs crates/graph/src/generate.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/oracle.rs crates/graph/src/pattern.rs crates/graph/src/query.rs crates/graph/src/sample.rs crates/graph/src/stats.rs crates/graph/src/util/mod.rs crates/graph/src/util/fxhash.rs

crates/graph/src/lib.rs:
crates/graph/src/automorphism.rs:
crates/graph/src/export.rs:
crates/graph/src/generate.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/oracle.rs:
crates/graph/src/pattern.rs:
crates/graph/src/query.rs:
crates/graph/src/sample.rs:
crates/graph/src/stats.rs:
crates/graph/src/util/mod.rs:
crates/graph/src/util/fxhash.rs:
