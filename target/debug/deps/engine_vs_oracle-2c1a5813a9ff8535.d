/root/repo/target/debug/deps/engine_vs_oracle-2c1a5813a9ff8535.d: tests/engine_vs_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libengine_vs_oracle-2c1a5813a9ff8535.rmeta: tests/engine_vs_oracle.rs Cargo.toml

tests/engine_vs_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
