/root/repo/target/debug/deps/fig12-fd30ec81858c8237.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-fd30ec81858c8237.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
