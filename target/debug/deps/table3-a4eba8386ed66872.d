/root/repo/target/debug/deps/table3-a4eba8386ed66872.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-a4eba8386ed66872: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
