/root/repo/target/debug/deps/criterion-da74ea1936908516.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-da74ea1936908516.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
