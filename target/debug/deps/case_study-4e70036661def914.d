/root/repo/target/debug/deps/case_study-4e70036661def914.d: crates/bench/src/bin/case_study.rs

/root/repo/target/debug/deps/case_study-4e70036661def914: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
