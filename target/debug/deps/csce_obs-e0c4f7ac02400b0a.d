/root/repo/target/debug/deps/csce_obs-e0c4f7ac02400b0a.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcsce_obs-e0c4f7ac02400b0a.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libcsce_obs-e0c4f7ac02400b0a.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
