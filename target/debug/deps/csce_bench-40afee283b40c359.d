/root/repo/target/debug/deps/csce_bench-40afee283b40c359.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/csce_bench-40afee283b40c359: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
