/root/repo/target/debug/deps/fig11-3669005605d8cdf5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-3669005605d8cdf5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
