/root/repo/target/debug/deps/csce_bench-9f8ce4716bf8c33b.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/csce_bench-9f8ce4716bf8c33b: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
