/root/repo/target/debug/deps/csce-e811c72c0bbe71ef.d: src/bin/csce.rs

/root/repo/target/debug/deps/csce-e811c72c0bbe71ef: src/bin/csce.rs

src/bin/csce.rs:
