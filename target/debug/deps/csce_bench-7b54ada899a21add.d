/root/repo/target/debug/deps/csce_bench-7b54ada899a21add.d: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/csce_bench-7b54ada899a21add: crates/bench/src/lib.rs crates/bench/src/alloc.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/alloc.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/table.rs:
