/root/repo/target/debug/deps/fig10-4f43ee33bd8e4af9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-4f43ee33bd8e4af9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
