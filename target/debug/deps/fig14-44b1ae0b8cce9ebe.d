/root/repo/target/debug/deps/fig14-44b1ae0b8cce9ebe.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-44b1ae0b8cce9ebe: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
