/root/repo/target/debug/deps/fig12-641c386a0f5edfa1.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-641c386a0f5edfa1: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
