/root/repo/target/debug/deps/csce_obs-7b45d33606ca26ea.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_obs-7b45d33606ca26ea.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
