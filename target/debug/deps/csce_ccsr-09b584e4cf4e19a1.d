/root/repo/target/debug/deps/csce_ccsr-09b584e4cf4e19a1.d: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

/root/repo/target/debug/deps/libcsce_ccsr-09b584e4cf4e19a1.rlib: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

/root/repo/target/debug/deps/libcsce_ccsr-09b584e4cf4e19a1.rmeta: crates/ccsr/src/lib.rs crates/ccsr/src/build.rs crates/ccsr/src/cluster.rs crates/ccsr/src/compress.rs crates/ccsr/src/csr.rs crates/ccsr/src/key.rs crates/ccsr/src/persist.rs crates/ccsr/src/read.rs crates/ccsr/src/stats.rs

crates/ccsr/src/lib.rs:
crates/ccsr/src/build.rs:
crates/ccsr/src/cluster.rs:
crates/ccsr/src/compress.rs:
crates/ccsr/src/csr.rs:
crates/ccsr/src/key.rs:
crates/ccsr/src/persist.rs:
crates/ccsr/src/read.rs:
crates/ccsr/src/stats.rs:
