/root/repo/target/debug/deps/engine_vs_baselines-4edd7590f8b392bd.d: tests/engine_vs_baselines.rs

/root/repo/target/debug/deps/engine_vs_baselines-4edd7590f8b392bd: tests/engine_vs_baselines.rs

tests/engine_vs_baselines.rs:
