/root/repo/target/debug/deps/fig9-98ba6a1de2fa07e4.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-98ba6a1de2fa07e4: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
