/root/repo/target/debug/deps/fig10-1b89d3181202d961.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-1b89d3181202d961: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
