/root/repo/target/debug/deps/case_study-8c81827429f9bb6f.d: crates/bench/src/bin/case_study.rs Cargo.toml

/root/repo/target/debug/deps/libcase_study-8c81827429f9bb6f.rmeta: crates/bench/src/bin/case_study.rs Cargo.toml

crates/bench/src/bin/case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
