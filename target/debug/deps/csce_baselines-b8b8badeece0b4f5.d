/root/repo/target/debug/deps/csce_baselines-b8b8badeece0b4f5.d: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_baselines-b8b8badeece0b4f5.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cfl.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fsp.rs:
crates/baselines/src/ri.rs:
crates/baselines/src/symmetry.rs:
crates/baselines/src/vf.rs:
crates/baselines/src/wcoj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
