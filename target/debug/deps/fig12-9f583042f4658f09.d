/root/repo/target/debug/deps/fig12-9f583042f4658f09.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-9f583042f4658f09: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
