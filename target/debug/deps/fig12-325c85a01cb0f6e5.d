/root/repo/target/debug/deps/fig12-325c85a01cb0f6e5.d: crates/bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-325c85a01cb0f6e5.rmeta: crates/bench/src/bin/fig12.rs Cargo.toml

crates/bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
