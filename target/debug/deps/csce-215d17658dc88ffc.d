/root/repo/target/debug/deps/csce-215d17658dc88ffc.d: src/lib.rs

/root/repo/target/debug/deps/libcsce-215d17658dc88ffc.rlib: src/lib.rs

/root/repo/target/debug/deps/libcsce-215d17658dc88ffc.rmeta: src/lib.rs

src/lib.rs:
