/root/repo/target/debug/deps/fig13-b6a6ecf6055e8b68.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-b6a6ecf6055e8b68: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
