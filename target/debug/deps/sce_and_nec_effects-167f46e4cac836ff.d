/root/repo/target/debug/deps/sce_and_nec_effects-167f46e4cac836ff.d: tests/sce_and_nec_effects.rs

/root/repo/target/debug/deps/sce_and_nec_effects-167f46e4cac836ff: tests/sce_and_nec_effects.rs

tests/sce_and_nec_effects.rs:
