/root/repo/target/debug/deps/fig7-266a055d6a39110b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-266a055d6a39110b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
