/root/repo/target/debug/deps/datasets_end_to_end-d514c70254beaf9a.d: tests/datasets_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets_end_to_end-d514c70254beaf9a.rmeta: tests/datasets_end_to_end.rs Cargo.toml

tests/datasets_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
