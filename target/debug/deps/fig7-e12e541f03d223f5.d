/root/repo/target/debug/deps/fig7-e12e541f03d223f5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e12e541f03d223f5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
