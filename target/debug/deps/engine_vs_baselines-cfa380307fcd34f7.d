/root/repo/target/debug/deps/engine_vs_baselines-cfa380307fcd34f7.d: tests/engine_vs_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libengine_vs_baselines-cfa380307fcd34f7.rmeta: tests/engine_vs_baselines.rs Cargo.toml

tests/engine_vs_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
