/root/repo/target/debug/deps/datasets_end_to_end-d20f64fce143213a.d: tests/datasets_end_to_end.rs

/root/repo/target/debug/deps/datasets_end_to_end-d20f64fce143213a: tests/datasets_end_to_end.rs

tests/datasets_end_to_end.rs:
