/root/repo/target/debug/deps/closed_form-2696bf6c4a5c3c18.d: tests/closed_form.rs

/root/repo/target/debug/deps/closed_form-2696bf6c4a5c3c18: tests/closed_form.rs

tests/closed_form.rs:
