/root/repo/target/debug/deps/engine_vs_baselines-1268139507450222.d: tests/engine_vs_baselines.rs

/root/repo/target/debug/deps/engine_vs_baselines-1268139507450222: tests/engine_vs_baselines.rs

tests/engine_vs_baselines.rs:
