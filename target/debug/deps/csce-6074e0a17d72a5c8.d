/root/repo/target/debug/deps/csce-6074e0a17d72a5c8.d: src/bin/csce.rs

/root/repo/target/debug/deps/csce-6074e0a17d72a5c8: src/bin/csce.rs

src/bin/csce.rs:
