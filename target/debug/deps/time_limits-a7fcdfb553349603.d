/root/repo/target/debug/deps/time_limits-a7fcdfb553349603.d: tests/time_limits.rs

/root/repo/target/debug/deps/time_limits-a7fcdfb553349603: tests/time_limits.rs

tests/time_limits.rs:
