/root/repo/target/debug/deps/csce_baselines-189fe6ee4184adb0.d: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_baselines-189fe6ee4184adb0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cfl.rs crates/baselines/src/common.rs crates/baselines/src/fsp.rs crates/baselines/src/ri.rs crates/baselines/src/symmetry.rs crates/baselines/src/vf.rs crates/baselines/src/wcoj.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cfl.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fsp.rs:
crates/baselines/src/ri.rs:
crates/baselines/src/symmetry.rs:
crates/baselines/src/vf.rs:
crates/baselines/src/wcoj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
