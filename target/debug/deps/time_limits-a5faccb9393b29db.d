/root/repo/target/debug/deps/time_limits-a5faccb9393b29db.d: tests/time_limits.rs

/root/repo/target/debug/deps/time_limits-a5faccb9393b29db: tests/time_limits.rs

tests/time_limits.rs:
