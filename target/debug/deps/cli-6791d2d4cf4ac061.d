/root/repo/target/debug/deps/cli-6791d2d4cf4ac061.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-6791d2d4cf4ac061.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_csce=placeholder:csce
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
