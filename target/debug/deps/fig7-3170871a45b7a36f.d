/root/repo/target/debug/deps/fig7-3170871a45b7a36f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3170871a45b7a36f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
