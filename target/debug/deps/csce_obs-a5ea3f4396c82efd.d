/root/repo/target/debug/deps/csce_obs-a5ea3f4396c82efd.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libcsce_obs-a5ea3f4396c82efd.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/report.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/report.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
