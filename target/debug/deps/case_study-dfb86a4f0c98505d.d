/root/repo/target/debug/deps/case_study-dfb86a4f0c98505d.d: crates/bench/src/bin/case_study.rs

/root/repo/target/debug/deps/case_study-dfb86a4f0c98505d: crates/bench/src/bin/case_study.rs

crates/bench/src/bin/case_study.rs:
