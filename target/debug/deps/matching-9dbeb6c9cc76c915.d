/root/repo/target/debug/deps/matching-9dbeb6c9cc76c915.d: crates/bench/benches/matching.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-9dbeb6c9cc76c915.rmeta: crates/bench/benches/matching.rs Cargo.toml

crates/bench/benches/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
