/root/repo/target/debug/deps/csce_core-4d425610181aaaf5.d: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

/root/repo/target/debug/deps/libcsce_core-4d425610181aaaf5.rlib: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

/root/repo/target/debug/deps/libcsce_core-4d425610181aaaf5.rmeta: crates/core/src/lib.rs crates/core/src/bitset.rs crates/core/src/catalog.rs crates/core/src/exec/mod.rs crates/core/src/exec/stats.rs crates/core/src/plan/mod.rs crates/core/src/plan/dag.rs crates/core/src/plan/descendant.rs crates/core/src/plan/explain.rs crates/core/src/plan/gcf.rs crates/core/src/plan/ldsf.rs crates/core/src/plan/nec.rs

crates/core/src/lib.rs:
crates/core/src/bitset.rs:
crates/core/src/catalog.rs:
crates/core/src/exec/mod.rs:
crates/core/src/exec/stats.rs:
crates/core/src/plan/mod.rs:
crates/core/src/plan/dag.rs:
crates/core/src/plan/descendant.rs:
crates/core/src/plan/explain.rs:
crates/core/src/plan/gcf.rs:
crates/core/src/plan/ldsf.rs:
crates/core/src/plan/nec.rs:
