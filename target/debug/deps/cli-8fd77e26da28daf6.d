/root/repo/target/debug/deps/cli-8fd77e26da28daf6.d: tests/cli.rs

/root/repo/target/debug/deps/cli-8fd77e26da28daf6: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_csce=/root/repo/target/debug/csce
