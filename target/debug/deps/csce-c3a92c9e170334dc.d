/root/repo/target/debug/deps/csce-c3a92c9e170334dc.d: src/bin/csce.rs

/root/repo/target/debug/deps/csce-c3a92c9e170334dc: src/bin/csce.rs

src/bin/csce.rs:
